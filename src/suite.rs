//! Umbrella crate for the MicroSampler workspace.
//!
//! Re-exports the public API of every member crate so downstream users can
//! depend on one package. The repository's runnable examples and
//! cross-crate integration tests live in this package.
//!
//! ```
//! use microsampler_suite::prelude::*;
//!
//! let program = assemble("li a0, 1\necall\n")?;
//! let mut machine = Machine::new(CoreConfig::small_boom(), &program);
//! machine.run(10_000)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use microsampler_core as core;
pub use microsampler_isa as isa;
pub use microsampler_kernels as kernels;
pub use microsampler_sim as sim;
pub use microsampler_stats as stats;

/// The names most users need, in one import.
pub mod prelude {
    pub use microsampler_core::{
        analyze, feature_ordering, feature_uniqueness, AnalysisReport, Analyzer, UnitId,
    };
    pub use microsampler_isa::asm::assemble;
    pub use microsampler_isa::{Program, Reg};
    pub use microsampler_sim::{CoreConfig, Machine, RunResult, TraceConfig};
}
