//! Extension case study end-to-end: MicroSampler distinguishes a leaky
//! table-indexed S-box from its constant-time scan replacement.

use microsampler_core::{analyze, feature_uniqueness, TraceConfig, UnitId};
use microsampler_kernels::sbox::SboxKernel;
use microsampler_sim::CoreConfig;

#[test]
fn direct_table_lookup_is_flagged_on_the_load_side() {
    // 128 iterations (vs 96 for the clean variant): nearly every secret
    // byte hashes uniquely, so the contingency table needs the extra rows
    // for the load-side association to clear significance.
    let (result, ok) = SboxKernel::table_lookup()
        .run(CoreConfig::mega_boom(), 128, 3, TraceConfig::default())
        .unwrap();
    assert!(ok, "functional check");
    let report = analyze(&result.iterations);
    assert!(
        report.unit(UnitId::LqAddr).is_leaky(),
        "secret-indexed load addresses must be flagged\n{report}"
    );
    // Note: Cache-ADDR records point events; in this 3-instruction kernel
    // the access can fire before the iteration window commits open, so the
    // persistent LQ-ADDR state is the reliable witness.
    assert!(
        !report.unit(UnitId::SqAddr).is_leaky(),
        "no stores, so the store side must stay clean\n{report}"
    );
    // Feature uniqueness recovers the per-line split the attacker exploits.
    let uniq = feature_uniqueness(&result.iterations, UnitId::LqAddr);
    assert!(uniq.has_unique_features());
}

#[test]
fn constant_time_scan_is_clean() {
    let (result, ok) = SboxKernel::constant_time_scan()
        .run(CoreConfig::mega_boom(), 96, 3, TraceConfig::default())
        .unwrap();
    assert!(ok, "functional check");
    let report = analyze(&result.iterations);
    assert!(!report.is_leaky(), "the scan variant must be clean\n{report}");
}
