//! The paper's two-stage pipeline (simulate with trace logging, then parse
//! the log) must agree exactly with the live in-memory path: identical
//! iteration summaries, identical analysis verdicts.

use microsampler_core::{analyze, parse_text_log, TraceConfig};
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_sim::{CoreConfig, Machine};

#[test]
fn text_log_roundtrip_matches_live_traces() {
    let kernel = ModexpKernel::new(ModexpVariant::V1CompilerVuln, 1);
    let key = &random_keys(1, 1, 3)[0];
    let program = kernel.program().unwrap();

    let mut machine =
        Machine::with_trace_config(CoreConfig::small_boom(), &program, TraceConfig::default());
    machine.write_mem(program.symbol_addr("key"), key);
    machine.enable_log();
    let live = machine.run(5_000_000).unwrap();

    let parsed = parse_text_log(machine.log_text().unwrap(), TraceConfig::default()).unwrap();
    assert_eq!(parsed, live.iterations, "parsed summaries must equal live summaries");
}

#[test]
fn log_and_live_agree_on_the_verdict() {
    let kernel = ModexpKernel::new(ModexpVariant::V1CompilerVuln, 2);
    let program = kernel.program().unwrap();
    let mut live_iters = Vec::new();
    let mut parsed_iters = Vec::new();
    for key in random_keys(4, 2, 17) {
        let mut machine =
            Machine::with_trace_config(CoreConfig::small_boom(), &program, TraceConfig::default());
        machine.write_mem(program.symbol_addr("key"), &key);
        machine.enable_log();
        let run = machine.run(5_000_000).unwrap();
        parsed_iters
            .extend(parse_text_log(machine.log_text().unwrap(), TraceConfig::default()).unwrap());
        live_iters.extend(run.iterations);
    }
    let live_report = analyze(&live_iters);
    let parsed_report = analyze(&parsed_iters);
    assert_eq!(live_report, parsed_report);
    assert!(live_report.is_leaky(), "ME-V1-CV leaks through either pipeline");
}

#[test]
fn log_format_is_humanly_greppable() {
    let kernel = ModexpKernel::new(ModexpVariant::V2Safe, 1);
    let key = &random_keys(1, 1, 5)[0];
    let program = kernel.program().unwrap();
    let mut machine =
        Machine::with_trace_config(CoreConfig::small_boom(), &program, TraceConfig::default());
    machine.write_mem(program.symbol_addr("key"), key);
    machine.enable_log();
    machine.run(5_000_000).unwrap();
    let log = machine.log_text().unwrap();
    assert!(log.starts_with("# MicroSampler trace log v1"));
    assert!(log.contains("M SCR_START"));
    assert!(log.contains("M ITER_START"));
    assert!(log.contains("C "));
    assert!(log.contains("SQ-ADDR"));
    // One cycle line per unit per sampled cycle: the 16 units appear.
    for unit in microsampler_core::UnitId::ALL {
        assert!(log.contains(unit.name()), "log missing unit {}", unit.name());
    }
}
