//! Root-cause extraction end-to-end: the paper's §VII-A2 claim that the
//! class-unique store addresses of `ME-V1-MV` all trace back to
//! instructions inside `memmove()`.

use microsampler_core::{analyze, feature_uniqueness, map_features, TraceConfig, UnitId};
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_sim::{CoreConfig, Machine};

#[test]
fn unique_store_addresses_map_back_to_memmove() {
    let kernel = ModexpKernel::new(ModexpVariant::V1MicroarchVuln, 2);
    let program = kernel.program().unwrap();
    let memmove_start = program.symbol_addr("memmove");
    let memmove_end = program.symbol_addr("mm_ret") + 4;

    // Matrices are required for the address→PC mapping.
    let trace_cfg = TraceConfig { keep_matrices: true, ..TraceConfig::default() };
    let mut iterations = Vec::new();
    for key in random_keys(4, 2, 77) {
        let mut machine = Machine::with_trace_config(CoreConfig::mega_boom(), &program, trace_cfg);
        machine.write_mem(program.symbol_addr("key"), &key);
        let run = machine.run(10_000_000).unwrap();
        assert_eq!(run.exit_code, kernel.reference(&key));
        iterations.extend(run.iterations);
    }

    // Step 1: the analysis flags SQ-ADDR.
    let report = analyze(&iterations);
    assert!(report.unit(UnitId::SqAddr).is_leaky(), "{report}");

    // Step 2: feature uniqueness isolates per-class addresses.
    let uniq = feature_uniqueness(&iterations, UnitId::SqAddr);
    assert!(uniq.has_unique_features());

    // Step 3: map the unique addresses back to producing instructions —
    // every one must be a memmove store (the paper's finding).
    let addr_to_pc =
        map_features(&iterations, UnitId::SqAddr, UnitId::SqPc).expect("matrices kept");
    let mut checked = 0;
    for feats in uniq.unique.values() {
        for addr in feats {
            let pcs = addr_to_pc
                .get(addr)
                .unwrap_or_else(|| panic!("no producing PC recorded for {addr:#x}"));
            for pc in pcs {
                assert!(
                    (memmove_start..memmove_end).contains(pc),
                    "address {addr:#x} produced by {pc:#x}, outside memmove \
                     [{memmove_start:#x}, {memmove_end:#x})"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "mapping should cover the unique addresses");
}
