//! Table V end-to-end: every OpenSSL constant-time primitive is
//! functionally correct and statistically clean after escalation.

use microsampler_bench::experiments::table5;
use microsampler_bench::Scale;

#[test]
fn all_primitives_functional_and_clean() {
    let scale = Scale { primitive_trials: 64, ..Scale::default() };
    let rows = table5(&scale);
    assert_eq!(rows.len(), 27);
    for row in &rows {
        assert!(row.functional_ok, "{} diverged from its reference model", row.name);
        assert!(!row.leak_identified, "{} was falsely flagged (maxV = {:.3})", row.name, row.max_v);
    }
    // Every family from the paper's Table V is present.
    for family in ["eq", "select", "ge", "lt", "cond_swap", "lookup", "is_zero"] {
        assert!(
            rows.iter().any(|r| r.name.contains(family)),
            "family `{family}` missing from the audit"
        );
    }
}
