//! End-to-end case-study tests: every paper experiment must reproduce its
//! qualitative shape (who leaks, through which units, and who is clean).
//!
//! These run the full pipeline — assemble kernel → cycle-accurate OoO
//! simulation → iteration snapshots → statistical analysis — at a reduced
//! scale that still clears statistical significance.

use microsampler_bench::experiments as exp;
use microsampler_bench::Scale;
use microsampler_core::UnitId;

fn test_scale() -> Scale {
    Scale { keys: 6, key_bytes: 2, memcmp_reps: 8, primitive_trials: 48, seed: 42 }
}

#[test]
fn fig3_compiler_vuln_flags_broadly() {
    // ME-V1-CV needs a couple more keys than the other case studies for
    // every control-flow-side unit to clear significance.
    let report = exp::fig3(&Scale { keys: 8, ..test_scale() });
    assert!(report.is_leaky(), "ME-V1-CV must be flagged");
    // The compiler's unbalanced branch shows up in control-flow-side units
    // as well as memory-side units.
    for unit in [UnitId::EuuAlu, UnitId::RobPc, UnitId::SqAddr, UnitId::CacheAddr] {
        assert!(
            report.unit(unit).is_leaky(),
            "{} should be flagged for ME-V1-CV\n{report}",
            unit.name()
        );
    }
}

#[test]
fn fig4_microarch_vuln_flags_memory_side_only() {
    let report = exp::fig4(&test_scale());
    assert!(report.unit(UnitId::SqAddr).is_leaky(), "store addresses leak\n{report}");
    assert!(report.unit(UnitId::CacheAddr).is_leaky(), "cache requests leak\n{report}");
    // The instruction stream is identical for both classes: the PC-side
    // units stay clean. (Execution-unit *timing* may still correlate — the
    // secret-addressed stores forward to the next iteration's reload only
    // when they targeted the result buffer, a real MemJam-class channel —
    // so EUU-* units are not asserted clean here.)
    for unit in [UnitId::RobPc, UnitId::SqPc, UnitId::LqPc, UnitId::RobOccupancy] {
        assert!(
            !report.unit(unit).is_leaky(),
            "{} must NOT be flagged for ME-V1-MV\n{report}",
            unit.name()
        );
    }
}

#[test]
fn fig4_pressure_lights_up_miss_path_units() {
    let report = exp::fig4_with_pressure(&test_scale());
    // With per-iteration eviction (paper-scale cache pressure), the
    // secret-addressed stores miss, exposing the fill path.
    for unit in [UnitId::MshrAddr, UnitId::LfbAddr, UnitId::CacheAddr] {
        assert!(
            report.unit(unit).is_leaky(),
            "{} should be flagged under cache pressure\n{report}",
            unit.name()
        );
    }
}

#[test]
fn fig5_unique_store_addresses_split_by_class() {
    let uniq = exp::fig5(&test_scale());
    assert!(uniq.has_unique_features(), "each class must have unique store addresses");
    let bit0: Vec<u64> = uniq.unique[&0].iter().copied().collect();
    let bit1: Vec<u64> = uniq.unique[&1].iter().copied().collect();
    assert!(!bit0.is_empty() && !bit1.is_empty());
    // bit=0 stores to the dummy page, bit=1 to the result page.
    assert!(
        bit0.iter().all(|a| bit1.iter().all(|b| a >> 12 != b >> 12)),
        "unique addresses of the two classes must be on different pages: {bit0:x?} vs {bit1:x?}"
    );
}

#[test]
fn fig6_timing_distributions() {
    let f = exp::fig6(&test_scale());
    let mean = |xs: &[u64]| xs.iter().sum::<u64>() as f64 / xs.len() as f64;
    // 6a: cold buffers — overlapping distributions.
    let delta_cold = (mean(&f.cold.0) - mean(&f.cold.1)).abs();
    assert!(delta_cold < 4.0, "cold distributions should overlap (delta {delta_cold})");
    // 6b: warm dst — iterations writing the warm buffer are faster.
    assert!(
        mean(&f.warm.1) + 4.0 < mean(&f.warm.0),
        "warm-dst iterations must be measurably faster: bit1 {} vs bit0 {}",
        mean(&f.warm.1),
        mean(&f.warm.0)
    );
}

#[test]
fn fig7_safe_implementation_is_clean() {
    let report = exp::fig7(&test_scale());
    assert!(!report.is_leaky(), "ME-V2-Safe must not be flagged\n{report}");
    assert!(!report.needs_more_samples(), "verdict must be statistically settled\n{report}");
}

#[test]
fn fig9_fast_bypass_breaks_safe_code() {
    let report = exp::fig9(&test_scale());
    assert!(report.is_leaky(), "fast bypass must break ME-V2-Safe\n{report}");
    // The skipped AND is a *content* difference: it survives timing
    // removal on the execution-unit trace (paper Fig. 9 orange bars).
    assert!(
        report.unit(UnitId::EuuAlu).is_leaky_without_timing(),
        "EUU-ALU correlation must survive timing removal\n{report}"
    );
    assert!(
        report.unit(UnitId::RobPc).is_leaky_without_timing(),
        "ROB-PC correlation must survive timing removal\n{report}"
    );
    // Purely timing-borne units lose their correlation once timing is
    // removed (LFB/NLP/TLB/MSHR carry no class-dependent content here).
    let timeless_v = report.unit(UnitId::MshrAddr).assoc_timeless.cramers_v;
    assert!(timeless_v < 0.5, "MSHR-ADDR should drop after timing removal ({timeless_v})");
}

#[test]
fn fig10_memcmp_transient_execution_identified() {
    let f = exp::fig10(&test_scale());
    let speculative = f.patterns.both + f.patterns.equal_only + f.patterns.inequal_only;
    assert!(
        speculative > 0,
        "dependent-call PCs must be speculatively present in CRYPTO_memcmp windows"
    );
    assert!(f.leak_identified, "the CRYPTO_memcmp leak must be identified");
    assert!(f.mispredicts > 0);
}

#[test]
fn table2_contingency_is_well_formed() {
    let t = exp::table2(&test_scale());
    assert_eq!(t.class_count(), 2, "key bits give two classes");
    assert!(t.total() > 0);
    let a = t.association();
    assert!(a.cramers_v >= 0.0 && a.cramers_v <= 1.0);
}

#[test]
fn table7_scales_better_than_formal_tools() {
    let scale = Scale { keys: 2, key_bytes: 1, ..test_scale() };
    let t = exp::table7(&scale);
    assert!(t.size_ratio() > 1.5, "MegaBoom should be a much larger design");
    // The paper's headline: ~4x the design costs ~2x the time — far from
    // XENON's 336x. Allow generous slack; the shape is sub-linear-in-size
    // scaling, not a precise constant.
    assert!(
        t.time_ratio() < exp::XENON_TIME_RATIO / 10.0,
        "analysis time ratio {} should be far below XENON's {}",
        t.time_ratio(),
        exp::XENON_TIME_RATIO
    );
}
