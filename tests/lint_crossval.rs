//! Static × dynamic cross-validation end-to-end: the seeded-leaky
//! fixtures land in `true-leaky`, the real primitives in `true-ct`,
//! every row of a mixed cross-validation report is explained, and the
//! speculative dimension confirms the Spectre gadgets under adversarial
//! predictor state while keeping the Table V primitives out of the
//! confirmed cell.

use microsampler_bench::lint::{lint_crossval, lint_one, lint_static_all};
use microsampler_bench::Scale;
use microsampler_core::{
    analyze, classify, CrossReport, CrossRow, CrossVerdict, SpecVerdict, TraceConfig,
};
use microsampler_isa::asm::assemble;
use microsampler_kernels::fixtures;
use microsampler_kernels::openssl::Primitive;
use microsampler_sim::{CoreConfig, Machine};

/// Runs a fixture's driver loop dynamically and returns the labeled
/// iterations' analysis report.
fn dynamic_report(f: &fixtures::LeakyFixture, trials: u64) -> microsampler_core::AnalysisReport {
    let program = assemble(f.source).unwrap();
    let mut m =
        Machine::with_trace_config(CoreConfig::mega_boom(), &program, TraceConfig::default());
    // The per-trial input word doubles as the class label, so alternate
    // two values (one matching the memcmp key's first byte, one not) to
    // get a well-populated 2-class contingency table.
    let mut words = vec![trials];
    words.extend((0..trials).map(|i| if i % 2 == 0 { 0x3a } else { 0xc7 }));
    m.push_inputs(words);
    let run = m.run(40_000_000).unwrap_or_else(|e| panic!("{}: {e}", f.name));
    analyze(&run.iterations)
}

#[test]
fn branchy_memcmp_is_true_leaky() {
    let f = fixtures::by_name("leaky_branchy_memcmp").unwrap();
    let static_leaky = lint_one(f.name).unwrap().report.is_leaky();
    assert!(static_leaky);
    let dynamic = dynamic_report(&f, 128);
    assert!(dynamic.is_leaky(), "secret-dependent branch must leak dynamically\n{dynamic}");
    assert_eq!(classify(static_leaky, &dynamic), CrossVerdict::TrueLeaky);
}

#[test]
fn clean_primitive_is_true_ct() {
    let p = Primitive::all().into_iter().find(|p| p.name == "constant_time_select").unwrap();
    let static_leaky = lint_one(p.name).unwrap().report.is_leaky();
    assert!(!static_leaky);
    let run = p.run(CoreConfig::mega_boom(), 96, 7, TraceConfig::default()).unwrap();
    let dynamic = analyze(&run.result.iterations);
    let verdict = classify(static_leaky, &dynamic);
    assert!(
        matches!(verdict, CrossVerdict::TrueCt | CrossVerdict::Inconclusive),
        "a clean primitive must not land in a disagreement bucket, got {verdict:?}\n{dynamic}"
    );
}

#[test]
fn every_cross_validation_row_is_explained() {
    // Build a mixed report (fixtures + one primitive) and check the
    // invariant the ISSUE demands: no unexplained rows — every verdict
    // maps to a non-empty mechanical explanation.
    let statics = lint_static_all();
    let mut rows = Vec::new();
    for f in fixtures::all() {
        let static_leaky = statics.iter().find(|r| r.name == f.name).unwrap().report.is_leaky();
        rows.push(CrossRow::new(f.name, static_leaky, &dynamic_report(&f, 64)));
    }
    let report = CrossReport { rows };
    for row in &report.rows {
        assert!(!row.verdict.label().is_empty());
        assert!(!row.verdict.explanation().is_empty());
        // Fixtures are statically leaky, so the only reachable buckets
        // are the explained leaky/conservative/inconclusive ones.
        assert!(
            matches!(
                row.verdict,
                CrossVerdict::TrueLeaky
                    | CrossVerdict::StaticConservative
                    | CrossVerdict::Inconclusive
            ),
            "{}: unexplained combination {:?}",
            row.name,
            row.verdict
        );
    }
    let json = report.to_json();
    assert_eq!(
        json.get("rows").and_then(|v| v.as_array()).map(<[_]>::len),
        Some(report.rows.len())
    );
}

#[test]
fn speculative_dimension_classifies_every_kernel() {
    // The full classification table: all 27 Table V primitives plus every
    // seeded-leaky fixture, each cross-checked along both the
    // architectural and the speculative dimension.
    let scale = Scale { primitive_trials: 48, ..Scale::default() };
    let statics = lint_static_all();
    let report = lint_crossval(&statics, &scale);
    assert_eq!(report.rows.len(), Primitive::all().len() + fixtures::all().len());
    for row in &report.rows {
        // Every row carries the speculative dimension and an explanation.
        let spec = row.spec_verdict.unwrap_or_else(|| panic!("{}: no spec verdict", row.name));
        assert!(!spec.explanation().is_empty());
        let is_spectre = row.name.starts_with("leaky_spectre");
        if is_spectre {
            // The acceptance cell: statically transient-only, dynamically
            // confirmed under adversarial speculation.
            assert_eq!(row.static_verdict, "clean", "{}: architecturally clean", row.name);
            assert_eq!(row.spec_static, Some("transient"), "{}", row.name);
            assert_eq!(
                spec,
                SpecVerdict::Confirmed,
                "{}: Spectre gadget must be dynamically confirmed (adversarial run {:?}, \
                 max V {:.3})",
                row.name,
                row.spec_dynamic,
                row.spec_max_cramers_v
            );
        } else {
            // Nothing else reports CT-SPEC at the default window, so no
            // other row can reach the confirmed/not-expressed cells.
            assert_eq!(row.spec_static, Some("clean"), "{}", row.name);
            assert!(
                !matches!(spec, SpecVerdict::Confirmed | SpecVerdict::NotExpressed),
                "{}: statically spec-clean kernel landed in {spec:?}",
                row.name
            );
        }
    }
    assert_eq!(report.spec_confirmed().count(), 2);
    // The run-report JSON records the agreement.
    let json = report.to_json();
    assert_eq!(json.get("schema").and_then(|v| v.as_str()), Some("microsampler-crossval-v2"));
    assert_eq!(json.get("spec_confirmed").and_then(|v| v.as_u64()), Some(2));
}
