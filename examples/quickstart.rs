//! Quickstart: write a tiny "constant-time" kernel in RV64 assembly, run it
//! under MicroSampler, and read the verdict.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The kernel below *looks* constant-time but branches on the secret bit —
//! MicroSampler flags the correlated units immediately.

use microsampler_core::{analyze, feature_uniqueness, UnitId};
use microsampler_isa::asm::assemble;
use microsampler_sim::{CoreConfig, Machine, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy kernel: for each secret bit, do some arithmetic; when the bit
    // is set, "normalize" through an extra reduction — a classic
    // conditional-work bug.
    let program = assemble(
        r#"
        .data
        secret: .byte 0
        .text
        _start:
            csrw 0x8c0, zero        # open the security-critical region
            la   s0, secret
            lbu  s1, 0(s0)          # the secret byte
            li   s2, 7              # bit index
            li   s3, 12345          # working value
        loop:
            srl  t0, s1, s2
            andi t1, t0, 1          # current secret bit
            csrw 0x8c2, t1          # ITER_START, label = bit
            mul  s3, s3, s3
            li   t2, 65521
            remu s3, s3, t2
            beqz t1, skip           # BUG: control flow depends on the bit
            addi s3, s3, 1
            remu s3, s3, t2
        skip:
            csrw 0x8c3, zero        # ITER_END
            addi s2, s2, -1
            bgez s2, loop
            csrw 0x8c1, zero        # close the region
            ecall
        "#,
    )?;

    // Run the kernel over several secrets, pooling the labeled iterations.
    let mut iterations = Vec::new();
    for secret in [0x5Au8, 0xC3, 0x0F, 0x96, 0x3C, 0xA5] {
        let mut machine =
            Machine::with_trace_config(CoreConfig::mega_boom(), &program, TraceConfig::default());
        machine.write_mem(program.symbol_addr("secret"), &[secret]);
        let result = machine.run(1_000_000)?;
        iterations.extend(result.iterations);
    }

    // Analyze: per-unit association between secret bits and
    // microarchitectural snapshots.
    let report = analyze(&iterations);
    println!("{report}");

    if report.is_leaky() {
        println!("LEAK DETECTED — correlated units:");
        for unit in report.leaky_units() {
            println!("  {:<12} {}", unit.unit.name(), unit.assoc);
        }
        // Root-cause: which PCs execute only for one class?
        let uniq = feature_uniqueness(&iterations, UnitId::EuuAlu);
        for (class, pcs) in &uniq.unique {
            if !pcs.is_empty() {
                println!("  ALU PCs unique to bit={class}: {:x?}", pcs.iter().collect::<Vec<_>>());
            }
        }
    } else {
        println!("no leakage identified");
    }
    Ok(())
}
