//! Reproduce the paper's previously-unreported OpenSSL finding: a
//! mispredicted loop-exit branch inside `CRYPTO_memcmp` speculatively
//! returns a *partial* comparison result, which transiently steers the
//! caller's secret-dependent branch — visible as dependent-call PCs inside
//! the constant-time function's own sampling window.
//!
//! ```sh
//! cargo run --release --example transient_memcmp
//! ```

use microsampler_kernels::inputs::{memcmp_pairs, memcmp_schedule};
use microsampler_kernels::memcmp::MemcmpKernel;
use microsampler_sim::{CoreConfig, TraceConfig, UnitId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pairs = memcmp_pairs(2024);
    let trials = memcmp_schedule(&pairs, 16, 5);
    let program = MemcmpKernel.program()?;
    let equal_pc = program.symbol_addr("equal_fn");
    let inequal_pc = program.symbol_addr("inequal_fn");

    // Randomized initial predictor state stands in for the residual
    // predictor contents of a real machine.
    let config = CoreConfig::mega_boom().with_random_bpred(7);
    let (result, _) = MemcmpKernel.run_with_outputs(config, &trials, TraceConfig::default())?;

    let mut pattern_counts = [0usize; 4]; // neither, inequal, equal, both
    for it in &result.iterations {
        let f = &it.unit(UnitId::RobPc).features;
        let idx = f.contains(&inequal_pc) as usize | ((f.contains(&equal_pc) as usize) << 1);
        pattern_counts[idx] += 1;
    }
    println!("windows analyzed: {}", result.iterations.len());
    println!("  no dependent-call PCs in ROB:        {}", pattern_counts[0]);
    println!("  inequal() present (pattern 1):       {}", pattern_counts[1]);
    println!("  equal() present (pattern 3):         {}", pattern_counts[2]);
    println!("  BOTH present (pattern 2, transient): {}", pattern_counts[3]);
    println!("branch mispredicts: {}", result.stats.branch_mispredicts);

    if pattern_counts[3] > 0 {
        println!(
            "\nTransient double-call confirmed: while CRYPTO_memcmp was still \
             executing, the core speculatively fetched one dependent path and \
             later the other — the secret-dependent divergence the paper \
             disclosed to OpenSSL."
        );
    } else if pattern_counts[1] + pattern_counts[2] > 0 {
        println!(
            "\nDependent-call PCs reached the ROB inside CRYPTO_memcmp's \
             window: return-value-dependent code was fetched speculatively \
             before the comparison finished."
        );
    }
    Ok(())
}
