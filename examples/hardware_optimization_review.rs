//! Review a microarchitectural optimization for security (the paper's
//! `ME-V2-FB` case study): verified-safe constant-time code can be broken
//! by a seemingly benign hardware change — here, the "fast bypass"
//! trivial-computation optimization.
//!
//! ```sh
//! cargo run --release --example hardware_optimization_review
//! ```

use microsampler_core::{analyze, feature_uniqueness, UnitId};
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_sim::{CoreConfig, TraceConfig};

fn run(
    config: CoreConfig,
) -> Result<microsampler_core::AnalysisReport, Box<dyn std::error::Error>> {
    let kernel = ModexpKernel::new(ModexpVariant::V2Safe, 4);
    let mut iterations = Vec::new();
    for key in random_keys(8, 4, 1) {
        let result = kernel.run(config.clone(), &key, TraceConfig::default())?;
        assert_eq!(result.exit_code, kernel.reference(&key));
        iterations.extend(result.iterations);
    }
    Ok(analyze(&iterations))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("BearSSL-style constant-time modular exponentiation (ME-V2-Safe)\n");

    let baseline = run(CoreConfig::mega_boom())?;
    println!(
        "baseline core:            leaky = {:<5} (max V = {:.3})",
        baseline.is_leaky(),
        baseline.units.iter().map(|u| u.assoc.cramers_v).fold(0.0f64, f64::max)
    );

    let optimized = run(CoreConfig::mega_boom().with_fast_bypass())?;
    println!(
        "core with fast bypass:    leaky = {:<5} (max V = {:.3})",
        optimized.is_leaky(),
        optimized.units.iter().map(|u| u.assoc.cramers_v).fold(0.0f64, f64::max)
    );

    if optimized.is_leaky() && !baseline.is_leaky() {
        println!("\nThe optimization broke the constant-time guarantee. Flagged units:");
        for u in optimized.leaky_units() {
            println!(
                "  {:<12} V={:.3}  V(timing removed)={:.3}",
                u.unit.name(),
                u.assoc.cramers_v,
                u.assoc_timeless.cramers_v
            );
        }
        // The ALU trace pinpoints the skipped instruction: the AND only
        // reaches the ALU when the key bit (mask) is non-zero.
        let kernel = ModexpKernel::new(ModexpVariant::V2Safe, 4);
        let mut iterations = Vec::new();
        for key in random_keys(8, 4, 1) {
            let r = kernel.run(
                CoreConfig::mega_boom().with_fast_bypass(),
                &key,
                TraceConfig::default(),
            )?;
            iterations.extend(r.iterations);
        }
        let uniq = feature_uniqueness(&iterations, UnitId::EuuAlu);
        for (class, pcs) in &uniq.unique {
            if !pcs.is_empty() {
                println!(
                    "  ALU activity unique to key bit {class}: PCs {:x?}",
                    pcs.iter().collect::<Vec<_>>()
                );
            }
        }
    }
    Ok(())
}
