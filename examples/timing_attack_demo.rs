//! Turn the `ME-V1-MV` finding into a working attack (the paper's
//! "possible exploit path", §VII-A2): a Flush+Reload attacker evicts the
//! two candidate `memmove` destinations before each iteration and then
//! probes the `dummy` line with a timed reload — a fast probe means the
//! victim's secret-addressed copy touched `dummy` (key bit 0), a slow one
//! means it went to the real destination (key bit 1). The secret key is
//! recovered bit by bit from the very addresses MicroSampler flagged.
//!
//! ```sh
//! cargo run --release --example timing_attack_demo
//! ```

use microsampler_isa::asm::assemble;
use microsampler_sim::{CoreConfig, Machine, TraceConfig};

/// The victim iteration with attacker instrumentation around it: flush
/// both candidate buffers, run one secret-dependent victim iteration, then
/// probe `dummy` with a timed reload. This models Flush+Reload
/// interleaving; in the paper's threat model the attacker co-locates with
/// the victim.
const VICTIM_WITH_ATTACKER: &str = r#"
.data
.align 6
tbuf:  .zero 64
.align 6
obuf:  .zero 64
       .zero 3904
.align 6
dummy: .zero 64
key:   .zero 8
.text
_start:
    li   s0, 2654435769     # base
    li   s1, 4294967291     # modulus
    la   s2, obuf
    la   s3, tbuf
    la   s4, dummy
    la   s5, key
    li   a7, 2              # attacker repetition: measure the 2nd pass
repeat_loop:
    li   s10, 1             # r
    li   s6, 0              # key byte index
byte_loop:
    add  t0, s5, s6
    lbu  s7, 0(t0)
    li   s8, 7
bit_loop:
    srl  t0, s7, s8
    andi s9, t0, 1          # the secret bit (victim-internal)
    # --- attacker: evict both candidate lines, then warm dst ---
    csrw 0x8c5, s2
    csrw 0x8c5, s4
    ld   t0, 0(s2)          # attacker touch: dst now cached
    fence
    # --- victim iteration (arithmetic phase) ---
    mul  t1, s10, s10
    remu t1, t1, s1
    mul  t2, t1, s0
    remu t2, t2, s1
    sd   t2, 0(s3)
    neg  t3, s9
    xor  t4, t1, t2
    and  t4, t4, t3
    xor  s10, t1, t4
    neg  t0, s9
    xor  t5, s2, s4
    and  t5, t5, t0
    xor  a0, s4, t5         # dst = bit ? obuf : dummy
    mv   a1, s3
    li   a2, 32
    call memmove
    fence                   # victim's stores drain
    # --- attacker: Flush+Reload probe of the dummy line ---
    csrr s11, 0xc00         # rdcycle: start
    ld   t0, 0(s4)          # probe: fast iff the victim wrote dummy
    csrr t6, 0xc00          # rdcycle: end (serializes on the probe)
    sub  t6, t6, s11
    csrw 0x8c9, t6          # report the probe latency to the attacker
    addi s8, s8, -1
    bgez s8, bit_loop
    addi s6, s6, 1
    li   t0, 8
    blt  s6, t0, byte_loop
    addi a7, a7, -1
    bgtz a7, repeat_loop
    mv   a0, s10
    ecall
memmove:
    beqz a2, mm_ret
mm_chunk:
    sltiu t0, a2, 8
    bnez t0, mm_bytes
    ld   t1, 0(a1)
    sd   t1, 0(a0)
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, -8
    j    mm_chunk
mm_bytes:
    beqz a2, mm_ret
    lbu  t1, 0(a1)
    sb   t1, 0(a0)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    j    mm_bytes
mm_ret:
    ret
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(VICTIM_WITH_ATTACKER)?;
    let secret: [u8; 8] = [0xDE, 0xAD, 0xBE, 0xEF, 0x42, 0x13, 0x37, 0xA5];
    let mut machine =
        Machine::with_trace_config(CoreConfig::mega_boom(), &program, TraceConfig::default());
    machine.write_mem(program.symbol_addr("key"), &secret);
    machine.run(20_000_000)?;
    let all = machine.take_outputs();
    assert_eq!(all.len(), 128, "two passes of 64 measurements");
    let latencies = &all[64..]; // the warmed-up second pass

    // The attacker's classifier: a fast probe of `dummy` means the victim
    // just wrote it (the secret bit was 0); a slow probe means the line
    // stayed cold after the flush (the victim wrote dst — bit 1).
    let lo = *latencies.iter().min().expect("nonempty");
    let hi = *latencies.iter().max().expect("nonempty");
    let threshold = (lo + hi) / 2;
    let mut recovered = [0u8; 8];
    for (i, &lat) in latencies.iter().enumerate() {
        let bit = (lat >= threshold) as u8; // slow probe => dummy untouched => bit 1
        recovered[i / 8] |= bit << (7 - i % 8);
    }

    println!("probe latency range: {lo}..{hi} cycles (threshold {threshold})");
    println!("secret key:    {secret:02x?}");
    println!("recovered key: {recovered:02x?}");
    let correct = secret.iter().zip(&recovered).map(|(a, b)| 8 - (a ^ b).count_ones()).sum::<u32>();
    println!("bits recovered correctly: {correct}/64");
    if recovered == secret {
        println!("\nFull key recovery — the store-address leak MicroSampler flagged in");
        println!("ME-V1-MV (Fig 4/5) is directly exploitable through timing alone.");
    }
    Ok(())
}
