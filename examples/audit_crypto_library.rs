//! Audit a library of constant-time primitives (the paper's Table V
//! workflow): run every primitive over labeled trials, escalate inputs
//! until the p-value is decisive, and print a verdict sheet.
//!
//! ```sh
//! cargo run --release --example audit_crypto_library
//! ```

use microsampler_core::Analyzer;
use microsampler_kernels::openssl::Primitive;
use microsampler_sim::{CoreConfig, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analyzer = Analyzer::new();
    let trials = 96;
    println!("{:<34} {:>6} {:>8} {:>7} {:>5}", "primitive", "func", "verdict", "maxV", "iters");
    let mut flagged = 0;
    for prim in Primitive::all() {
        let first = prim.run(CoreConfig::mega_boom(), trials, 7, TraceConfig::default())?;
        let mut functional = first.functional_ok;
        let outcome = analyzer.analyze_with_escalation(first.result.iterations, 3, |round| {
            match prim.run(
                CoreConfig::mega_boom(),
                trials * 2,
                7 + round as u64 * 101,
                TraceConfig::default(),
            ) {
                Ok(extra) => {
                    functional &= extra.functional_ok;
                    extra.result.iterations
                }
                Err(_) => Vec::new(),
            }
        });
        let max_v = outcome.report.units.iter().map(|u| u.assoc.cramers_v).fold(0.0f64, f64::max);
        let verdict = if outcome.report.is_leaky() {
            flagged += 1;
            "LEAK"
        } else {
            "clean"
        };
        println!(
            "{:<34} {:>6} {:>8} {:>7.3} {:>5}",
            prim.name,
            if functional { "ok" } else { "FAIL" },
            verdict,
            max_v,
            outcome.total_iterations,
        );
    }
    println!("\n{flagged}/27 primitives flagged (paper: none of these leak; CRYPTO_memcmp does — see the transient_memcmp example)");
    Ok(())
}
