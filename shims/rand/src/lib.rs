//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched; every experiment here only needs a *seeded,
//! deterministic* generator (`StdRng::seed_from_u64`), never OS entropy.
//! This shim provides that subset with an xoshiro256** core seeded via
//! SplitMix64 — a different stream than the real `StdRng` (ChaCha12), which
//! is fine: all callers treat the stream as arbitrary noise under a fixed
//! seed.

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                (start as u128 + rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (API-compatible stand-in for
    /// `rand::rngs::StdRng`; the stream differs from the real ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(1..=255u8);
            assert!(v >= 1);
            let w = rng.gen_range(0..3u64);
            assert!(w < 3);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let full = rng.gen_range(1u64..u64::MAX);
            assert!(full >= 1);
        }
    }

    #[test]
    fn bool_and_array_sampling() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "biased bool: {trues}");
        let a: [u64; 4] = rng.gen();
        let b: [u64; 4] = rng.gen();
        assert_ne!(a, b);
    }
}
