//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment cannot fetch crates.io, so the real `proptest` is
//! unavailable. This shim keeps the property tests running as *randomized,
//! deterministic, non-shrinking* tests: each `proptest!` function runs its
//! body for `ProptestConfig::cases` inputs drawn from the given strategies
//! with a per-test-name seed. On failure the offending values are reported
//! by the underlying `assert!` message (no shrinking).

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG driving strategy generation.

    /// SplitMix64-based test RNG; seeded from the test name so every test
    //  gets a distinct but reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (e.g. the test function name).
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Run configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values (non-shrinking subset of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, retrying otherwise.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, whence }
    }

    /// Keeps only values passing the predicate, retrying otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map `{}`: rejected 1000 candidates in a row", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: rejected 1000 candidates in a row", self.whence);
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Creates a one-of strategy; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                if (v as $t) < self.end { v as $t } else { self.start }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (start as f64 + unit * (end as f64 - start as f64)) as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);

/// Whole-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `element` values (see [`vec()`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform random choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property assertion (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Assumption: skips the current case when the condition fails.
/// (In this shim the case still counts toward the budget.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each `fn name(x in strategy, ...)` becomes a
/// `#[test]` running its body for `ProptestConfig::cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = crate::collection::vec(0u64..50, 3..8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn oneof_and_combinators() {
        let mut rng = crate::test_runner::TestRng::deterministic("combi");
        let s = prop_oneof![Just(1u64), Just(2u64), (10u64..20).prop_map(|v| v * 2)];
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 2 || (20..40).contains(&v));
        }
        let flat = (2usize..=4).prop_flat_map(|n| crate::collection::vec(0u64..5, n));
        for _ in 0..50 {
            let v = flat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        let filtered = (0u64..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        for _ in 0..50 {
            assert_eq!(filtered.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn macro_smoke(x in 0u64..10, v in collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
        }
    }
}
