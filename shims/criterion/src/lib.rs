//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses.
//!
//! The build environment cannot fetch crates.io, so the real `criterion`
//! is unavailable. This shim keeps `cargo bench` working as a simple
//! wall-clock harness: each benchmark runs a short warmup, then
//! `sample_size` timed samples, and prints min/mean/max per iteration.
//! No statistical analysis, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement throughput annotation (accepted, echoed in output).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{param}") }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after one warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records a throughput annotation (echoed only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_id(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{group}/{id:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!("{group}/{id:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs a standalone benchmark in an anonymous group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", &id.into_id(), 10, |b| f(b));
        self
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }
}
