//! Leveled diagnostic sink and sweep progress heartbeats.
//!
//! Replaces ad-hoc `eprintln!` debugging throughout the workspace. Output
//! is gated by the `MICROSAMPLER_LOG` environment variable (`off`,
//! `error`, `warn`, `info`, `debug`, `trace`; default `off` — library
//! code stays silent in tests and sweeps) and goes to stderr, or to a
//! capture buffer installed by tests via [`set_capture`].
//!
//! Progress heartbeats ([`progress`], "trial N of M" for long sweeps) are
//! gated separately by `MICROSAMPLER_PROGRESS` (any value but `0`
//! enables) or [`set_progress`].
//!
//! Use through the macros:
//!
//! ```
//! microsampler_obs::diag_warn!("cache flush ignored at cycle {}", 42);
//! microsampler_obs::diag!(microsampler_obs::Level::Trace, "raw row: {:?}", [1, 2]);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Diagnostic severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems the caller will also see as an `Err`/exit.
    Error = 1,
    /// Suspicious but non-fatal conditions.
    Warn = 2,
    /// High-level lifecycle events.
    Info = 3,
    /// Detailed pipeline diagnostics (e.g. per-stall dumps).
    Debug = 4,
    /// Per-cycle firehose.
    Trace = 5,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
const LEVEL_OFF: u8 = 0;
const PROGRESS_UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
static PROGRESS: AtomicU8 = AtomicU8::new(PROGRESS_UNSET);
static CAPTURE: Mutex<Option<Arc<Mutex<String>>>> = Mutex::new(None);

fn parse_level(s: &str) -> u8 {
    match s.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "none" => LEVEL_OFF,
        "error" | "1" => Level::Error as u8,
        "warn" | "warning" | "2" => Level::Warn as u8,
        "info" | "3" => Level::Info as u8,
        "debug" | "4" => Level::Debug as u8,
        "trace" | "5" => Level::Trace as u8,
        _ => Level::Info as u8,
    }
}

fn max_level() -> u8 {
    let cur = MAX_LEVEL.load(Ordering::Relaxed);
    if cur != LEVEL_UNSET {
        return cur;
    }
    let from_env = std::env::var("MICROSAMPLER_LOG").map(|v| parse_level(&v)).unwrap_or(LEVEL_OFF);
    MAX_LEVEL.store(from_env, Ordering::Relaxed);
    from_env
}

/// Overrides the maximum emitted level (`None` silences everything).
/// Takes precedence over `MICROSAMPLER_LOG`.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(LEVEL_OFF, |l| l as u8), Ordering::Relaxed);
}

/// Whether a message at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    level as u8 <= max_level()
}

/// Emits a diagnostic line. Prefer the [`diag!`](crate::diag!) family,
/// which checks [`enabled`] before formatting.
pub fn emit(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let line = format!("[microsampler {}] {target}: {args}", level.name());
    write_line(&line);
}

/// Whether progress heartbeats are enabled.
pub fn progress_enabled() -> bool {
    let cur = PROGRESS.load(Ordering::Relaxed);
    if cur != PROGRESS_UNSET {
        return cur != 0;
    }
    let on = match std::env::var("MICROSAMPLER_PROGRESS") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "off"),
        Err(_) => false,
    };
    PROGRESS.store(on as u8, Ordering::Relaxed);
    on
}

/// Overrides progress heartbeat gating (takes precedence over
/// `MICROSAMPLER_PROGRESS`).
pub fn set_progress(on: bool) {
    PROGRESS.store(on as u8, Ordering::Relaxed);
}

/// Emits a "task: N/M" heartbeat for long sweeps (no-op unless enabled).
pub fn progress(task: &str, done: usize, total: usize) {
    if progress_enabled() {
        write_line(&format!("[progress] {task}: {done}/{total}"));
    }
}

/// Emits a heartbeat with throughput and ETA, e.g.
/// `[progress] ME-V1-MV: 12/96 (3.1 trials/s, ETA 27s)` (no-op unless
/// enabled). Non-finite or non-positive rates suppress the parenthetical.
pub fn progress_rate(task: &str, done: usize, total: usize, trials_per_sec: f64, eta_sec: f64) {
    if !progress_enabled() {
        return;
    }
    if trials_per_sec.is_finite() && trials_per_sec > 0.0 && eta_sec.is_finite() {
        write_line(&format!(
            "[progress] {task}: {done}/{total} ({trials_per_sec:.1} trials/s, ETA {eta_sec:.0}s)"
        ));
    } else {
        write_line(&format!("[progress] {task}: {done}/{total}"));
    }
}

/// Emits a component liveness heartbeat, e.g.
/// `[heartbeat] serve: 2 queued, 1 running, uptime 34s` (no-op unless
/// progress output is enabled). Long-running daemons (`repro serve`) emit
/// these so operators can distinguish "idle" from "wedged" without
/// attaching a debugger.
pub fn heartbeat(component: &str, detail: &str) {
    if progress_enabled() {
        write_line(&format!("[heartbeat] {component}: {detail}"));
    }
}

/// Routes diagnostics into a shared buffer instead of stderr (tests).
/// Pass `None` to restore stderr.
pub fn set_capture(buffer: Option<Arc<Mutex<String>>>) {
    *CAPTURE.lock().expect("capture sink poisoned") = buffer;
}

fn write_line(line: &str) {
    let capture = CAPTURE.lock().expect("capture sink poisoned");
    match &*capture {
        Some(buf) => {
            let mut buf = buf.lock().expect("capture buffer poisoned");
            buf.push_str(line);
            buf.push('\n');
        }
        None => eprintln!("{line}"),
    }
}

/// Emits at an explicit [`Level`]; formats lazily (nothing is formatted
/// when the level is disabled).
#[macro_export]
macro_rules! diag {
    ($level:expr, $($arg:tt)+) => {
        if $crate::diag::enabled($level) {
            $crate::diag::emit($level, module_path!(), format_args!($($arg)+));
        }
    };
}

/// [`diag!`] at [`Level::Error`](crate::Level::Error).
#[macro_export]
macro_rules! diag_error {
    ($($arg:tt)+) => { $crate::diag!($crate::diag::Level::Error, $($arg)+) };
}

/// [`diag!`] at [`Level::Warn`](crate::Level::Warn).
#[macro_export]
macro_rules! diag_warn {
    ($($arg:tt)+) => { $crate::diag!($crate::diag::Level::Warn, $($arg)+) };
}

/// [`diag!`] at [`Level::Info`](crate::Level::Info).
#[macro_export]
macro_rules! diag_info {
    ($($arg:tt)+) => { $crate::diag!($crate::diag::Level::Info, $($arg)+) };
}

/// [`diag!`] at [`Level::Debug`](crate::Level::Debug).
#[macro_export]
macro_rules! diag_debug {
    ($($arg:tt)+) => { $crate::diag!($crate::diag::Level::Debug, $($arg)+) };
}

/// [`diag!`] at [`Level::Trace`](crate::Level::Trace).
#[macro_export]
macro_rules! diag_trace {
    ($($arg:tt)+) => { $crate::diag!($crate::diag::Level::Trace, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Level/capture state is process-global; serialize tests touching it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn with_capture(f: impl FnOnce()) -> String {
        let buf = Arc::new(Mutex::new(String::new()));
        set_capture(Some(buf.clone()));
        f();
        set_capture(None);
        let out = buf.lock().unwrap().clone();
        out
    }

    #[test]
    fn levels_filter() {
        let _l = LOCK.lock().unwrap();
        set_max_level(Some(Level::Warn));
        let out = with_capture(|| {
            crate::diag_error!("e {}", 1);
            crate::diag_warn!("w");
            crate::diag_info!("i");
            crate::diag_debug!("d");
        });
        set_max_level(None);
        assert!(out.contains("[microsampler error]"), "{out}");
        assert!(out.contains("e 1"), "{out}");
        assert!(out.contains("[microsampler warn]"), "{out}");
        assert!(!out.contains("info"), "{out}");
        assert!(!out.contains("debug"), "{out}");
    }

    #[test]
    fn off_emits_nothing() {
        let _l = LOCK.lock().unwrap();
        set_max_level(None);
        let out = with_capture(|| {
            crate::diag_error!("silent");
        });
        assert!(out.is_empty(), "{out}");
    }

    #[test]
    fn progress_heartbeats() {
        let _l = LOCK.lock().unwrap();
        set_progress(true);
        let out = with_capture(|| progress("table5", 3, 27));
        assert_eq!(out, "[progress] table5: 3/27\n");
        set_progress(false);
        let out = with_capture(|| progress("table5", 4, 27));
        assert!(out.is_empty());
    }

    #[test]
    fn heartbeat_is_gated_like_progress() {
        let _l = LOCK.lock().unwrap();
        set_progress(true);
        let out = with_capture(|| heartbeat("serve", "2 queued, 1 running"));
        assert_eq!(out, "[heartbeat] serve: 2 queued, 1 running\n");
        set_progress(false);
        let out = with_capture(|| heartbeat("serve", "idle"));
        assert!(out.is_empty());
    }

    #[test]
    fn progress_rate_includes_throughput_and_eta() {
        let _l = LOCK.lock().unwrap();
        set_progress(true);
        let out = with_capture(|| progress_rate("sweep", 12, 96, 3.24, 26.7));
        assert_eq!(out, "[progress] sweep: 12/96 (3.2 trials/s, ETA 27s)\n");
        // Degenerate rates fall back to the plain form.
        let out = with_capture(|| progress_rate("sweep", 0, 96, 0.0, f64::INFINITY));
        assert_eq!(out, "[progress] sweep: 0/96\n");
        set_progress(false);
    }
}
