//! Chrome trace-event (Perfetto) export of the span forest.
//!
//! The span layer aggregates timings per tree node (count + total) and
//! keeps no per-occurrence timestamps, so this exporter *synthesizes* a
//! deterministic timeline: spans are laid out sequentially from t = 0,
//! each node occupying a slice as wide as its aggregated total, with its
//! children packed left-aligned inside it. The result is a faithful
//! where-did-the-time-go flame graph — proportions and nesting are exact,
//! absolute timestamps are synthetic.
//!
//! The output is the trace-event JSON object format (`{"traceEvents":
//! [...]}`) with `ph: "X"` complete events, loadable directly in
//! [ui.perfetto.dev](https://ui.perfetto.dev) or `chrome://tracing`.

use crate::json::Value;
use crate::span::SpanNode;

/// Converts a span forest (from [`crate::span::take`]) into a trace-event
/// JSON object. Roots are laid out end-to-end starting at t = 0; event
/// `ts`/`dur` are microseconds with sub-µs totals rounded up so zero-width
/// events stay visible.
pub fn spans_to_trace_events(roots: &[SpanNode]) -> Value {
    let mut events = Vec::new();
    let mut cursor = 0u64;
    for node in roots {
        let dur = emit(node, cursor, &mut events);
        cursor += dur;
    }
    Value::object().field("traceEvents", Value::Array(events)).build()
}

/// Emits `node` at `ts`, children packed sequentially inside it; returns
/// the node's duration in µs.
fn emit(node: &SpanNode, ts: u64, events: &mut Vec<Value>) -> u64 {
    let dur = (node.total.as_micros() as u64).max(1);
    events.push(
        Value::object()
            .field("name", node.name)
            .field("cat", "span")
            .field("ph", "X")
            .field("pid", 1u64)
            .field("tid", 1u64)
            .field("ts", ts)
            .field("dur", dur)
            .field("args", Value::object().field("count", node.count).build())
            .build(),
    );
    let mut child_ts = ts;
    for child in &node.children {
        child_ts += emit(child, child_ts, events);
    }
    dur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use std::time::Duration;

    fn node(name: &'static str, ms: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode { name, count: 1, total: Duration::from_millis(ms), children }
    }

    fn event<'a>(events: &'a [Value], name: &str) -> &'a Value {
        events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("no event `{name}`"))
    }

    fn span_of(e: &Value) -> (u64, u64) {
        (e.get("ts").unwrap().as_u64().unwrap(), e.get("dur").unwrap().as_u64().unwrap())
    }

    #[test]
    fn nested_forest_round_trips_with_ordered_ts_dur() {
        let forest = vec![
            node(
                "run",
                10,
                vec![
                    node("simulate", 6, vec![node("fold", 2, vec![])]),
                    node("analyze", 3, vec![]),
                ],
            ),
            node("report", 5, vec![]),
        ];
        let rendered = spans_to_trace_events(&forest).render_compact();
        // Round-trip through the parser, as a Perfetto-style consumer would.
        let parsed = json::parse(&rendered).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 5);
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("pid").unwrap().as_u64().is_some());
            assert!(e.get("tid").unwrap().as_u64().is_some());
        }
        let (run_ts, run_dur) = span_of(event(events, "run"));
        let (sim_ts, sim_dur) = span_of(event(events, "simulate"));
        let (fold_ts, fold_dur) = span_of(event(events, "fold"));
        let (an_ts, an_dur) = span_of(event(events, "analyze"));
        let (rep_ts, rep_dur) = span_of(event(events, "report"));
        // Children nest inside their parent's interval.
        assert!(sim_ts >= run_ts && sim_ts + sim_dur <= run_ts + run_dur);
        assert!(fold_ts >= sim_ts && fold_ts + fold_dur <= sim_ts + sim_dur);
        // Siblings are laid out sequentially, in tree order.
        assert_eq!(an_ts, sim_ts + sim_dur);
        assert!(an_ts + an_dur <= run_ts + run_dur);
        // Roots are laid out end-to-end from t = 0.
        assert_eq!(run_ts, 0);
        assert_eq!(rep_ts, run_ts + run_dur);
        assert_eq!((run_dur, sim_dur, rep_dur), (10_000, 6_000, 5_000));
    }

    #[test]
    fn zero_duration_spans_stay_visible() {
        let forest = vec![node("instant", 0, vec![])];
        let v = spans_to_trace_events(&forest);
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("dur").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn empty_forest_yields_empty_event_list() {
        let v = spans_to_trace_events(&[]);
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
