//! Structured telemetry for the MicroSampler pipeline.
//!
//! Six independent, dependency-free layers:
//!
//! * [`mod@span`] — hierarchical scoped timers over the analysis pipeline
//!   (simulate → parse → correlate → extract). Near-zero cost when
//!   disabled: one relaxed atomic load, no clock read, no allocation.
//! * [`trace_event`] — Chrome trace-event / Perfetto JSON export of the
//!   span forest (`repro profile --trace-out`, openable in
//!   ui.perfetto.dev).
//! * [`metrics`] — a process-wide registry aggregating named counters
//!   (simulator `CoreStats` counters, tracer volumes) per trial and
//!   across a sweep (count/sum/min/max plus a power-of-two histogram
//!   for p50/p99).
//! * [`mod@diag`] — a leveled diagnostic sink (`MICROSAMPLER_LOG`) and sweep
//!   progress heartbeats (`MICROSAMPLER_PROGRESS`) replacing ad-hoc
//!   `eprintln!` debugging.
//! * [`json`] — a hand-rolled JSON emitter/parser (the workspace's
//!   dependency policy forbids serde) rendering stable-schema run
//!   reports; see `repro --json <dir>`.
//! * [`sarif`] — a minimal SARIF 2.1.0 emitter over [`json`] so the
//!   static lint (`repro lint --sarif`) uploads straight into CI code
//!   scanning.
//!
//! # Example
//!
//! ```
//! use microsampler_obs::{json, metrics, span};
//!
//! span::set_enabled(true);
//! span::take(); // drop anything a previous test left behind
//! {
//!     let _outer = span::span("correlate");
//!     let _inner = span::span("contingency");
//! }
//! let tree = span::take();
//! assert_eq!(tree[0].name, "correlate");
//! assert_eq!(tree[0].children[0].name, "contingency");
//! let report = json::Value::object().field("spans", span::nodes_to_json(&tree)).build();
//! assert!(report.render_compact().contains("\"correlate\""));
//! span::set_enabled(false);
//! ```

pub mod diag;
pub mod json;
pub mod metrics;
pub mod sarif;
pub mod span;
pub mod trace_event;

pub use diag::Level;
pub use json::Value;
pub use span::{span, SpanGuard, SpanNode};
