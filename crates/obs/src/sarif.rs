//! Minimal SARIF 2.1.0 emitter for CI code-scanning upload.
//!
//! Produces the small subset of the Static Analysis Results Interchange
//! Format that GitHub code scanning and most SARIF viewers consume: one
//! run, a tool descriptor with rules, and per-finding results carrying a
//! message, level, and a physical location. Built on the dependency-free
//! [`crate::json`] layer.

use crate::json::Value;

/// A reporting rule (one per violation class).
#[derive(Clone, Debug)]
pub struct Rule {
    /// Stable rule id, e.g. `CT-BRANCH`.
    pub id: String,
    /// One-line description shown by SARIF viewers.
    pub description: String,
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Id of the rule this finding violates.
    pub rule_id: String,
    /// SARIF level: `error`, `warning`, or `note`.
    pub level: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Artifact URI the finding is located in (a pseudo-path for
    /// assembled-in-memory programs is fine).
    pub artifact: String,
    /// 1-based line within the artifact.
    pub line: u64,
}

/// Renders a complete single-run SARIF document.
pub fn document(tool: &str, version: &str, rules: &[Rule], findings: &[Finding]) -> Value {
    let rules_json = Value::array(rules.iter().map(|r| {
        Value::object()
            .field("id", r.id.as_str())
            .field(
                "shortDescription",
                Value::object().field("text", r.description.as_str()).build(),
            )
            .build()
    }));
    let results = Value::array(findings.iter().map(|f| {
        Value::object()
            .field("ruleId", f.rule_id.as_str())
            .field("level", f.level)
            .field("message", Value::object().field("text", f.message.as_str()).build())
            .field(
                "locations",
                Value::array([Value::object()
                    .field(
                        "physicalLocation",
                        Value::object()
                            .field(
                                "artifactLocation",
                                Value::object().field("uri", f.artifact.as_str()).build(),
                            )
                            .field(
                                "region",
                                Value::object().field("startLine", f.line.max(1)).build(),
                            )
                            .build(),
                    )
                    .build()]),
            )
            .build()
    }));
    Value::object()
        .field("version", "2.1.0")
        .field(
            "$schema",
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        )
        .field(
            "runs",
            Value::array([Value::object()
                .field(
                    "tool",
                    Value::object()
                        .field(
                            "driver",
                            Value::object()
                                .field("name", tool)
                                .field("version", version)
                                .field("rules", rules_json)
                                .build(),
                        )
                        .build(),
                )
                .field("results", results)
                .build()]),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_has_required_sarif_shape() {
        let rules = [Rule { id: "CT-BRANCH".into(), description: "secret branch".into() }];
        let findings = [Finding {
            rule_id: "CT-BRANCH".into(),
            level: "error",
            message: "branch on secret at 0x80000010".into(),
            artifact: "kernel.s".into(),
            line: 5,
        }];
        let doc = document("microsampler-ct", "0.1.0", &rules, &findings);
        assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        let runs = doc.get("runs").and_then(|v| v.as_array()).unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(driver.get("name").and_then(|v| v.as_str()), Some("microsampler-ct"));
        let results = runs[0].get("results").and_then(|v| v.as_array()).unwrap();
        assert_eq!(results[0].get("ruleId").and_then(|v| v.as_str()), Some("CT-BRANCH"));
        // Round-trips through the parser.
        let text = doc.render_pretty();
        assert!(crate::json::parse(&text).is_ok());
    }

    #[test]
    fn empty_results_still_render() {
        let doc = document("t", "0", &[], &[]);
        assert!(doc.render_compact().contains("\"results\":[]"));
    }
}
