//! Hierarchical scoped timers ("spans") for the analysis pipeline.
//!
//! A span measures the wall-clock time of a scope and attributes it to a
//! node in a per-thread tree keyed by the nesting of active spans. Nodes
//! with the same name under the same parent aggregate (count + total), so
//! a sweep of N trials produces one `"sim.run"` node with `count == N`,
//! not N nodes.
//!
//! The layer is **off by default**. While disabled, [`span`] performs one
//! relaxed atomic load and returns an inert guard — no clock read, no
//! thread-local access, no allocation — so library code can be
//! instrumented unconditionally (see the disabled-cost bench in
//! `microsampler-bench`).
//!
//! Trees are per-thread; the pipeline is single-threaded per trial, and a
//! collector thread calls [`take`] between experiments. Toggling
//! [`set_enabled`] *while spans are open* is unsupported (the guard
//! tolerates it but attribution of the open spans is undefined).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::json::Value;

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

/// One aggregated node of the span tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name (static so the enabled path never allocates for names).
    pub name: &'static str,
    /// Number of times a span with this path closed.
    pub count: u64,
    /// Total wall-clock time across all closings.
    pub total: Duration,
    /// Child spans in first-entered order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &'static str) -> SpanNode {
        SpanNode { name, count: 0, total: Duration::ZERO, children: Vec::new() }
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Sum of the children's totals (time not covered by children is the
    /// node's self-time).
    pub fn children_total(&self) -> Duration {
        self.children.iter().map(|c| c.total).sum()
    }
}

#[derive(Default)]
struct Collector {
    roots: Vec<SpanNode>,
    /// Index path from `roots` to the innermost open span.
    stack: Vec<usize>,
}

impl Collector {
    fn enter(&mut self, name: &'static str) {
        let children = Self::children_at(&mut self.roots, &self.stack);
        let idx = match children.iter().position(|c| c.name == name) {
            Some(i) => i,
            None => {
                children.push(SpanNode::new(name));
                children.len() - 1
            }
        };
        self.stack.push(idx);
    }

    fn close(&mut self, elapsed: Duration) {
        // Tolerate an unmatched close (enable toggled mid-span, or `take`
        // called with a span open): drop the measurement.
        let Some(idx) = self.stack.pop() else { return };
        let children = Self::children_at(&mut self.roots, &self.stack);
        if let Some(node) = children.get_mut(idx) {
            node.count += 1;
            node.total += elapsed;
        }
    }

    fn children_at<'a>(roots: &'a mut Vec<SpanNode>, path: &[usize]) -> &'a mut Vec<SpanNode> {
        let mut cur = roots;
        for &i in path {
            cur = &mut cur[i].children;
        }
        cur
    }
}

/// Enables or disables span collection process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard returned by [`span`]; records the elapsed time on drop.
pub struct SpanGuard {
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            COLLECTOR.with(|c| c.borrow_mut().close(elapsed));
        }
    }
}

/// Opens a span. While the guard lives, nested [`span`] calls attribute
/// their time under this node.
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard { start: None };
    }
    COLLECTOR.with(|c| c.borrow_mut().enter(name));
    SpanGuard { start: Some(Instant::now()) }
}

/// Runs `f` inside a span.
pub fn with_span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = span(name);
    f()
}

/// Drains and returns this thread's completed span tree. Call outside any
/// open span; open spans are discarded.
pub fn take() -> Vec<SpanNode> {
    COLLECTOR.with(|c| {
        let mut col = c.borrow_mut();
        col.stack.clear();
        std::mem::take(&mut col.roots)
    })
}

/// Merges a forest (e.g. one returned by [`take`]) back into this
/// thread's collector at the root level, aggregating nodes with matching
/// names. Lets a caller drain and inspect its own subtree without losing
/// spans an enclosing collector already accumulated:
///
/// ```
/// # use microsampler_obs::span;
/// # span::set_enabled(true);
/// # span::take();
/// span::with_span("stage", || ());
/// let parked = span::take(); // inspect in isolation …
/// span::merge(parked);       // … then hand everything back
/// # assert_eq!(span::take()[0].name, "stage");
/// # span::set_enabled(false);
/// ```
///
/// Runs regardless of [`enabled`] (the nodes were already paid for).
pub fn merge(forest: Vec<SpanNode>) {
    if forest.is_empty() {
        return;
    }
    COLLECTOR.with(|c| merge_into(&mut c.borrow_mut().roots, forest));
}

/// Merges a forest under the innermost *open* span of the current thread
/// (or at the root level if no span is open), aggregating nodes with
/// matching names. This is how a worker pool attributes spans recorded on
/// worker threads to the pipeline stage that spawned them: each worker
/// drains its own tree with [`take`] and the caller re-attaches the
/// forests here, so e.g. a `simulate` span closed on a worker still shows
/// up under the caller's open `table6` span.
///
/// Runs regardless of [`enabled`] (the nodes were already paid for).
pub fn merge_under_current(forest: Vec<SpanNode>) {
    if forest.is_empty() {
        return;
    }
    COLLECTOR.with(|c| {
        let mut col = c.borrow_mut();
        let path = col.stack.clone();
        merge_into(Collector::children_at(&mut col.roots, &path), forest);
    });
}

fn merge_into(dst: &mut Vec<SpanNode>, src: Vec<SpanNode>) {
    for node in src {
        match dst.iter_mut().find(|d| d.name == node.name) {
            Some(d) => {
                d.count += node.count;
                d.total += node.total;
                merge_into(&mut d.children, node.children);
            }
            None => dst.push(node),
        }
    }
}

/// Looks up a node by a `/`-separated path in a forest (e.g.
/// `"table6/simulate"`).
pub fn find<'a>(nodes: &'a [SpanNode], path: &str) -> Option<&'a SpanNode> {
    let mut segments = path.split('/');
    let first = segments.next()?;
    let mut cur = nodes.iter().find(|n| n.name == first)?;
    for seg in segments {
        cur = cur.child(seg)?;
    }
    Some(cur)
}

/// Renders a span forest as JSON (stable schema: `name`, `count`,
/// `total_ns`, `children`).
pub fn nodes_to_json(nodes: &[SpanNode]) -> Value {
    Value::Array(nodes.iter().map(node_to_json).collect())
}

fn node_to_json(node: &SpanNode) -> Value {
    Value::object()
        .field("name", node.name)
        .field("count", node.count)
        .field("total_ns", node.total.as_nanos() as u64)
        .field("children", nodes_to_json(&node.children))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The enable flag is process-global; serialize tests toggling it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_records_zero_spans() {
        let _l = LOCK.lock().unwrap();
        set_enabled(false);
        take();
        {
            let _a = span("simulate");
            let _b = span("parse");
            with_span("correlate", || ());
        }
        assert!(take().is_empty());
    }

    #[test]
    fn nesting_and_aggregation() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        for _ in 0..3 {
            let _outer = span("run");
            with_span("simulate", || ());
            with_span("simulate", || ());
            with_span("analyze", || ());
        }
        let tree = take();
        set_enabled(false);
        assert_eq!(tree.len(), 1);
        let run = &tree[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.count, 3);
        let sim = run.child("simulate").unwrap();
        assert_eq!(sim.count, 6);
        assert_eq!(run.child("analyze").unwrap().count, 3);
        assert_eq!(find(&tree, "run/simulate").unwrap().count, 6);
        assert!(find(&tree, "run/missing").is_none());
        assert!(run.total >= run.children_total());
    }

    #[test]
    fn sibling_order_is_first_entered() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        with_span("first", || ());
        with_span("second", || ());
        with_span("first", || ());
        let tree = take();
        set_enabled(false);
        assert_eq!(tree.iter().map(|n| n.name).collect::<Vec<_>>(), ["first", "second"]);
        assert_eq!(tree[0].count, 2);
    }

    #[test]
    fn open_spans_are_discarded_by_take() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        let open = span("dangling");
        let tree = take();
        drop(open); // closes after take(); must not panic or misattribute
        let tree2 = take();
        set_enabled(false);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].count, 0, "open span has no completed closings");
        assert!(tree2.is_empty());
    }

    #[test]
    fn merge_aggregates_matching_paths() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        with_span("a", || with_span("b", || ()));
        let first = take();
        with_span("a", || with_span("c", || ()));
        merge(first);
        let tree = take();
        set_enabled(false);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].count, 2);
        assert!(tree[0].child("b").is_some());
        assert!(tree[0].child("c").is_some());
    }

    #[test]
    fn merge_under_current_attaches_to_open_span() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        // Simulate a worker tree drained on another thread…
        with_span("simulate", || ());
        let worker_forest = take();
        // …and re-attach it while a pipeline span is open.
        {
            let _stage = span("stage");
            merge_under_current(worker_forest);
        }
        let tree = take();
        set_enabled(false);
        assert_eq!(find(&tree, "stage/simulate").unwrap().count, 1);
        assert!(find(&tree, "simulate").is_none(), "must not land at the root");
    }

    #[test]
    fn merge_under_current_without_open_span_merges_at_root() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        with_span("simulate", || ());
        let forest = take();
        merge_under_current(forest);
        let tree = take();
        set_enabled(false);
        assert_eq!(find(&tree, "simulate").unwrap().count, 1);
    }

    #[test]
    fn json_schema_is_stable() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        take();
        with_span("outer", || with_span("inner", || ()));
        let tree = take();
        set_enabled(false);
        let json = nodes_to_json(&tree);
        let outer = &json.as_array().unwrap()[0];
        assert_eq!(outer.get("name").unwrap().as_str(), Some("outer"));
        assert_eq!(outer.get("count").unwrap().as_u64(), Some(1));
        assert!(outer.get("total_ns").unwrap().as_u64().is_some());
        let inner = &outer.get("children").unwrap().as_array().unwrap()[0];
        assert_eq!(inner.get("name").unwrap().as_str(), Some("inner"));
    }
}
