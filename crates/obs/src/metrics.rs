//! Process-wide metrics registry.
//!
//! Named observations aggregate into count/sum/min/max/last cells, so a
//! sweep that simulates N trials and records `sim.cycles` per trial ends
//! up with one cell carrying the per-trial distribution summary. Like the
//! span layer, the registry is **off by default** and [`record`] is one
//! relaxed atomic load when disabled.
//!
//! Naming convention used by the pipeline (dotted, lowercase):
//! `sim.*` for simulator counters exported from `CoreStats`
//! (`sim.cycles`, `sim.ipc`, `sim.branch_mispredicts`, …), `trace.*` for
//! tracer volumes (`trace.rows_sampled`, `trace.hash_bytes`, …).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Value;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<BTreeMap<String, Agg>> = Mutex::new(BTreeMap::new());

/// Aggregate of all observations recorded under one name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Agg {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Most recent observed value.
    pub last: f64,
}

impl Agg {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
    }

    fn first(value: f64) -> Agg {
        Agg { count: 1, sum: value, min: value, max: value, last: value }
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Enables or disables metric recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one observation under `name` (no-op while disabled).
pub fn record(name: &str, value: f64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    match reg.get_mut(name) {
        Some(agg) => agg.observe(value),
        None => {
            reg.insert(name.to_owned(), Agg::first(value));
        }
    }
}

/// Records a batch of `(suffix, value)` observations under
/// `prefix.suffix` names (no-op while disabled).
pub fn record_batch(prefix: &str, kvs: &[(&str, f64)]) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    for (suffix, value) in kvs {
        let name = format!("{prefix}.{suffix}");
        match reg.get_mut(&name) {
            Some(agg) => agg.observe(*value),
            None => {
                reg.insert(name, Agg::first(*value));
            }
        }
    }
}

/// Returns the current aggregates, sorted by name.
pub fn snapshot() -> Vec<(String, Agg)> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears the registry (e.g. between experiments of one process).
pub fn reset() {
    REGISTRY.lock().expect("metrics registry poisoned").clear();
}

/// Renders a snapshot as a JSON object keyed by metric name, each cell
/// `{count, sum, min, max, last, mean}`.
pub fn snapshot_to_json(snapshot: &[(String, Agg)]) -> Value {
    Value::Object(
        snapshot
            .iter()
            .map(|(name, agg)| {
                (
                    name.clone(),
                    Value::object()
                        .field("count", agg.count)
                        .field("sum", agg.sum)
                        .field("min", agg.min)
                        .field("max", agg.max)
                        .field("last", agg.last)
                        .field("mean", agg.mean())
                        .build(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; serialize tests touching it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn aggregates_across_observations() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        record("t.cycles", 10.0);
        record("t.cycles", 30.0);
        record_batch("t", &[("cycles", 20.0), ("ipc", 1.5)]);
        let snap = snapshot();
        set_enabled(false);
        let cycles = &snap.iter().find(|(n, _)| n == "t.cycles").unwrap().1;
        assert_eq!(cycles.count, 3);
        assert_eq!(cycles.sum, 60.0);
        assert_eq!(cycles.min, 10.0);
        assert_eq!(cycles.max, 30.0);
        assert_eq!(cycles.last, 20.0);
        assert_eq!(cycles.mean(), 20.0);
        assert!(snap.iter().any(|(n, _)| n == "t.ipc"));
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        record("nope", 1.0);
        record_batch("nope", &[("x", 2.0)]);
        assert!(snapshot().is_empty());
    }
}
