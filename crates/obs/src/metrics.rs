//! Process-wide metrics registry.
//!
//! Named observations aggregate into count/sum/min/max/last cells plus a
//! fixed power-of-two histogram ([`Agg::percentile`]), so a sweep that
//! simulates N trials and records `sim.cycles` per trial ends up with one
//! cell carrying the per-trial distribution summary (mean, p50, p99, …).
//! Like the span layer, the registry is **off by default** and [`record`]
//! is one relaxed atomic load when disabled.
//!
//! Naming convention used by the pipeline (dotted, lowercase):
//! `sim.*` for simulator counters exported from `CoreStats`
//! (`sim.cycles`, `sim.ipc`, `sim.branch_mispredicts`, …), `trace.*` for
//! tracer volumes (`trace.rows_sampled`, `trace.hash_bytes`, …).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json::Value;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<BTreeMap<String, Agg>> = Mutex::new(BTreeMap::new());

/// Number of histogram buckets per cell: bucket 0 holds `value ≤ 0`,
/// bucket `i > 0` holds `2^(i-32) ≤ value < 2^(i-31)` — covering
/// ~2.3e-10 through ~4.3e9 with one bucket per power of two.
const BUCKETS: usize = 64;

/// Aggregate of all observations recorded under one name.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Agg {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Most recent observed value.
    pub last: f64,
    /// Power-of-two histogram (see [`BUCKETS`]); fixed size keeps the cell
    /// `Copy` and the per-observation cost O(1).
    buckets: [u32; BUCKETS],
}

fn bucket_index(value: f64) -> usize {
    if value <= 0.0 || !value.is_finite() {
        return 0;
    }
    (value.log2().floor() as i32 + 32).clamp(0, BUCKETS as i32 - 1) as usize
}

fn bucket_floor(idx: usize) -> f64 {
    if idx == 0 {
        0.0
    } else {
        2f64.powi(idx as i32 - 32)
    }
}

impl Agg {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
        self.buckets[bucket_index(value)] += 1;
    }

    fn first(value: f64) -> Agg {
        let mut buckets = [0u32; BUCKETS];
        buckets[bucket_index(value)] = 1;
        Agg { count: 1, sum: value, min: value, max: value, last: value, buckets }
    }

    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate from the power-of-two histogram: the lower bound
    /// of the bucket containing the `q`-quantile observation, clamped to
    /// `[min, max]`. Resolution is one power of two; exact for cells with
    /// a single distinct value.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u64;
            if seen >= rank {
                return bucket_floor(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate ([`Agg::percentile`] at 0.5).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 99th-percentile estimate ([`Agg::percentile`] at 0.99).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Non-empty histogram buckets as `(lower_bound, count)` pairs.
    pub fn histogram(&self) -> Vec<(f64, u32)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_floor(i), c))
            .collect()
    }
}

/// Enables or disables metric recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one observation under `name` (no-op while disabled).
pub fn record(name: &str, value: f64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    match reg.get_mut(name) {
        Some(agg) => agg.observe(value),
        None => {
            reg.insert(name.to_owned(), Agg::first(value));
        }
    }
}

/// Records a batch of `(suffix, value)` observations under
/// `prefix.suffix` names (no-op while disabled).
pub fn record_batch(prefix: &str, kvs: &[(&str, f64)]) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut reg = REGISTRY.lock().expect("metrics registry poisoned");
    for (suffix, value) in kvs {
        let name = format!("{prefix}.{suffix}");
        match reg.get_mut(&name) {
            Some(agg) => agg.observe(*value),
            None => {
                reg.insert(name, Agg::first(*value));
            }
        }
    }
}

/// Returns the current aggregates, sorted by name.
pub fn snapshot() -> Vec<(String, Agg)> {
    let reg = REGISTRY.lock().expect("metrics registry poisoned");
    reg.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears the registry (e.g. between experiments of one process).
pub fn reset() {
    REGISTRY.lock().expect("metrics registry poisoned").clear();
}

/// Renders a snapshot as a JSON object keyed by metric name, each cell
/// `{count, sum, min, max, last, mean, p50, p99, histogram}`. The
/// `histogram` is the non-empty power-of-two buckets as `{ge, count}`
/// objects. (`p50`/`p99`/`histogram` are additive over the original
/// five-field schema; consumers of the old fields are unaffected.)
pub fn snapshot_to_json(snapshot: &[(String, Agg)]) -> Value {
    Value::Object(
        snapshot
            .iter()
            .map(|(name, agg)| {
                (
                    name.clone(),
                    Value::object()
                        .field("count", agg.count)
                        .field("sum", agg.sum)
                        .field("min", agg.min)
                        .field("max", agg.max)
                        .field("last", agg.last)
                        .field("mean", agg.mean())
                        .field("p50", agg.p50())
                        .field("p99", agg.p99())
                        .field(
                            "histogram",
                            Value::Array(
                                agg.histogram()
                                    .into_iter()
                                    .map(|(ge, count)| {
                                        Value::object()
                                            .field("ge", ge)
                                            .field("count", count)
                                            .build()
                                    })
                                    .collect(),
                            ),
                        )
                        .build(),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; serialize tests touching it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    #[test]
    fn aggregates_across_observations() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        record("t.cycles", 10.0);
        record("t.cycles", 30.0);
        record_batch("t", &[("cycles", 20.0), ("ipc", 1.5)]);
        let snap = snapshot();
        set_enabled(false);
        let cycles = &snap.iter().find(|(n, _)| n == "t.cycles").unwrap().1;
        assert_eq!(cycles.count, 3);
        assert_eq!(cycles.sum, 60.0);
        assert_eq!(cycles.min, 10.0);
        assert_eq!(cycles.max, 30.0);
        assert_eq!(cycles.last, 20.0);
        assert_eq!(cycles.mean(), 20.0);
        assert!(snap.iter().any(|(n, _)| n == "t.ipc"));
    }

    #[test]
    fn histogram_and_percentiles() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        // 99 observations at 10, one outlier at 5000.
        for _ in 0..99 {
            record("h.v", 10.0);
        }
        record("h.v", 5000.0);
        let snap = snapshot();
        set_enabled(false);
        let agg = &snap.iter().find(|(n, _)| n == "h.v").unwrap().1;
        assert_eq!(agg.count, 100);
        // p50 lands in the bucket holding 10 (floor 8, clamped to min 10).
        assert_eq!(agg.p50(), 10.0);
        // p99 still lands in the bulk; p100 == max catches the outlier.
        assert_eq!(agg.p99(), 10.0);
        assert_eq!(agg.percentile(1.0), 4096.0_f64.clamp(agg.min, agg.max));
        let hist = agg.histogram();
        assert_eq!(hist.len(), 2, "two distinct buckets: {hist:?}");
        assert_eq!(hist[0], (8.0, 99));
        assert_eq!(hist[1].1, 1);
        // Degenerate cells.
        let empty = Agg { count: 0, sum: 0.0, min: 0.0, max: 0.0, last: 0.0, buckets: [0; 64] };
        assert_eq!(empty.p50(), 0.0);
    }

    #[test]
    fn snapshot_json_gains_percentiles_additively() {
        let _l = LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        record("j.v", 4.0);
        record("j.v", 4.0);
        let json = snapshot_to_json(&snapshot());
        set_enabled(false);
        let cell = json.get("j.v").unwrap();
        for key in ["count", "sum", "min", "max", "last", "mean", "p50", "p99"] {
            assert!(cell.get(key).is_some(), "missing {key}");
        }
        assert_eq!(cell.get("p50").unwrap().as_f64(), Some(4.0));
        let hist = cell.get("histogram").unwrap().as_array().unwrap();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].get("ge").unwrap().as_f64(), Some(4.0));
        assert_eq!(hist[0].get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        record("nope", 1.0);
        record_batch("nope", &[("x", 2.0)]);
        assert!(snapshot().is_empty());
    }
}
