//! Hand-rolled JSON emitter and parser.
//!
//! The workspace's dependency policy rules out serde, so run reports are
//! rendered through this minimal tree model. Object fields keep insertion
//! order (stable schemas, diffable artifacts). Non-finite floats render
//! as `null`; floats otherwise use Rust's shortest round-trip form. The
//! parser exists so emitted artifacts can be round-trip-tested and so
//! downstream tooling inside the repo can read its own reports.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer above `i64::MAX` (e.g. 64-bit snapshot hashes).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => *a >= 0 && *a as u64 == *b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => *a as f64 == *b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Object(a), Object(b)) => a == b,
            _ => false,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        if v <= i64::MAX as u64 {
            Value::Int(v as i64)
        } else {
            Value::UInt(v)
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl Value {
    /// Starts an insertion-ordered object.
    pub fn object() -> ObjectBuilder {
        ObjectBuilder(Vec::new())
    }

    /// Builds an array from anything convertible to values.
    pub fn array<T: Into<Value>>(items: impl IntoIterator<Item = T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean contents, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned integer contents, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// Numeric contents as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Array contents, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline
    /// (the run-report file format).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Value::UInt(u) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form and
                    // always keeps a decimal point or exponent.
                    let _ = fmt::Write::write_fmt(out, format_args!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].write(out, indent, depth)
                })
            }
            Value::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, depth| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (object field order is preserved).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + (((first - 0xd800) as u32) << 10)
                                        + (second - 0xdc00) as u32;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first as u32)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

/// Builder for insertion-ordered objects.
pub struct ObjectBuilder(Vec<(String, Value)>);

impl ObjectBuilder {
    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> ObjectBuilder {
        self.0.push((key.to_owned(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t cr\r nul\u{0} bell\u{7} é 日本 🦀";
        let v = Value::object().field("s", nasty).build();
        let text = v.render_compact();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0000"));
        let back = parse(&text).unwrap();
        assert_eq!(back.get("s").unwrap().as_str().unwrap(), nasty);
    }

    #[test]
    fn value_round_trips_compact_and_pretty() {
        let v = Value::object()
            .field("null", Value::Null)
            .field("bools", Value::Array(vec![Value::Bool(true), Value::Bool(false)]))
            .field("ints", Value::Array(vec![Value::Int(-3), Value::Int(0), Value::from(7u64)]))
            .field("big_hash", u64::MAX)
            .field("floats", Value::Array(vec![Value::Float(1.0), Value::Float(0.125e-3)]))
            .field("empty_arr", Value::Array(vec![]))
            .field("empty_obj", Value::Object(vec![]))
            .field("nested", Value::object().field("k", "v").build())
            .build();
        for text in [v.render_compact(), v.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn field_order_is_preserved() {
        let v = Value::object().field("zebra", 1u64).field("alpha", 2u64).build();
        let text = v.render_compact();
        assert!(text.find("zebra").unwrap() < text.find("alpha").unwrap());
        match parse(&text).unwrap() {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "zebra");
                assert_eq!(fields[1].0, "alpha");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Value::Float(f64::NAN).render_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).render_compact(), "null");
    }

    #[test]
    fn big_u64_survives() {
        let h = 0xdead_beef_dead_beefu64;
        let text = Value::from(h).render_compact();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(h));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Value::Str("Aé".into()));
        // Surrogate pair for 🦀 U+1F980.
        assert_eq!(parse(r#""\ud83e\udd80""#).unwrap(), Value::Str("🦀".into()));
    }
}
