use std::fmt;

/// Cramér's V threshold above which the paper considers association
/// "strong" (Cohen's conventions, paper §V-C2).
pub const CRAMERS_V_STRONG: f64 = 0.5;

/// p-value threshold below which the measured association is considered
/// statistically significant (paper §V-C2).
pub const P_SIGNIFICANT: f64 = 0.05;

/// Qualitative association strength per Cohen's conventions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strength {
    /// V < 0.1
    Negligible,
    /// 0.1 <= V < 0.3
    Weak,
    /// 0.3 <= V < 0.5
    Moderate,
    /// V >= 0.5
    Strong,
}

impl fmt::Display for Strength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strength::Negligible => "negligible",
            Strength::Weak => "weak",
            Strength::Moderate => "moderate",
            Strength::Strong => "strong",
        };
        f.write_str(s)
    }
}

/// The result of a class↔state association test on one contingency table.
///
/// Combines Pearson's χ² (with degrees of freedom and upper-tail p-value)
/// and Cramér's V in both the paper's plain form and a bias-corrected form.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Association {
    /// Pearson's χ² statistic.
    pub chi2: f64,
    /// Degrees of freedom, `(r-1)(k-1)` over non-empty rows/columns.
    pub dof: u64,
    /// Upper-tail p-value: probability of a χ² at least this large under
    /// the null hypothesis of independence.
    pub p_value: f64,
    /// Cramér's V (paper Eq. 2), in `[0, 1]`.
    pub cramers_v: f64,
    /// Bias-corrected Cramér's V (Bergsma 2013).
    pub cramers_v_corrected: f64,
    /// Total number of observations.
    pub n: u64,
    /// Number of non-empty classes (rows).
    pub classes: u64,
    /// Number of non-empty categories (columns).
    pub categories: u64,
}

impl Association {
    /// An association carrying no evidence (empty or degenerate table).
    pub fn none() -> Association {
        Association {
            chi2: 0.0,
            dof: 0,
            p_value: 1.0,
            cramers_v: 0.0,
            cramers_v_corrected: 0.0,
            n: 0,
            classes: 0,
            categories: 0,
        }
    }

    /// True when the association is statistically significant
    /// (p < [`P_SIGNIFICANT`]).
    pub fn is_significant(&self) -> bool {
        self.p_value < P_SIGNIFICANT
    }

    /// Qualitative strength of the (plain) Cramér's V.
    pub fn strength(&self) -> Strength {
        match self.cramers_v {
            v if v >= 0.5 => Strength::Strong,
            v if v >= 0.3 => Strength::Moderate,
            v if v >= 0.1 => Strength::Weak,
            _ => Strength::Negligible,
        }
    }

    /// The paper's leak verdict: strong (V > 0.5) **and** statistically
    /// significant (p < 0.05) association.
    pub fn is_leak(&self) -> bool {
        self.cramers_v > CRAMERS_V_STRONG && self.is_significant()
    }
}

impl fmt::Display for Association {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "V={:.3} ({}) chi2={:.2} dof={} p={:.3e} n={}",
            self.cramers_v,
            self.strength(),
            self.chi2,
            self.dof,
            self.p_value,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strength_bands() {
        let mut a = Association::none();
        for (v, s) in [
            (0.0, Strength::Negligible),
            (0.09, Strength::Negligible),
            (0.1, Strength::Weak),
            (0.29, Strength::Weak),
            (0.3, Strength::Moderate),
            (0.49, Strength::Moderate),
            (0.5, Strength::Strong),
            (1.0, Strength::Strong),
        ] {
            a.cramers_v = v;
            assert_eq!(a.strength(), s, "v={v}");
        }
    }

    #[test]
    fn leak_needs_both_conditions() {
        let mut a = Association::none();
        a.cramers_v = 0.9;
        a.p_value = 0.5; // strong but not significant
        assert!(!a.is_leak());
        a.p_value = 0.001;
        assert!(a.is_leak());
        a.cramers_v = 0.4; // significant but not strong
        assert!(!a.is_leak());
    }

    #[test]
    fn none_is_inert() {
        let a = Association::none();
        assert!(!a.is_leak());
        assert!(!a.is_significant());
        assert_eq!(a.strength(), Strength::Negligible);
    }

    #[test]
    fn display_is_informative() {
        let a = Association::none();
        let s = a.to_string();
        assert!(s.contains("V=0.000"));
        assert!(s.contains("negligible"));
    }
}
