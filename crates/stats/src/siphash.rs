//! SipHash — the snapshot hash used by MicroSampler.
//!
//! The paper hashes each microarchitectural iteration snapshot with
//! "Python's default SipHash" (a 64-bit PRF). CPython uses SipHash-1-3 for
//! its string hash; the original SipHash paper recommends SipHash-2-4. Both
//! parameterizations are provided; the framework defaults to 1-3 and the
//! choice is benchmarked as an ablation.

/// Streaming SipHash state with configurable compression (`C`) and
/// finalization (`D`) round counts.
///
/// # Example
///
/// ```
/// use microsampler_stats::SipHasher;
/// let mut h = SipHasher::new_1_3(0, 0);
/// h.write(b"snapshot bytes");
/// let digest: u64 = h.finish();
/// assert_eq!(digest, SipHasher::new_1_3(0, 0).hash(b"snapshot bytes"));
/// ```
#[derive(Clone, Debug)]
pub struct SipHasher {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    c_rounds: u32,
    d_rounds: u32,
    buf: [u8; 8],
    buf_len: usize,
    total_len: u64,
}

impl SipHasher {
    /// Creates a SipHash-1-3 instance (CPython's parameterization).
    pub fn new_1_3(k0: u64, k1: u64) -> SipHasher {
        SipHasher::with_rounds(k0, k1, 1, 3)
    }

    /// Creates a SipHash-2-4 instance (the reference parameterization).
    pub fn new_2_4(k0: u64, k1: u64) -> SipHasher {
        SipHasher::with_rounds(k0, k1, 2, 4)
    }

    /// Creates a SipHash instance with explicit round counts.
    ///
    /// # Panics
    ///
    /// Panics if either round count is zero.
    pub fn with_rounds(k0: u64, k1: u64, c_rounds: u32, d_rounds: u32) -> SipHasher {
        assert!(c_rounds > 0 && d_rounds > 0, "round counts must be positive");
        SipHasher {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            c_rounds,
            d_rounds,
            buf: [0; 8],
            buf_len: 0,
            total_len: 0,
        }
    }

    #[inline]
    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13);
        self.v1 ^= self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16);
        self.v3 ^= self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21);
        self.v3 ^= self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17);
        self.v1 ^= self.v2;
        self.v2 = self.v2.rotate_left(32);
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v3 ^= m;
        for _ in 0..self.c_rounds {
            self.round();
        }
        self.v0 ^= m;
    }

    /// Absorbs bytes into the hash state.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.total_len = self.total_len.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let take = bytes.len().min(8 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len == 8 {
                let m = u64::from_le_bytes(self.buf);
                self.compress(m);
                self.buf_len = 0;
            }
            if bytes.is_empty() {
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.compress(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Convenience: absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Finalizes and returns the 64-bit digest. Consumes the hasher.
    pub fn finish(mut self) -> u64 {
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = self.total_len as u8;
        let m = u64::from_le_bytes(last);
        self.compress(m);
        self.v2 ^= 0xFF;
        for _ in 0..self.d_rounds {
            self.round();
        }
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }

    /// One-shot hash of a byte slice (consumes the hasher's initial state).
    pub fn hash(self, bytes: &[u8]) -> u64 {
        let mut h = self;
        h.write(bytes);
        h.finish()
    }
}

/// One-shot SipHash-1-3 with the given 128-bit key.
pub fn siphash13(k0: u64, k1: u64, bytes: &[u8]) -> u64 {
    SipHasher::new_1_3(k0, k1).hash(bytes)
}

/// One-shot SipHash-2-4 with the given 128-bit key.
pub fn siphash24(k0: u64, k1: u64, bytes: &[u8]) -> u64 {
    SipHasher::new_2_4(k0, k1).hash(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First entries of the official SipHash-2-4 test vectors from the
    /// reference implementation (key = 00..0f, input = 0, 1, 2, ... bytes).
    const SIP24_VECTORS: [u64; 8] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
    ];

    fn reference_key() -> (u64, u64) {
        let k: Vec<u8> = (0u8..16).collect();
        (
            u64::from_le_bytes(k[..8].try_into().unwrap()),
            u64::from_le_bytes(k[8..].try_into().unwrap()),
        )
    }

    #[test]
    fn siphash24_reference_vectors() {
        let (k0, k1) = reference_key();
        for (len, &expect) in SIP24_VECTORS.iter().enumerate() {
            let input: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(k0, k1, &input), expect, "length {len}");
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let (k0, k1) = reference_key();
        let data: Vec<u8> = (0..100u8).collect();
        for split in [0usize, 1, 3, 7, 8, 9, 50, 99, 100] {
            let mut h = SipHasher::new_2_4(k0, k1);
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), siphash24(k0, k1, &data), "split {split}");
        }
    }

    #[test]
    fn one_three_differs_from_two_four() {
        assert_ne!(siphash13(1, 2, b"abc"), siphash24(1, 2, b"abc"));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(siphash13(0, 0, b"x"), siphash13(0, 1, b"x"));
        assert_ne!(siphash13(0, 0, b"x"), siphash13(1, 0, b"x"));
    }

    #[test]
    fn length_extension_distinct() {
        // "a" then "b" must differ from "ab" written at once only via the
        // length tag — they are the same stream, so they must be EQUAL.
        let mut h1 = SipHasher::new_1_3(0, 0);
        h1.write(b"a");
        h1.write(b"b");
        assert_eq!(h1.finish(), siphash13(0, 0, b"ab"));
        // But a trailing zero byte must change the digest.
        assert_ne!(siphash13(0, 0, b"ab"), siphash13(0, 0, b"ab\0"));
    }

    #[test]
    fn write_u64_matches_bytes() {
        let mut h1 = SipHasher::new_1_3(3, 4);
        h1.write_u64(0x0102_0304_0506_0708);
        let mut h2 = SipHasher::new_1_3(3, 4);
        h2.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rounds_panics() {
        SipHasher::with_rounds(0, 0, 0, 4);
    }
}
