//! Statistical machinery for the MicroSampler leakage-detection framework.
//!
//! MicroSampler's analysis (paper §V-C) hashes microarchitectural iteration
//! snapshots, counts hash frequencies per secret class in a contingency
//! table, and measures the class↔state association with Cramér's V backed by
//! a chi-squared p-value. This crate provides each of those pieces as an
//! independent, well-tested component:
//!
//! * [`SipHasher`] / [`siphash13`] / [`siphash24`] — the snapshot hash
//!   (the paper uses Python's default SipHash; we provide both common
//!   parameterizations, defaulting to SipHash-1-3 to match CPython).
//! * [`ContingencyTable`] — class × category frequency counts.
//! * [`chi_squared`] and [`gamma::gamma_q`] — Pearson's χ² and its p-value.
//! * [`cramers_v`] / [`cramers_v_corrected`] — association strength.
//! * [`Association`] — the bundled verdict used by the core framework,
//!   including the paper's interpretation thresholds (V > 0.5 strong,
//!   p < 0.05 significant).
//!
//! # Example
//!
//! ```
//! use microsampler_stats::ContingencyTable;
//!
//! // Hash 7 only ever occurs when the key bit is 1: strong association.
//! let mut table = ContingencyTable::new();
//! for _ in 0..50 { table.record(0u8, 3u64); }
//! for _ in 0..50 { table.record(1u8, 7u64); }
//! let assoc = table.association();
//! assert!(assoc.cramers_v > 0.99);
//! assert!(assoc.p_value < 0.05);
//! assert!(assoc.is_leak());
//! ```

mod association;
mod contingency;
pub mod gamma;
pub mod sequential;
mod siphash;

pub use association::{Association, Strength, CRAMERS_V_STRONG, P_SIGNIFICANT};
pub use contingency::ContingencyTable;
pub use sequential::{SeqConfig, SeqVerdict, StreamingAssociation};
pub use siphash::{siphash13, siphash24, SipHasher};

/// Pearson's chi-squared statistic for a table of observed counts.
///
/// `rows` is a rectangular matrix of non-negative observation counts; the
/// expected count for each cell is computed under the independence
/// assumption (row sum × column sum / total, paper Eq. 4). Returns the χ²
/// statistic and the degrees of freedom `(r-1)(k-1)`.
///
/// Rows and columns whose sums are zero are ignored (they contribute neither
/// to the statistic nor to the degrees of freedom).
///
/// # Panics
///
/// Panics if `rows` is not rectangular.
pub fn chi_squared(rows: &[Vec<u64>]) -> (f64, u64) {
    if rows.is_empty() {
        return (0.0, 0);
    }
    let width = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), width, "contingency matrix must be rectangular");
    }
    let row_sums: Vec<u64> = rows.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..width).map(|c| rows.iter().map(|r| r[c]).sum()).collect();
    let n: u64 = row_sums.iter().sum();
    if n == 0 {
        return (0.0, 0);
    }
    let live_rows = row_sums.iter().filter(|&&s| s > 0).count() as u64;
    let live_cols = col_sums.iter().filter(|&&s| s > 0).count() as u64;
    if live_rows < 2 || live_cols < 2 {
        return (0.0, 0);
    }
    let mut chi2 = 0.0;
    for (i, row) in rows.iter().enumerate() {
        if row_sums[i] == 0 {
            continue;
        }
        for (j, &obs) in row.iter().enumerate() {
            if col_sums[j] == 0 {
                continue;
            }
            let expected = row_sums[i] as f64 * col_sums[j] as f64 / n as f64;
            let d = obs as f64 - expected;
            chi2 += d * d / expected;
        }
    }
    (chi2, (live_rows - 1) * (live_cols - 1))
}

/// Cramér's V (paper Eq. 2): `sqrt(chi2 / (N * min(k-1, r-1)))`.
///
/// `n` is the total number of observations; `live_rows`/`live_cols` the
/// numbers of non-empty rows and columns. Returns 0 for degenerate tables
/// (fewer than two live rows or columns, or `n == 0`).
pub fn cramers_v(chi2: f64, n: u64, live_rows: u64, live_cols: u64) -> f64 {
    if n == 0 || live_rows < 2 || live_cols < 2 {
        return 0.0;
    }
    let denom = n as f64 * (live_rows.min(live_cols) - 1) as f64;
    (chi2 / denom).sqrt().min(1.0)
}

/// Bias-corrected Cramér's V (Bergsma 2013).
///
/// The plain estimator is biased upward for tables with many categories and
/// few samples — exactly the false-positive mode the paper guards against
/// with p-values (§VII-D). This variant corrects the statistic itself and is
/// offered as an extension; the paper's headline numbers use [`cramers_v`].
pub fn cramers_v_corrected(chi2: f64, n: u64, live_rows: u64, live_cols: u64) -> f64 {
    if n == 0 || live_rows < 2 || live_cols < 2 {
        return 0.0;
    }
    let n = n as f64;
    let r = live_rows as f64;
    let k = live_cols as f64;
    let phi2 = chi2 / n;
    let phi2_corr = (phi2 - (k - 1.0) * (r - 1.0) / (n - 1.0)).max(0.0);
    let r_corr = r - (r - 1.0) * (r - 1.0) / (n - 1.0);
    let k_corr = k - (k - 1.0) * (k - 1.0) / (n - 1.0);
    let denom = (r_corr.min(k_corr) - 1.0).max(f64::EPSILON);
    (phi2_corr / denom).sqrt().min(1.0)
}

/// Upper-tail p-value for a chi-squared statistic with `dof` degrees of
/// freedom: `P(X >= chi2)` under the null (independence) hypothesis.
///
/// Returns 1.0 when `dof == 0` (a degenerate table carries no evidence).
pub fn chi_squared_p_value(chi2: f64, dof: u64) -> f64 {
    if dof == 0 || chi2 <= 0.0 {
        return 1.0;
    }
    gamma::gamma_q(dof as f64 / 2.0, chi2 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_squared_textbook_example() {
        // Classic 2x2: 90/60 vs 60/90 → chi2 = 12 with N=300? Compute:
        // rows (90,60),(60,90); row sums 150,150; col sums 150,150; E=75.
        // chi2 = 4 * (15^2/75) = 12.
        let (chi2, dof) = chi_squared(&[vec![90, 60], vec![60, 90]]);
        assert!((chi2 - 12.0).abs() < 1e-9);
        assert_eq!(dof, 1);
    }

    #[test]
    fn chi_squared_independent_table_is_zero() {
        let (chi2, dof) = chi_squared(&[vec![10, 20, 30], vec![20, 40, 60]]);
        assert!(chi2.abs() < 1e-9);
        assert_eq!(dof, 2);
    }

    #[test]
    fn zero_rows_and_cols_excluded() {
        let (chi2, dof) = chi_squared(&[vec![10, 0, 20], vec![0, 0, 0], vec![20, 0, 10]]);
        let (chi2b, dofb) = chi_squared(&[vec![10, 20], vec![20, 10]]);
        assert!((chi2 - chi2b).abs() < 1e-12);
        assert_eq!(dof, dofb);
    }

    #[test]
    fn degenerate_tables() {
        assert_eq!(chi_squared(&[]), (0.0, 0));
        assert_eq!(chi_squared(&[vec![5, 5]]), (0.0, 0)); // one row
        assert_eq!(chi_squared(&[vec![5], vec![7]]), (0.0, 0)); // one col
        assert_eq!(chi_squared(&[vec![0, 0], vec![0, 0]]), (0.0, 0));
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_input_panics() {
        chi_squared(&[vec![1, 2], vec![3]]);
    }

    #[test]
    fn p_value_matches_tables() {
        // Standard critical values: chi2(1 dof): 3.841 → p=0.05, 6.635 → 0.01
        assert!((chi_squared_p_value(3.841, 1) - 0.05).abs() < 1e-3);
        assert!((chi_squared_p_value(6.635, 1) - 0.01).abs() < 1e-3);
        // chi2(2 dof) = 5.991 → 0.05
        assert!((chi_squared_p_value(5.991, 2) - 0.05).abs() < 1e-3);
        // chi2(10 dof) = 18.307 → 0.05
        assert!((chi_squared_p_value(18.307, 10) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn p_value_edges() {
        assert_eq!(chi_squared_p_value(0.0, 5), 1.0);
        assert_eq!(chi_squared_p_value(10.0, 0), 1.0);
        assert!(chi_squared_p_value(1e6, 1) < 1e-12);
    }

    #[test]
    fn cramers_v_perfect_association() {
        let (chi2, _) = chi_squared(&[vec![50, 0], vec![0, 50]]);
        let v = cramers_v(chi2, 100, 2, 2);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cramers_v_no_association() {
        let (chi2, _) = chi_squared(&[vec![25, 25], vec![25, 25]]);
        assert_eq!(cramers_v(chi2, 100, 2, 2), 0.0);
    }

    #[test]
    fn cramers_v_degenerate() {
        assert_eq!(cramers_v(10.0, 0, 2, 2), 0.0);
        assert_eq!(cramers_v(10.0, 100, 1, 5), 0.0);
    }

    #[test]
    fn corrected_v_not_above_plain() {
        let (chi2, _) = chi_squared(&[vec![30, 20, 10], vec![10, 20, 30]]);
        let plain = cramers_v(chi2, 120, 2, 3);
        let corr = cramers_v_corrected(chi2, 120, 2, 3);
        assert!(corr <= plain + 1e-12);
        assert!(corr >= 0.0);
    }
}
