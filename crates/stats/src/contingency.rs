use crate::association::Association;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

/// A class × category frequency table (paper §V-C1, Table II).
///
/// Rows are secret-data classes (e.g. key bit 0 / key bit 1); columns are
/// categories (e.g. unique snapshot hashes). Cells count how often each
/// category was observed for each class.
///
/// Generic over the class (`C`) and category (`K`) types; MicroSampler uses
/// `C = u64` (class label) and `K = u64` (snapshot hash).
///
/// # Example
///
/// ```
/// use microsampler_stats::ContingencyTable;
/// let mut t = ContingencyTable::new();
/// t.record("bit0", 0xAAAA_u64);
/// t.record("bit1", 0xBBBB_u64);
/// t.record("bit1", 0xBBBB_u64);
/// assert_eq!(t.count(&"bit1", &0xBBBB), 2);
/// assert_eq!(t.total(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContingencyTable<C = u64, K = u64>
where
    C: Ord,
    K: Ord,
{
    cells: BTreeMap<C, BTreeMap<K, u64>>,
    categories: BTreeMap<K, u64>,
    total: u64,
}

impl<C: Ord + Clone, K: Ord + Clone> ContingencyTable<C, K> {
    /// Creates an empty table.
    pub fn new() -> ContingencyTable<C, K> {
        ContingencyTable { cells: BTreeMap::new(), categories: BTreeMap::new(), total: 0 }
    }

    /// Records one observation of `category` under `class`.
    pub fn record(&mut self, class: C, category: K) {
        self.record_n(class, category, 1);
    }

    /// Records `n` observations at once.
    pub fn record_n(&mut self, class: C, category: K, n: u64) {
        if n == 0 {
            return;
        }
        *self.cells.entry(class).or_default().entry(category.clone()).or_insert(0) += n;
        *self.categories.entry(category).or_insert(0) += n;
        self.total += n;
    }

    /// Count in a single cell.
    pub fn count(&self, class: &C, category: &K) -> u64 {
        self.cells.get(class).and_then(|row| row.get(category)).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct classes observed.
    pub fn class_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of distinct categories observed.
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// Classes in sorted order.
    pub fn classes(&self) -> impl Iterator<Item = &C> {
        self.cells.keys()
    }

    /// Categories in sorted order.
    pub fn categories(&self) -> impl Iterator<Item = &K> {
        self.categories.keys()
    }

    /// Categories observed for `class`.
    pub fn categories_of(&self, class: &C) -> impl Iterator<Item = (&K, u64)> {
        self.cells.get(class).into_iter().flat_map(|row| row.iter().map(|(k, &n)| (k, n)))
    }

    /// Densifies the table into a rectangular count matrix
    /// (rows in class order, columns in category order).
    pub fn to_matrix(&self) -> Vec<Vec<u64>> {
        self.cells
            .values()
            .map(|row| self.categories.keys().map(|k| row.get(k).copied().unwrap_or(0)).collect())
            .collect()
    }

    /// Runs the full association analysis (χ², p-value, Cramér's V).
    pub fn association(&self) -> Association {
        let matrix = self.to_matrix();
        let (chi2, dof) = crate::chi_squared(&matrix);
        let live_rows = matrix.iter().filter(|r| r.iter().any(|&c| c > 0)).count() as u64;
        let live_cols =
            (0..self.categories.len()).filter(|&j| matrix.iter().any(|r| r[j] > 0)).count() as u64;
        Association {
            chi2,
            dof,
            p_value: crate::chi_squared_p_value(chi2, dof),
            cramers_v: crate::cramers_v(chi2, self.total, live_rows, live_cols),
            cramers_v_corrected: crate::cramers_v_corrected(chi2, self.total, live_rows, live_cols),
            n: self.total,
            classes: live_rows,
            categories: live_cols,
        }
    }
}

impl<C: Ord + Clone + Hash, K: Ord + Clone + Hash> FromIterator<(C, K)> for ContingencyTable<C, K> {
    fn from_iter<I: IntoIterator<Item = (C, K)>>(iter: I) -> Self {
        let mut t = ContingencyTable::new();
        for (c, k) in iter {
            t.record(c, k);
        }
        t
    }
}

impl<C: Ord + Clone + Hash, K: Ord + Clone + Hash> Extend<(C, K)> for ContingencyTable<C, K> {
    fn extend<I: IntoIterator<Item = (C, K)>>(&mut self, iter: I) {
        for (c, k) in iter {
            self.record(c, k);
        }
    }
}

impl<C: Ord + Clone + fmt::Display, K: Ord + Clone + fmt::Display> fmt::Display
    for ContingencyTable<C, K>
{
    /// Renders the table in the style of the paper's Table II.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12} |", "class\\hash")?;
        for k in self.categories.keys() {
            write!(f, " {k:>12}")?;
        }
        writeln!(f)?;
        for (c, row) in &self.cells {
            write!(f, "{c:>12} |")?;
            for k in self.categories.keys() {
                write!(f, " {:>12}", row.get(k).copied().unwrap_or(0))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut t = ContingencyTable::new();
        t.record(0u8, 10u64);
        t.record(0u8, 10u64);
        t.record(1u8, 20u64);
        assert_eq!(t.count(&0, &10), 2);
        assert_eq!(t.count(&0, &20), 0);
        assert_eq!(t.count(&1, &20), 1);
        assert_eq!(t.total(), 3);
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.category_count(), 2);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut t: ContingencyTable<u8, u64> = ContingencyTable::new();
        t.record_n(0, 1, 0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.class_count(), 0);
    }

    #[test]
    fn matrix_is_rectangular_and_ordered() {
        let t: ContingencyTable<u8, u64> =
            [(1u8, 5u64), (0, 3), (0, 5), (1, 3), (1, 3)].into_iter().collect();
        // classes 0,1; categories 3,5
        assert_eq!(t.to_matrix(), vec![vec![1, 1], vec![2, 1]]);
    }

    #[test]
    fn association_detects_perfect_split() {
        let mut t = ContingencyTable::new();
        for _ in 0..100 {
            t.record(0u8, 111u64);
            t.record(1u8, 222u64);
        }
        let a = t.association();
        assert!((a.cramers_v - 1.0).abs() < 1e-9);
        assert!(a.p_value < 1e-6);
        assert!(a.is_leak());
    }

    #[test]
    fn association_clears_identical_distributions() {
        let mut t = ContingencyTable::new();
        for _ in 0..100 {
            for h in [7u64, 8, 9] {
                t.record(0u8, h);
                t.record(1u8, h);
            }
        }
        let a = t.association();
        assert!(a.cramers_v < 1e-9);
        assert!(!a.is_leak());
    }

    #[test]
    fn single_category_is_no_evidence() {
        let mut t = ContingencyTable::new();
        for _ in 0..50 {
            t.record(0u8, 42u64);
            t.record(1u8, 42u64);
        }
        let a = t.association();
        assert_eq!(a.cramers_v, 0.0);
        assert_eq!(a.p_value, 1.0);
    }

    #[test]
    fn display_contains_counts() {
        let mut t = ContingencyTable::new();
        t.record_n(0u8, 100u64, 234);
        t.record_n(1u8, 100u64, 256);
        let s = t.to_string();
        assert!(s.contains("234"));
        assert!(s.contains("256"));
    }

    #[test]
    fn extend_merges() {
        let mut t: ContingencyTable<u8, u64> = ContingencyTable::new();
        t.extend([(0u8, 1u64), (0, 1)]);
        t.extend([(0u8, 1u64)]);
        assert_eq!(t.count(&0, &1), 3);
    }
}
