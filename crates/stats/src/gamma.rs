//! Regularized incomplete gamma functions, used for chi-squared p-values.
//!
//! `P(a, x)` is the lower regularized incomplete gamma function and
//! `Q(a, x) = 1 - P(a, x)` the upper one. The chi-squared survival function
//! with `k` degrees of freedom evaluated at `x` is `Q(k/2, x/2)`.
//!
//! Implementation follows the classic series/continued-fraction split
//! (Numerical Recipes `gammp`/`gammq`): the series converges fast for
//! `x < a + 1`, the Lentz continued fraction elsewhere.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
///
/// Accurate to ~15 significant digits for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Lower regularized incomplete gamma `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Upper regularized incomplete gamma `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 3e-15;

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction representation.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1)=1, Gamma(2)=1, Gamma(3)=2, Gamma(4)=6, Gamma(5)=24
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(3.0) - 2.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(4.0) - 6.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        // Gamma(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 3.0, 10.0, 60.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-10, "a={a} x={x} sum={s}");
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.0, 0.5, 1.0, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_special_case() {
        // P(1/2, x) = erf(sqrt(x)); erf(1) = 0.8427007929497149
        assert!((gamma_p(0.5, 1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
    }

    #[test]
    fn monotone_in_x() {
        let mut last = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let p = gamma_p(3.0, x);
            assert!(p >= last - 1e-12);
            last = p;
        }
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn bad_a_panics() {
        gamma_p(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "x >= 0")]
    fn bad_x_panics() {
        gamma_q(1.0, -1.0);
    }
}
