//! Sequential (anytime-valid) association statistics.
//!
//! The batch pipeline re-walks every recorded observation each time it
//! wants an [`Association`]; at `n` observations a verdict check costs
//! `O(n)`. This module supports *peeking*: observations stream into a
//! [`StreamingAssociation`] one at a time (`O(log cells)` each), and a
//! verdict check recomputes the association from the incremental counts
//! in `O(cells)` — walking the sorted maps in exactly the order the
//! dense-matrix batch path does, so the result is **bit-identical** to
//! [`ContingencyTable::association`] on the same multiset of
//! observations (property-tested in `tests/properties.rs`).
//!
//! On top of the streaming estimates, [`SeqConfig`] defines a stitched
//! confidence-sequence boundary that turns the paper's fixed-budget leak
//! rule (V > 0.5 **and** p < 0.05) into a three-way *anytime* verdict:
//!
//! * [`SeqVerdict::Leaky`] — the lower confidence bound on V clears the
//!   strong threshold and the (look-corrected) p-value is significant;
//! * [`SeqVerdict::Clean`] — the upper confidence bound on the
//!   *bias-corrected* V is below the strong threshold for *every*
//!   monitored association, so the fixed-budget rule can no longer fire;
//! * [`SeqVerdict::Undecided`] — keep sampling.
//!
//! The clean side judges the corrected estimator deliberately: plain V
//! over snapshot tables is inflated by `≈ sqrt(dof/n)` at small `n`
//! (the false-positive mode the paper guards against with p-values,
//! §VII-D), so it cannot certify cleanliness until the full budget. The
//! Bergsma correction subtracts exactly that inflation, letting genuinely
//! clean tables close within a couple of looks while a true leak keeps
//! both estimators high. The leaky side stays on plain V + p — the
//! paper's own rule, made anytime.
//!
//! The boundary spends its error budget across looks with the classic
//! `1/(j(j+1))` series (sums to 1), so the verdict is valid at *every*
//! look, not just a pre-registered final one — the property that makes
//! early stopping safe. The radius scale is calibrated against this
//! simulator's null noise floor; the `repro audit --robustness`
//! stability layer cross-checks the calibration empirically on every CI
//! run.

use crate::association::Association;
use crate::ContingencyTable;

/// Three-way anytime verdict from a confidence sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SeqVerdict {
    /// Some association's lower confidence bound cleared the strong
    /// threshold with a significant (look-corrected) p-value.
    Leaky,
    /// Every association's upper confidence bound is below the strong
    /// threshold: the leak rule can no longer fire at full budget.
    Clean,
    /// Not enough evidence either way yet.
    #[default]
    Undecided,
}

impl SeqVerdict {
    /// Stable lowercase name (stop-trace and stability-curve schemas).
    pub fn name(self) -> &'static str {
        match self {
            SeqVerdict::Leaky => "leaky",
            SeqVerdict::Clean => "clean",
            SeqVerdict::Undecided => "undecided",
        }
    }

    /// Parses a [`SeqVerdict::name`] rendering.
    pub fn from_name(s: &str) -> Option<SeqVerdict> {
        match s {
            "leaky" => Some(SeqVerdict::Leaky),
            "clean" => Some(SeqVerdict::Clean),
            "undecided" => Some(SeqVerdict::Undecided),
            _ => None,
        }
    }

    /// Whether the sequence has closed (stopping is allowed).
    pub fn is_decided(self) -> bool {
        self != SeqVerdict::Undecided
    }
}

/// Confidence-sequence parameters (see the module docs for the
/// construction; EXPERIMENTS.md documents how to tune them).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeqConfig {
    /// Total error budget spread across looks via the `1/(j(j+1))`
    /// spending series.
    pub alpha: f64,
    /// Scale of the confidence radius `sqrt(scale * spend / n)`.
    /// `0.5` is the Hoeffding rate for a [0,1]-bounded mean; the default
    /// `0.25` is calibrated to the snapshot-table null noise floor.
    pub boundary_scale: f64,
    /// Cramér's V threshold for a strong association (the paper's 0.5).
    pub v_strong: f64,
    /// Base significance level for the leaky decision (the paper's
    /// 0.05), spent across looks like `alpha`.
    pub p_significant: f64,
    /// Minimum observations before any verdict may be issued.
    pub min_n: u64,
}

impl Default for SeqConfig {
    fn default() -> SeqConfig {
        SeqConfig {
            alpha: 0.1,
            boundary_scale: 0.25,
            v_strong: crate::CRAMERS_V_STRONG,
            p_significant: crate::P_SIGNIFICANT,
            min_n: 8,
        }
    }
}

impl SeqConfig {
    /// Confidence radius around the V estimate at the `look`-th check
    /// (1-based) with `n` observations: the error spend for look `j` is
    /// `alpha / (j (j+1))`, giving a boundary valid uniformly over looks.
    pub fn radius(&self, n: u64, look: u64) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let j = look.max(1) as f64;
        let spend = self.alpha / (j * (j + 1.0));
        (self.boundary_scale * (1.0 / spend).ln() / n as f64).sqrt()
    }

    /// Look-corrected significance threshold for the leaky decision.
    pub fn p_threshold(&self, look: u64) -> f64 {
        let j = look.max(1) as f64;
        self.p_significant / (j * (j + 1.0))
    }

    /// Judges a family of monitored associations (e.g. all units of one
    /// primitive, timed and timeless) at the `look`-th check over `n`
    /// pooled observations. `Leaky` needs one association's plain V
    /// confidently above the strong threshold with a significant
    /// (look-corrected) p-value; `Clean` needs every association's
    /// *bias-corrected* V confidently below it — the corrected estimator
    /// strips the `≈ sqrt(dof/n)` small-sample inflation that would
    /// otherwise keep clean tables undecidable until the full budget
    /// (see the module docs).
    pub fn judge<'a>(
        &self,
        n: u64,
        look: u64,
        assocs: impl IntoIterator<Item = &'a Association>,
    ) -> SeqVerdict {
        if n < self.min_n {
            return SeqVerdict::Undecided;
        }
        let radius = self.radius(n, look);
        let p_thresh = self.p_threshold(look);
        let mut all_clean = true;
        for a in assocs {
            if a.cramers_v - radius > self.v_strong && a.p_value < p_thresh {
                return SeqVerdict::Leaky;
            }
            if a.cramers_v_corrected + radius > self.v_strong {
                all_clean = false;
            }
        }
        if all_clean {
            SeqVerdict::Clean
        } else {
            SeqVerdict::Undecided
        }
    }
}

/// An incrementally-maintained contingency table with an `O(cells)`
/// association recomputation that is bit-identical to the batch path.
///
/// The table itself is the same [`ContingencyTable`] the batch analyzer
/// uses (per-observation updates are `O(log cells)`); what this type
/// adds is [`StreamingAssociation::current`], which walks the sorted
/// count maps directly — no dense matrix materialization, no re-walk of
/// the raw observations — while performing floating-point operations in
/// exactly the order [`ContingencyTable::association`] does.
#[derive(Clone, Debug, Default)]
pub struct StreamingAssociation {
    table: ContingencyTable<u64, u64>,
    cached: Option<Association>,
}

impl StreamingAssociation {
    /// Creates an empty accumulator.
    pub fn new() -> StreamingAssociation {
        StreamingAssociation::default()
    }

    /// Streams one observation in.
    pub fn observe(&mut self, class: u64, category: u64) {
        self.table.record(class, category);
        self.cached = None;
    }

    /// Merges another accumulator in (shard reduction). Counts are
    /// integers, so the merged table — and therefore the association —
    /// is independent of shard boundaries and merge order.
    pub fn merge(&mut self, other: &StreamingAssociation) {
        for class in other.table.classes().copied().collect::<Vec<_>>() {
            for (cat, n) in other.table.categories_of(&class) {
                self.table.record_n(class, *cat, n);
            }
        }
        self.cached = None;
    }

    /// The underlying table.
    pub fn table(&self) -> &ContingencyTable<u64, u64> {
        &self.table
    }

    /// Total observations streamed in.
    pub fn n(&self) -> u64 {
        self.table.total()
    }

    /// The association over everything observed so far, recomputed from
    /// the incremental counts (and cached until the next observation).
    pub fn current(&mut self) -> Association {
        if let Some(a) = &self.cached {
            return *a;
        }
        let a = association_streaming(&self.table);
        self.cached = Some(a);
        a
    }
}

/// Computes the association of a table by walking its sorted count maps
/// directly, bit-identically to [`ContingencyTable::association`] (which
/// densifies into a matrix first).
///
/// Bit-identity holds because every floating-point operation happens in
/// the same order: rows in class order, columns in category order, with
/// zero cells contributing their expected-count term exactly as the
/// dense path's explicit zeros do.
pub fn association_streaming(table: &ContingencyTable<u64, u64>) -> Association {
    // Row/column sums are exact integer arithmetic: order-independent.
    let col_sums: Vec<(u64, u64)> = table
        .categories()
        .map(|k| (*k, table.classes().map(|c| table.count(c, k)).sum()))
        .collect();
    let row_sums: Vec<(u64, u64)> =
        table.classes().map(|c| (*c, table.categories_of(c).map(|(_, n)| n).sum())).collect();
    let n: u64 = row_sums.iter().map(|&(_, s)| s).sum();
    let live_rows = row_sums.iter().filter(|&&(_, s)| s > 0).count() as u64;
    let live_cols = col_sums.iter().filter(|&&(_, s)| s > 0).count() as u64;
    let (chi2, dof) = if n == 0 || live_rows < 2 || live_cols < 2 {
        (0.0, 0)
    } else {
        let mut chi2 = 0.0;
        for &(class, row_sum) in &row_sums {
            if row_sum == 0 {
                continue;
            }
            for &(cat, col_sum) in &col_sums {
                if col_sum == 0 {
                    continue;
                }
                let obs = table.count(&class, &cat);
                let expected = row_sum as f64 * col_sum as f64 / n as f64;
                let d = obs as f64 - expected;
                chi2 += d * d / expected;
            }
        }
        (chi2, (live_rows - 1) * (live_cols - 1))
    };
    Association {
        chi2,
        dof,
        p_value: crate::chi_squared_p_value(chi2, dof),
        cramers_v: crate::cramers_v(chi2, n, live_rows, live_cols),
        cramers_v_corrected: crate::cramers_v_corrected(chi2, n, live_rows, live_cols),
        n,
        classes: live_rows,
        categories: live_cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(a: &Association) -> [u64; 5] {
        [
            a.chi2.to_bits(),
            a.p_value.to_bits(),
            a.cramers_v.to_bits(),
            a.cramers_v_corrected.to_bits(),
            a.dof,
        ]
    }

    #[test]
    fn streaming_matches_batch_bit_for_bit() {
        let obs = [(0u64, 10u64), (1, 11), (0, 10), (1, 10), (0, 12), (1, 11), (0, 10)];
        let mut acc = StreamingAssociation::new();
        let mut table = ContingencyTable::new();
        for (i, &(c, k)) in obs.iter().enumerate() {
            acc.observe(c, k);
            table.record(c, k);
            // Bit-equality must hold at *every* prefix, not just the end
            // — that is what makes peeking free of drift.
            assert_eq!(bits(&acc.current()), bits(&table.association()), "prefix {}", i + 1);
        }
    }

    #[test]
    fn merge_is_shard_independent() {
        let obs: Vec<(u64, u64)> = (0..97).map(|i| (i % 3, (i * 7) % 5)).collect();
        let mut whole = StreamingAssociation::new();
        for &(c, k) in &obs {
            whole.observe(c, k);
        }
        for shards in [1usize, 2, 4] {
            let mut parts = vec![StreamingAssociation::new(); shards];
            for (i, &(c, k)) in obs.iter().enumerate() {
                parts[i % shards].observe(c, k);
            }
            let mut merged = StreamingAssociation::new();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(bits(&merged.current()), bits(&whole.current()), "shards={shards}");
            assert_eq!(merged.n(), whole.n());
        }
    }

    #[test]
    fn degenerate_tables_are_undecidable_then_clean() {
        // One category only: V = 0 forever; the sequence closes clean
        // once the radius shrinks below the strong threshold.
        let cfg = SeqConfig::default();
        let mut acc = StreamingAssociation::new();
        let mut verdicts = Vec::new();
        for i in 0..64u64 {
            acc.observe(i % 2, 42);
            verdicts.push(cfg.judge(acc.n(), i / 8 + 1, [&acc.current()]));
        }
        assert_eq!(verdicts[0], SeqVerdict::Undecided, "min_n gate holds");
        assert_eq!(*verdicts.last().unwrap(), SeqVerdict::Clean);
    }

    #[test]
    fn perfect_split_goes_leaky() {
        let cfg = SeqConfig::default();
        let mut acc = StreamingAssociation::new();
        let mut verdict = SeqVerdict::Undecided;
        let mut look = 0;
        for i in 0..64u64 {
            acc.observe(i % 2, 100 + i % 2);
            if i % 8 == 7 {
                look += 1;
                verdict = cfg.judge(acc.n(), look, [&acc.current()]);
                if verdict.is_decided() {
                    break;
                }
            }
        }
        assert_eq!(verdict, SeqVerdict::Leaky);
        assert!(acc.n() < 64, "a perfect split must close early (n={})", acc.n());
    }

    #[test]
    fn one_strong_association_blocks_clean() {
        let cfg = SeqConfig::default();
        let mut strong = StreamingAssociation::new();
        let mut weak = StreamingAssociation::new();
        for i in 0..256u64 {
            strong.observe(i % 2, 100 + i % 2);
            weak.observe(i % 2, 7);
        }
        // Alone, the weak association is clean...
        assert_eq!(cfg.judge(256, 4, [&weak.current()]), SeqVerdict::Clean);
        // ...but the family verdict follows the strong one.
        assert_eq!(cfg.judge(256, 4, [&weak.current(), &strong.current()]), SeqVerdict::Leaky);
    }

    #[test]
    fn radius_shrinks_with_n_and_grows_with_looks() {
        let cfg = SeqConfig::default();
        assert!(cfg.radius(64, 1) < cfg.radius(16, 1));
        assert!(cfg.radius(64, 8) > cfg.radius(64, 1));
        assert_eq!(cfg.radius(0, 1), 1.0);
        assert!(cfg.p_threshold(2) < cfg.p_threshold(1));
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in [SeqVerdict::Leaky, SeqVerdict::Clean, SeqVerdict::Undecided] {
            assert_eq!(SeqVerdict::from_name(v.name()), Some(v));
        }
        assert_eq!(SeqVerdict::from_name("bogus"), None);
        assert!(SeqVerdict::Leaky.is_decided());
        assert!(!SeqVerdict::Undecided.is_decided());
    }
}
