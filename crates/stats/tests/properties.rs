//! Property tests for the statistical core: invariants that must hold for
//! arbitrary contingency data.

use microsampler_stats::sequential::association_streaming;
use microsampler_stats::{
    chi_squared, chi_squared_p_value, cramers_v, cramers_v_corrected, gamma, siphash13,
    ContingencyTable, StreamingAssociation,
};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    // Up to 4 classes x 12 categories with counts 0..50.
    (2usize..=4, 2usize..=12).prop_flat_map(|(r, k)| {
        proptest::collection::vec(proptest::collection::vec(0u64..50, k), r)
    })
}

proptest! {
    #[test]
    fn chi2_nonnegative_and_v_in_unit_interval(rows in table_strategy()) {
        let (chi2, dof) = chi_squared(&rows);
        prop_assert!(chi2 >= 0.0);
        let n: u64 = rows.iter().flatten().sum();
        let live_rows = rows.iter().filter(|r| r.iter().any(|&c| c > 0)).count() as u64;
        let live_cols = (0..rows[0].len())
            .filter(|&j| rows.iter().any(|r| r[j] > 0))
            .count() as u64;
        let v = cramers_v(chi2, n, live_rows, live_cols);
        prop_assert!((0.0..=1.0).contains(&v), "v={v}");
        let vc = cramers_v_corrected(chi2, n, live_rows, live_cols);
        prop_assert!((0.0..=1.0).contains(&vc), "vc={vc}");
        let p = chi_squared_p_value(chi2, dof);
        prop_assert!((0.0..=1.0).contains(&p), "p={p}");
    }

    #[test]
    fn chi2_invariant_under_row_permutation(rows in table_strategy()) {
        let (a, dof_a) = chi_squared(&rows);
        let mut rev = rows.clone();
        rev.reverse();
        let (b, dof_b) = chi_squared(&rev);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        prop_assert_eq!(dof_a, dof_b);
    }

    #[test]
    fn chi2_invariant_under_column_permutation(rows in table_strategy()) {
        let (a, _) = chi_squared(&rows);
        let permuted: Vec<Vec<u64>> =
            rows.iter().map(|r| r.iter().rev().copied().collect()).collect();
        let (b, _) = chi_squared(&permuted);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn duplicating_rows_preserves_independence_verdict(row in proptest::collection::vec(1u64..50, 2..8)) {
        // A table whose rows are identical is perfectly independent.
        let rows = vec![row.clone(), row.clone(), row];
        let (chi2, _) = chi_squared(&rows);
        prop_assert!(chi2.abs() < 1e-6, "chi2={chi2}");
    }

    #[test]
    fn scaling_counts_scales_chi2_linearly(rows in table_strategy(), factor in 2u64..5) {
        let (a, dof_a) = chi_squared(&rows);
        let scaled: Vec<Vec<u64>> =
            rows.iter().map(|r| r.iter().map(|&c| c * factor).collect()).collect();
        let (b, dof_b) = chi_squared(&scaled);
        prop_assert_eq!(dof_a, dof_b);
        prop_assert!((b - a * factor as f64).abs() < 1e-6 * (1.0 + b.abs()), "a={a} b={b}");
    }

    #[test]
    fn contingency_matches_manual_matrix(obs in proptest::collection::vec((0u64..3, 0u64..6), 1..200)) {
        let table: ContingencyTable<u64, u64> = obs.iter().copied().collect();
        let matrix = table.to_matrix();
        let total: u64 = matrix.iter().flatten().sum();
        prop_assert_eq!(total, obs.len() as u64);
        prop_assert_eq!(table.total(), obs.len() as u64);
        // Association must agree with computing from the dense matrix.
        let (chi2, dof) = chi_squared(&matrix);
        let assoc = table.association();
        prop_assert!((assoc.chi2 - chi2).abs() < 1e-9);
        prop_assert_eq!(assoc.dof, dof);
    }

    #[test]
    fn gamma_p_q_complementary(a in 0.25f64..50.0, x in 0.0f64..100.0) {
        let s = gamma::gamma_p(a, x) + gamma::gamma_q(a, x);
        prop_assert!((s - 1.0).abs() < 1e-9, "a={a} x={x} sum={s}");
    }

    #[test]
    fn p_value_monotone_in_chi2(dof in 1u64..30, base in 0.0f64..50.0, delta in 0.0f64..50.0) {
        let p1 = chi_squared_p_value(base, dof);
        let p2 = chi_squared_p_value(base + delta, dof);
        prop_assert!(p2 <= p1 + 1e-12, "p must not increase with chi2");
    }

    /// The incremental table and its streaming association must be
    /// *bit-identical* (exact f64 equality, not approximate) to the
    /// batch computation, no matter what order the observations arrive
    /// in — the invariant that makes sequential looks trustworthy.
    #[test]
    fn streaming_association_is_bit_identical_to_batch_under_any_order(
        obs in proptest::collection::vec((0u64..3, 0u64..8), 1..300),
        seed in any::<u64>(),
    ) {
        let table: ContingencyTable<u64, u64> = obs.iter().copied().collect();
        let batch = table.association();
        // Deterministic Fisher–Yates shuffle driven by the seeded LCG.
        let mut shuffled = obs.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut streaming = StreamingAssociation::new();
        for &(class, category) in &shuffled {
            streaming.observe(class, category);
        }
        prop_assert_eq!(streaming.n(), batch.n);
        prop_assert_eq!(streaming.current(), batch);
        prop_assert_eq!(association_streaming(streaming.table()), batch);
    }

    /// Splitting the observations across 1, 2, or 4 shards (the worker
    /// pool's thread counts) and merging must reproduce the unsharded
    /// association bit-for-bit: merges are integer count sums, so the
    /// final table — and every float derived from it — cannot depend on
    /// the shard layout.
    #[test]
    fn sharded_merge_is_bit_identical_at_any_thread_count(
        obs in proptest::collection::vec((0u64..4, 0u64..10), 1..300),
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut whole = StreamingAssociation::new();
        for &(class, category) in &obs {
            whole.observe(class, category);
        }
        let expected = whole.current();
        let mut parts: Vec<StreamingAssociation> =
            (0..shards).map(|_| StreamingAssociation::new()).collect();
        for (i, &(class, category)) in obs.iter().enumerate() {
            parts[i % shards].observe(class, category);
        }
        let mut merged = StreamingAssociation::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.n(), obs.len() as u64);
        prop_assert_eq!(merged.current(), expected);
    }

    #[test]
    fn siphash_deterministic_and_input_sensitive(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let h1 = siphash13(1, 2, &data);
        let h2 = siphash13(1, 2, &data);
        prop_assert_eq!(h1, h2);
        // Flipping any single byte changes the digest (overwhelmingly).
        if !data.is_empty() {
            let mut flipped = data.clone();
            flipped[0] ^= 0xFF;
            prop_assert_ne!(siphash13(1, 2, &flipped), h1);
        }
    }
}
