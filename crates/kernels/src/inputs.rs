//! Deterministic input generation for the case studies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` random keys of `bytes` bytes each, deterministically from
/// `seed`.
///
/// # Example
///
/// ```
/// let keys = microsampler_kernels::inputs::random_keys(4, 8, 42);
/// assert_eq!(keys.len(), 4);
/// assert_eq!(keys[0].len(), 8);
/// // Deterministic:
/// assert_eq!(keys, microsampler_kernels::inputs::random_keys(4, 8, 42));
/// ```
pub fn random_keys(n: usize, bytes: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..bytes).map(|_| rng.gen()).collect()).collect()
}

/// A `CRYPTO_memcmp` trial: two 32-byte buffers and the secret class
/// (whether they are fully equal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemcmpTrial {
    /// First input buffer.
    pub a: [u8; 32],
    /// Second input buffer.
    pub b: [u8; 32],
    /// 1 when `a == b`, 0 otherwise.
    pub label: u64,
}

/// Generates memcmp trials with varying distributions of (in)equal bytes
/// (paper §VII-C1): half fully-equal pairs, half differing at a rotating
/// byte position to cover early/mid/late divergence.
pub fn memcmp_trials(n: usize, seed: u64) -> Vec<MemcmpTrial> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut a = [0u8; 32];
            rng.fill(&mut a);
            let mut b = a;
            if i % 2 == 0 {
                // Differ at a rotating position with a guaranteed-new byte.
                let pos = (i / 2) % 32;
                b[pos] ^= rng.gen_range(1..=255u8);
                MemcmpTrial { a, b, label: 0 }
            } else {
                MemcmpTrial { a, b, label: 1 }
            }
        })
        .collect()
}

/// Generates the paper's 32 fixed input pairs for the CT-MEM-CMP study
/// (§VII-C1): "32 32-byte input values with varying distributions of
/// (in)equal bytes". Every fourth pair is fully equal; the rest differ at a
/// rotating byte position covering early, middle and late divergence. The
/// **pair index is the secret class label** — repeat the pairs across many
/// trials (see [`memcmp_schedule`]) so per-class snapshot hashes recur.
pub fn memcmp_pairs(seed: u64) -> Vec<MemcmpTrial> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..32u64)
        .map(|i| {
            let mut a = [0u8; 32];
            rng.fill(&mut a);
            let mut b = a;
            if i % 4 != 3 {
                let pos = (i as usize * 11) % 32;
                b[pos] ^= rng.gen_range(1..=255u8);
            }
            MemcmpTrial { a, b, label: i }
        })
        .collect()
}

/// Schedule of `reps` repetitions of each pair in a random order.
///
/// Randomizing the order decorrelates the branch-predictor context at each
/// trial from the trial's class, standing in for the run-to-run noise of
/// the paper's real system — without it, a fully deterministic simulator
/// makes *any* per-class timing quirk a perfect classifier.
pub fn memcmp_schedule(pairs: &[MemcmpTrial], reps: usize, seed: u64) -> Vec<MemcmpTrial> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5C4E_D01E);
    let mut out: Vec<MemcmpTrial> = Vec::with_capacity(pairs.len() * reps);
    for p in pairs {
        out.extend(std::iter::repeat_n(p.clone(), reps));
    }
    // Fisher-Yates shuffle.
    for i in (1..out.len()).rev() {
        out.swap(i, rng.gen_range(0..=i));
    }
    out
}

/// Packs a 32-byte buffer into four little-endian words (the order the
/// staging loops expect from the input CSR).
pub fn pack_words(buf: &[u8; 32]) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (i, chunk) in buf.chunks_exact(8).enumerate() {
        out[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let a = random_keys(8, 16, 1);
        let b = random_keys(8, 16, 1);
        let c = random_keys(8, 16, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a[0], a[1], "keys within a batch should differ");
    }

    #[test]
    fn memcmp_trials_alternate_classes() {
        let trials = memcmp_trials(10, 7);
        for (i, t) in trials.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(t.label, 0);
                assert_ne!(t.a, t.b);
                // Exactly one differing byte.
                let diffs = t.a.iter().zip(&t.b).filter(|(x, y)| x != y).count();
                assert_eq!(diffs, 1);
            } else {
                assert_eq!(t.label, 1);
                assert_eq!(t.a, t.b);
            }
        }
    }

    #[test]
    fn memcmp_pairs_cover_equal_and_unequal() {
        let pairs = memcmp_pairs(1);
        assert_eq!(pairs.len(), 32);
        let equal = pairs.iter().filter(|p| p.a == p.b).count();
        assert_eq!(equal, 8, "every fourth pair is fully equal");
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(p.label, i as u64, "label is the pair index");
        }
        // Differing positions vary.
        let positions: std::collections::BTreeSet<usize> = pairs
            .iter()
            .filter(|p| p.a != p.b)
            .map(|p| p.a.iter().zip(&p.b).position(|(x, y)| x != y).unwrap())
            .collect();
        assert!(positions.len() > 10, "diff positions should be spread out");
    }

    #[test]
    fn schedule_repeats_every_pair() {
        let pairs = memcmp_pairs(2);
        let sched = memcmp_schedule(&pairs, 3, 9);
        assert_eq!(sched.len(), 96);
        for p in &pairs {
            let n = sched.iter().filter(|t| t.label == p.label).count();
            assert_eq!(n, 3, "pair {} should appear 3 times", p.label);
        }
    }

    #[test]
    fn pack_words_is_little_endian() {
        let mut buf = [0u8; 32];
        buf[0] = 0x01;
        buf[8] = 0x02;
        let w = pack_words(&buf);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 2);
        assert_eq!(w[2], 0);
    }
}
