//! Square-and-multiply modular exponentiation — the paper's central case
//! study, in five flavors (Listings 1–6).
//!
//! All variants share one driver skeleton: for every key bit (MSB first) an
//! iteration squares the accumulator, computes the multiply candidate, and
//! then "assigns" the result with a variant-specific conditional-copy. Each
//! iteration is bracketed with `ITER_START`/`ITER_END` markers labeled with
//! the key bit being processed — the secret class for the statistical
//! analysis.
//!
//! Working buffers (`rbuf`, `tbuf`) sit on one data page; the `dummy`
//! buffer used by the libgcrypt-style variants is padded onto a different
//! page (the paper notes the TLBleed consequence of dst/dummy mapping to
//! different pages).

use microsampler_isa::asm::{assemble, AsmError};
use microsampler_isa::Program;
use microsampler_sim::{CoreConfig, Machine, RunResult, SimError, TraceConfig};

/// Which conditional-assignment implementation the modexp driver uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModexpVariant {
    /// Listing 1: naive square-and-multiply with a secret-dependent branch
    /// (the known-leaky baseline).
    Naive,
    /// Listing 2: register-level constant-time conditional move
    /// (`b = -b; t = (r^a) & b; r ^= t`).
    CtCmov,
    /// Listings 3/4 (`ME-V1-CV`): libgcrypt-style conditional copy where
    /// the compiler preloads `dst` before checking `ctl`, leaving a
    /// two-instruction imbalance on the `ctl == 0` path.
    V1CompilerVuln,
    /// Listing 5 (`ME-V1-MV`): branchless `ctl` check, but `memmove`
    /// targets `dst` or `dummy` depending on the secret.
    V1MicroarchVuln,
    /// Listing 6 (`ME-V2-Safe`): BearSSL byte-wise branchless conditional
    /// copy — same addresses and instructions regardless of the secret.
    V2Safe,
}

impl ModexpVariant {
    /// Paper case-study name.
    pub fn name(self) -> &'static str {
        match self {
            ModexpVariant::Naive => "SAM-Naive",
            ModexpVariant::CtCmov => "SAM-CT-CMOV",
            ModexpVariant::V1CompilerVuln => "ME-V1-CV",
            ModexpVariant::V1MicroarchVuln => "ME-V1-MV",
            ModexpVariant::V2Safe => "ME-V2-Safe",
        }
    }

    /// All variants.
    pub const ALL: [ModexpVariant; 5] = [
        ModexpVariant::Naive,
        ModexpVariant::CtCmov,
        ModexpVariant::V1CompilerVuln,
        ModexpVariant::V1MicroarchVuln,
        ModexpVariant::V2Safe,
    ];
}

/// A configured modular-exponentiation kernel.
#[derive(Clone, Debug)]
pub struct ModexpKernel {
    /// Conditional-assignment flavor.
    pub variant: ModexpVariant,
    /// Key length in bytes (one iteration per bit).
    pub key_bytes: usize,
    /// The (public) base.
    pub base: u64,
    /// The (public) modulus; must fit in 32 bits so 64-bit multiplies
    /// cannot overflow.
    pub modulus: u64,
}

impl ModexpKernel {
    /// A kernel with the default base/modulus used across the evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `key_bytes` is zero or larger than 256.
    pub fn new(variant: ModexpVariant, key_bytes: usize) -> ModexpKernel {
        assert!(key_bytes > 0 && key_bytes <= 256, "key length out of range");
        ModexpKernel { variant, key_bytes, base: 0x9E3779B9, modulus: 0xFFFF_FFFB }
    }

    /// Assembles the kernel program.
    ///
    /// # Errors
    ///
    /// Returns the assembler error if the generated source is invalid
    /// (a bug — exercised by tests for every variant).
    pub fn program(&self) -> Result<Program, AsmError> {
        assemble(&self.source())
    }

    /// The generated assembly source (useful for inspection and docs).
    pub fn source(&self) -> String {
        let ccopy = match self.variant {
            ModexpVariant::Naive => NAIVE_ASSIGN,
            ModexpVariant::CtCmov => CMOV_ASSIGN,
            ModexpVariant::V1CompilerVuln => V1_CV_ASSIGN,
            ModexpVariant::V1MicroarchVuln => V1_MV_ASSIGN,
            ModexpVariant::V2Safe => V2_SAFE_ASSIGN,
        };
        let memmove = match self.variant {
            ModexpVariant::V1CompilerVuln | ModexpVariant::V1MicroarchVuln => MEMMOVE,
            _ => "",
        };
        format!(
            r#"
            .equ KEYLEN, {keylen}
            .data
            rbuf:   .zero 32
            tbuf:   .zero 32
                    .zero 4032          # pad: dummy lands on the next page
            dummy:  .zero 32
            key:    .zero {keylen}
            .text
            _start:
                csrw 0x8c0, zero        # SCR start
                li   s0, {base}         # base
                li   s1, {modulus}      # modulus
                la   s2, rbuf
                la   s3, tbuf
                la   s4, dummy
                la   s5, key
                li   t0, 1
                sd   t0, 0(s2)          # r = 1
                li   s6, 0              # key byte index (MSB first)
            byte_loop:
                add  t0, s5, s6
                lbu  s7, 0(t0)          # current key byte
                li   s8, 7              # bit index, 7 down to 0
            bit_loop:
                srl  t0, s7, s8
                andi s9, t0, 1          # current key bit = the secret class
                csrw 0x8c2, s9          # ITER_START, label = bit
                ld   t0, 0(s2)
                mul  t1, t0, t0
                remu t1, t1, s1         # r = r*r mod m (always)
                sd   t1, 0(s2)
                mul  t2, t1, s0
                remu t2, t2, s1         # t = a*r mod m (always)
                sd   t2, 0(s3)
                mv   a0, s9             # ctl
                mv   a1, s2             # dst = rbuf
                mv   a2, s4             # dummy
                mv   a3, s3             # src = tbuf
                li   a4, 32             # len
                call ccopy
                csrw 0x8c3, zero        # ITER_END
                addi s8, s8, -1
                bgez s8, bit_loop
                addi s6, s6, 1
                li   t0, KEYLEN
                blt  s6, t0, byte_loop
                csrw 0x8c1, zero        # SCR end
                ld   a0, 0(s2)          # result
                ecall
            {ccopy}
            {memmove}
            "#,
            keylen = self.key_bytes,
            base = self.base,
            modulus = self.modulus,
        )
    }

    /// Runs the kernel with `key` on `config`, returning the run result.
    ///
    /// # Errors
    ///
    /// Propagates assembler and simulator errors.
    pub fn run(
        &self,
        config: CoreConfig,
        key: &[u8],
        trace: TraceConfig,
    ) -> Result<RunResult, ModexpError> {
        let mut machine = self.machine(config, key, trace)?;
        let result = machine.run(cycle_budget(self.key_bytes))?;
        Ok(result)
    }

    /// Builds a loaded machine (key written to memory) without running it —
    /// used by harnesses that want to warm/flush caches first.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors.
    pub fn machine(
        &self,
        config: CoreConfig,
        key: &[u8],
        trace: TraceConfig,
    ) -> Result<Machine, ModexpError> {
        assert_eq!(key.len(), self.key_bytes, "key length must match the kernel");
        let program = self.program()?;
        let mut machine = Machine::with_trace_config(config, &program, trace);
        machine.write_mem(program.symbol_addr("key"), key);
        Ok(machine)
    }

    /// Reference result (golden Rust model).
    pub fn reference(&self, key: &[u8]) -> u64 {
        modexp_reference(self.base, self.modulus, key)
    }
}

/// Errors from building or running a modexp kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModexpError {
    /// The generated assembly failed to assemble (a kernel bug).
    Asm(AsmError),
    /// The simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for ModexpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModexpError::Asm(e) => write!(f, "kernel assembly failed: {e}"),
            ModexpError::Sim(e) => write!(f, "kernel simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ModexpError {}

impl From<AsmError> for ModexpError {
    fn from(e: AsmError) -> ModexpError {
        ModexpError::Asm(e)
    }
}

impl From<SimError> for ModexpError {
    fn from(e: SimError) -> ModexpError {
        ModexpError::Sim(e)
    }
}

/// Default cycle budget for a modexp run of `key_bytes`: a generous
/// per-bit allowance on top of a fixed floor. Public so sweep harnesses
/// driving [`ModexpKernel::machine`] directly use the same budget.
pub fn cycle_budget(key_bytes: usize) -> u64 {
    2_000_000 + key_bytes as u64 * 8 * 30_000
}

/// The Fig. 6 timing-distribution experiment: `ME-V1-MV`'s secret-selected
/// `memmove` destination, restructured so the iteration's output buffer is
/// *only* written by the `memmove` (the accumulator chain lives in
/// registers). The output and dummy buffers are flushed from the L1D
/// before every iteration — modeling the cache pressure of the paper's
/// full bignum workload — and, when `warm_dst` is set, the destination
/// buffer is re-touched before the iteration starts ("dst initialized",
/// Fig. 6b).
#[derive(Clone, Debug)]
pub struct Fig6Kernel {
    /// Warm the destination buffer before each iteration (Fig. 6b) or
    /// leave both buffers cold (Fig. 6a).
    pub warm_dst: bool,
    /// Key length in bytes.
    pub key_bytes: usize,
    /// Public base.
    pub base: u64,
    /// Public modulus (must fit 32 bits).
    pub modulus: u64,
}

impl Fig6Kernel {
    /// Creates the experiment kernel.
    pub fn new(warm_dst: bool, key_bytes: usize) -> Fig6Kernel {
        Fig6Kernel { warm_dst, key_bytes, base: 0x9E3779B9, modulus: 0xFFFF_FFFB }
    }

    /// The generated assembly source.
    pub fn source(&self) -> String {
        let warm = if self.warm_dst {
            "    ld   t0, 0(s2)          # re-touch dst: Fig 6b 'initialized'"
        } else {
            "    nop                     # Fig 6a: both buffers stay cold"
        };
        format!(
            r#"
            .data
            .align 6
            tbuf:  .zero 64
            .align 6
            obuf:  .zero 64
                   .zero 3904
            .align 6
            dummy: .zero 64
            key:   .zero {keylen}
            .text
            _start:
                csrw 0x8c0, zero
                li   s0, {base}
                li   s1, {modulus}
                la   s2, obuf
                la   s3, tbuf
                la   s4, dummy
                la   s5, key
                li   s10, 1             # r lives in a register
                li   s6, 0
            byte_loop:
                add  t0, s5, s6
                lbu  s7, 0(t0)
                li   s8, 7
            bit_loop:
                srl  t0, s7, s8
                andi s9, t0, 1
                csrw 0x8c5, s2          # flush dst line (cache pressure)
                csrw 0x8c5, s4          # flush dummy line
            {warm}
                csrw 0x8c2, s9          # ITER_START
                mul  t1, s10, s10
                remu t1, t1, s1         # r2 = r*r mod m
                mul  t2, t1, s0
                remu t2, t2, s1         # t = a*r2 mod m
                sd   t2, 0(s3)          # tbuf holds the candidate
                neg  t3, s9             # register cmov keeps the value chain
                xor  t4, t1, t2
                and  t4, t4, t3
                xor  s10, t1, t4        # r = bit ? t : r2
                neg  t0, s9             # branchless destination select
                xor  t5, s2, s4
                and  t5, t5, t0
                xor  a0, s4, t5         # dst = bit ? obuf : dummy
                mv   a1, s3
                li   a2, 32
                call memmove
                fence                   # drain the stores: the iteration's
                                        # time includes its memory effects
                csrw 0x8c3, zero        # ITER_END
                addi s8, s8, -1
                bgez s8, bit_loop
                addi s6, s6, 1
                li   t0, {keylen}
                blt  s6, t0, byte_loop
                csrw 0x8c1, zero
                mv   a0, s10
                ecall
            {memmove}
            "#,
            keylen = self.key_bytes,
            base = self.base,
            modulus = self.modulus,
            warm = warm,
            memmove = MEMMOVE,
        )
    }

    /// Assembles the kernel.
    ///
    /// # Errors
    ///
    /// Returns the assembler error on an internal source bug.
    pub fn program(&self) -> Result<Program, AsmError> {
        assemble(&self.source())
    }

    /// Runs with `key` and returns per-iteration `(label, cycles)` pairs —
    /// the data behind the Fig. 6 distributions — plus the full result.
    ///
    /// # Errors
    ///
    /// Propagates assembler and simulator errors.
    pub fn run(&self, config: CoreConfig, key: &[u8]) -> Result<RunResult, ModexpError> {
        assert_eq!(key.len(), self.key_bytes, "key length must match the kernel");
        let program = self.program()?;
        let mut machine = Machine::with_trace_config(config, &program, TraceConfig::default());
        machine.write_mem(program.symbol_addr("key"), key);
        let result = machine.run(cycle_budget(self.key_bytes))?;
        Ok(result)
    }

    /// Reference result.
    pub fn reference(&self, key: &[u8]) -> u64 {
        modexp_reference(self.base, self.modulus, key)
    }
}

/// Square-and-multiply reference model (MSB-first over the key bytes).
pub fn modexp_reference(base: u64, modulus: u64, key: &[u8]) -> u64 {
    assert!(modulus > 0 && modulus <= u32::MAX as u64 + 1, "modulus must fit in 32 bits");
    let mut r: u64 = 1;
    for &byte in key {
        for j in (0..8).rev() {
            r = r.wrapping_mul(r) % modulus;
            let t = r.wrapping_mul(base) % modulus;
            if (byte >> j) & 1 == 1 {
                r = t;
            }
        }
    }
    r
}

/// Listing 1: branch on the secret bit; copy only when set.
const NAIVE_ASSIGN: &str = r#"
ccopy:                      # a0=ctl a1=dst a2=dummy a3=src a4=len
    beqz a0, na_skip        # secret-dependent control flow!
    ld   t0, 0(a3)
    sd   t0, 0(a1)          # r = t (only when bit is 1)
na_skip:
    ret
"#;

/// Listing 2: branchless register-level conditional move.
const CMOV_ASSIGN: &str = r#"
ccopy:                      # a0=ctl a1=dst a2=dummy a3=src a4=len
    ld   t1, 0(a1)          # r
    ld   t2, 0(a3)          # t
    neg  t0, a0             # b = -ctl (all-ones or zero)
    xor  t3, t1, t2         # r ^ t
    and  t3, t3, t0         # (r ^ t) & b   <- fast-bypass candidate
    xor  t1, t1, t3         # r ^= ...
    sd   t1, 0(a1)
    ret
"#;

/// Listing 4 (`ME-V1-CV`): the compiler preloads `dst` into the first
/// argument register before checking `ctl`; the `ctl == 0` path executes
/// two extra instructions.
const V1_CV_ASSIGN: &str = r#"
ccopy:                      # a0=ctl a1=dst a2=dummy a3=src a4=len
    mv   a6, a0             # ctl
    mv   a5, a2             # dummy
    mv   a0, a1             # compiler preloads dst as memmove's first arg
    mv   a2, a4             # len
    mv   a1, a3             # src
    beqz a6, cv_dummy
cv_do:
    j    memmove            # tail call
cv_dummy:
    mv   a0, a5             # patch in dummy: two extra instructions
    j    cv_do
"#;

/// Listing 5 (`ME-V1-MV`): branchless select of the destination, then an
/// unconditional `memmove` — but the *address* depends on the secret.
const V1_MV_ASSIGN: &str = r#"
ccopy:                      # a0=ctl a1=dst a2=dummy a3=src a4=len
    neg  t0, a0             # mask = -ctl
    xor  t1, a1, a2         # dst ^ dummy
    and  t1, t1, t0
    xor  a0, a2, t1         # dest = ctl ? dst : dummy
    mv   a1, a3             # src
    mv   a2, a4             # len
    j    memmove            # tail call
"#;

/// Listing 6 (`ME-V2-Safe`): BearSSL's byte-wise branchless conditional
/// copy. Every byte of `dst` is rewritten with a mask-selected value, so
/// addresses and instructions are identical for both key-bit classes.
const V2_SAFE_ASSIGN: &str = r#"
ccopy:                      # a0=ctl a1=dst a2=dummy a3=src a4=len
    mv   a2, a3             # src
    mv   a3, a4
    add  a3, a3, a2         # end = src + len
    negw a0, a0             # mask
bs_loop:
    bne  a2, a3, bs_body
    ret
bs_body:
    lbu  a4, 0(a1)          # dst byte
    lbu  a5, 0(a2)          # src byte
    addi a2, a2, 1
    addi a1, a1, 1
    xor  a5, a5, a4
    and  a5, a5, a0         # <- fast-bypass candidate when mask == 0
    xor  a5, a5, a4
    sb   a5, -1(a1)
    j    bs_loop
"#;

/// Forward `memmove` (8-byte chunks, then a byte tail). The regions used by
/// the kernels never overlap in the copy direction.
const MEMMOVE: &str = r#"
memmove:                    # a0=dst a1=src a2=len
    beqz a2, mm_ret
mm_chunk:
    sltiu t0, a2, 8
    bnez t0, mm_bytes
    ld   t1, 0(a1)
    sd   t1, 0(a0)
    addi a0, a0, 8
    addi a1, a1, 8
    addi a2, a2, -8
    j    mm_chunk
mm_bytes:
    beqz a2, mm_ret
    lbu  t1, 0(a1)
    sb   t1, 0(a0)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    j    mm_bytes
mm_ret:
    ret
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::random_keys;
    use microsampler_isa::Reg;
    use microsampler_sim::interp::{Interp, StopReason};

    #[test]
    fn all_variants_assemble() {
        for v in ModexpVariant::ALL {
            let k = ModexpKernel::new(v, 2);
            k.program().unwrap_or_else(|e| panic!("{}: {e}", v.name()));
        }
    }

    #[test]
    fn reference_model_basics() {
        // 3^5 mod 7 = 243 mod 7 = 5; key 0b00000101.
        assert_eq!(modexp_reference(3, 7, &[0b101]), 5);
        // Exponent zero => 1.
        assert_eq!(modexp_reference(123, 97, &[0]), 1);
        // 2^8 mod 257 = 256.
        assert_eq!(modexp_reference(2, 257, &[0b1000]), 256);
    }

    /// Every variant must compute the exact square-and-multiply result on
    /// the golden interpreter for random keys.
    #[test]
    fn variants_match_reference_on_interpreter() {
        for v in ModexpVariant::ALL {
            let kernel = ModexpKernel::new(v, 2);
            let program = kernel.program().unwrap();
            for key in random_keys(4, 2, 99) {
                let mut interp = Interp::new(&program);
                interp.mem.write_bytes(program.symbol_addr("key"), &key);
                let stop = interp.run(10_000_000).unwrap();
                assert_eq!(stop, StopReason::Ecall, "{}", v.name());
                assert_eq!(
                    interp.reg(Reg::new(10)),
                    kernel.reference(&key),
                    "{} key {key:02x?}",
                    v.name()
                );
            }
        }
    }

    /// And on the out-of-order core (both configs, fast bypass on and off).
    #[test]
    fn variants_match_reference_on_core() {
        for v in ModexpVariant::ALL {
            let kernel = ModexpKernel::new(v, 1);
            for key in random_keys(2, 1, 7) {
                for cfg in [
                    CoreConfig::small_boom(),
                    CoreConfig::mega_boom(),
                    CoreConfig::mega_boom().with_fast_bypass(),
                ] {
                    let name = format!("{} on {}", v.name(), cfg.name);
                    let mut m = kernel.machine(cfg, &key, TraceConfig::default()).unwrap();
                    let r = m.run(10_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
                    assert_eq!(r.exit_code, kernel.reference(&key), "{name} key {key:02x?}");
                    // One iteration per key bit, correctly labeled.
                    assert_eq!(r.iterations.len(), 8, "{name}");
                    for (i, iter) in r.iterations.iter().enumerate() {
                        let bit = (key[0] >> (7 - i)) & 1;
                        assert_eq!(iter.label, bit as u64, "{name} iteration {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_bypass_fires_only_for_zero_mask() {
        // V2Safe computes its mask once per ccopy call, so it is available
        // at rename for every AND in the byte loop; the mask is zero
        // exactly when the key bit is 0.
        let kernel = ModexpKernel::new(ModexpVariant::V2Safe, 1);
        let key = [0b1111_0000u8];
        let mut m = kernel
            .machine(CoreConfig::mega_boom().with_fast_bypass(), &key, TraceConfig::default())
            .unwrap();
        let r = m.run(10_000_000).unwrap();
        assert_eq!(r.exit_code, kernel.reference(&key));
        assert!(r.stats.fast_bypasses > 0, "fast bypass should trigger for zero bits");
    }

    #[test]
    fn dummy_is_on_a_different_page() {
        let kernel = ModexpKernel::new(ModexpVariant::V1MicroarchVuln, 1);
        let p = kernel.program().unwrap();
        let rbuf = p.symbol_addr("rbuf");
        let dummy = p.symbol_addr("dummy");
        assert_ne!(rbuf >> 12, dummy >> 12, "dst and dummy must map to different pages");
    }

    #[test]
    fn fig6_kernel_is_functionally_correct() {
        for warm in [false, true] {
            let kernel = Fig6Kernel::new(warm, 1);
            for key in random_keys(2, 1, 21) {
                let r = kernel.run(CoreConfig::mega_boom(), &key).unwrap();
                assert_eq!(r.exit_code, kernel.reference(&key), "warm={warm} key={key:02x?}");
                assert_eq!(r.iterations.len(), 8);
            }
        }
    }

    #[test]
    fn fig6_warm_dst_separates_timing_by_class() {
        let key = [0b0101_0110u8, 0b1001_1010];
        let kernel = Fig6Kernel::new(true, 2);
        let r = kernel.run(CoreConfig::mega_boom(), &key).unwrap();
        let avg = |label: u64| {
            let xs: Vec<u64> =
                r.iterations.iter().filter(|i| i.label == label).map(|i| i.cycles()).collect();
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        };
        // Iterations that memmove into the warmed dst must be faster.
        assert!(
            avg(1) + 2.0 < avg(0),
            "warm-dst iterations should be faster: bit1 {} vs bit0 {}",
            avg(1),
            avg(0)
        );
        // And without warming the distributions must overlap.
        let cold = Fig6Kernel::new(false, 2).run(CoreConfig::mega_boom(), &key).unwrap();
        let avgc = |label: u64| {
            let xs: Vec<u64> =
                cold.iterations.iter().filter(|i| i.label == label).map(|i| i.cycles()).collect();
            xs.iter().sum::<u64>() as f64 / xs.len() as f64
        };
        assert!(
            (avgc(1) - avgc(0)).abs() < 3.0,
            "cold runs should overlap: {} vs {}",
            avgc(1),
            avgc(0)
        );
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn key_length_mismatch_panics() {
        let kernel = ModexpKernel::new(ModexpVariant::V2Safe, 4);
        let _ = kernel.machine(CoreConfig::small_boom(), &[1, 2], TraceConfig::default());
    }
}
