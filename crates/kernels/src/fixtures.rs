//! Seeded-leaky kernels: negative controls for the static analyzer.
//!
//! Each fixture plants a textbook constant-time violation — one per
//! violation class, including the transient-only CT-SPEC class — inside
//! an otherwise well-formed trial driver (same CSR marker protocol as
//! the real kernels). The static pass must flag every fixture; the
//! Table V primitives must stay clean.

use crate::secrets::SecretSpec;
use microsampler_isa::asm::assemble;
use microsampler_sim::{CoreConfig, Machine, RunResult, SimError, TraceConfig};

/// A deliberately leaky kernel with its expected static finding.
pub struct LeakyFixture {
    /// Short name used by `repro lint` and the lint baseline.
    pub name: &'static str,
    /// Full assembly source (driver included).
    pub source: &'static str,
    /// Taint sources.
    pub spec: SecretSpec,
    /// Violation class the static pass must report: 1 = secret-tainted
    /// branch, 2 = secret-tainted address, 3 = secret operand to a
    /// variable-latency mul/div, 4 = transient-only (Spectre-v1)
    /// transmitter.
    pub expected_class: u8,
    /// Mnemonic of the violating instruction (the reported PC must
    /// disassemble to this).
    pub expected_mnemonic: &'static str,
}

/// All seeded-leaky fixtures (the lint baseline set).
pub fn all() -> Vec<LeakyFixture> {
    vec![
        LeakyFixture {
            name: "leaky_branchy_memcmp",
            source: BRANCHY_MEMCMP,
            spec: SecretSpec::csr_and_regions(&[("key", 16)]),
            expected_class: 1,
            expected_mnemonic: "bne",
        },
        LeakyFixture {
            name: "leaky_sbox_index",
            source: SBOX_INDEX,
            spec: SecretSpec::csr_only(),
            expected_class: 2,
            expected_mnemonic: "lbu",
        },
        LeakyFixture {
            name: "leaky_modexp_divisor",
            source: MODEXP_DIVISOR,
            spec: SecretSpec::csr_only(),
            expected_class: 3,
            expected_mnemonic: "remu",
        },
        LeakyFixture {
            name: "leaky_spectre_bounds",
            source: SPECTRE_BOUNDS,
            spec: SecretSpec::csr_only(),
            expected_class: 4,
            expected_mnemonic: "lbu",
        },
        LeakyFixture {
            name: "leaky_spectre_store",
            source: SPECTRE_STORE,
            spec: SecretSpec::csr_and_regions(&[("skey", 8)]),
            expected_class: 4,
            expected_mnemonic: "sb",
        },
    ]
}

/// A fixture deliberately *excluded* from [`all`] and therefore from
/// `lint-baseline.json`: the CI lint gate lints it against the checked-in
/// baseline and must fail with "missing from baseline", proving the gate
/// actually rejects unbaselined findings.
pub fn gate_selftest() -> LeakyFixture {
    LeakyFixture {
        name: "gate_selftest_unbaselined",
        source: GATE_SELFTEST,
        spec: SecretSpec::csr_only(),
        expected_class: 1,
        expected_mnemonic: "bne",
    }
}

/// Looks up a fixture by name (including the gate self-test fixture).
pub fn by_name(name: &str) -> Option<LeakyFixture> {
    all().into_iter().chain(std::iter::once(gate_selftest())).find(|f| f.name == name)
}

/// Secret labels used by [`run_fixture`]: four classes whose low six bits
/// all differ, so a Spectre fixture's transient secret-indexed load
/// touches a distinct cache line per class.
pub const FIXTURE_LABELS: [u64; 4] = [0x05, 0x1a, 0x27, 0x38];

/// Runs a fixture dynamically: `trials` iterations with secret labels
/// cycling through [`FIXTURE_LABELS`] (rotated by `seed`).
///
/// Unlike the Table V primitive drivers there is no warm-up drain — for
/// the transient fixtures the first mispredict in each fresh predictor
/// history context *is* the signal, so every iteration is kept.
pub fn run_fixture(
    f: &LeakyFixture,
    config: CoreConfig,
    trials: u64,
    seed: u64,
    trace: TraceConfig,
) -> Result<RunResult, SimError> {
    let program = assemble(f.source).expect("fixture sources assemble");
    let mut m = Machine::with_trace_config(config, &program, trace);
    let mut words = vec![trials];
    words.extend(
        (0..trials).map(|i| FIXTURE_LABELS[((i + seed) % FIXTURE_LABELS.len() as u64) as usize]),
    );
    m.push_inputs(words);
    m.run(4_000_000 + trials * 50_000)
}

/// Early-exit byte compare against a secret key in `.data`: the `bne` on
/// a key byte is a class-1 violation (secret-tainted branch condition),
/// the pattern behind every classic string-compare timing attack.
const BRANCHY_MEMCMP: &str = r#"
.data
key: .byte 0x3a, 0x91, 0x5e, 0xc7, 0x08, 0x44, 0xd2, 0x6f
     .byte 0x19, 0xaa, 0x0b, 0x7c, 0xe1, 0x53, 0x2d, 0x90
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
mc_trial:
    beqz s0, mc_done
    csrr s1, 0x8c8          # guess byte (doubles as the label)
    csrw 0x8c2, s1
    la   t0, key
    li   t2, 16
    li   a0, 0
mc_scan:
    lbu  t3, 0(t0)          # secret key byte
    bne  t3, s1, mc_fail    # LEAK: branch on a secret comparison
    addi t0, t0, 1
    addi t2, t2, -1
    bgtz t2, mc_scan
    j    mc_end
mc_fail:
    li   a0, 1
mc_end:
    csrw 0x8c3, zero
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    mc_trial
mc_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Direct table indexing with a secret byte: the `lbu` through a
/// secret-derived pointer is a class-2 violation (secret-tainted
/// effective address), the AES T-table cache-attack pattern.
const SBOX_INDEX: &str = r#"
.data
sbox: .zero 256
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
sb_trial:
    beqz s0, sb_done
    csrr s1, 0x8c8          # secret index (doubles as the label)
    csrw 0x8c2, s1
    la   t0, sbox
    add  t0, t0, s1
    lbu  a0, 0(t0)          # LEAK: load address depends on the secret
    csrw 0x8c3, zero
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    sb_trial
sb_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Square-and-reduce loop with the modulus taken from the secret input:
/// the `remu` with a secret divisor is a class-3 violation (secret
/// operand to a variable-latency divide).
const MODEXP_DIVISOR: &str = r#"
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
mx_trial:
    beqz s0, mx_done
    csrr s2, 0x8c8          # secret modulus (doubles as the label)
    csrw 0x8c2, s2
    li   t1, 7              # base
    li   t2, 5              # square-and-reduce rounds
mx_round:
    mul  t1, t1, t1
    remu t1, t1, s2         # LEAK: divider latency keyed by the secret
    addi t2, t2, -1
    bgtz t2, mx_round
    csrw 0x8c3, zero
    csrw 0x8c9, t1
    addi s0, s0, -1
    j    mx_trial
mx_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Spectre-v1 bounds-check-bypass gadget. Architecturally the always-taken
/// guard (`bnez` on a constant built by a slow `mul` chain, so it resolves
/// late) skips the secret-indexed load entirely — the architectural path
/// is constant time. Under a mispredict, the wrong-path `lbu` indexes a
/// 4 KiB table with the secret's low six bits (one cache line per class)
/// and its fill survives the squash: a class-4 CT-SPEC transmitter. The
/// secret-keyed chaff branches *before* ITER_START give every label class
/// its own global-history context in the gshare PHT, so fresh/adversarial
/// predictor state mispredicts the guard per-class.
const SPECTRE_BOUNDS: &str = r#"
.data
table: .zero 4096
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
sv_trial:
    beqz s0, sv_done
    csrr s1, 0x8c8          # secret label
    andi t5, s1, 1          # chaff: secret- and trial-keyed branches
    beqz t5, sv_c1          # before ITER_START steer the guard's
sv_c1:
    andi t5, s1, 2          # gshare history into a context unique to
    beqz t5, sv_c2          # (trial, class); fresh contexts are
sv_c2:
    andi t5, s1, 4          # untrained, so an adversarially polarized
    beqz t5, sv_c3          # PHT keeps mispredicting the guard on a
sv_c3:
    andi t5, s0, 1          # class-correlated subset of iterations
    beqz t5, sv_c4          # (not sampled, not a reportable finding)
sv_c4:
    andi t5, s0, 2
    beqz t5, sv_c5
sv_c5:
    andi t5, s0, 4
    beqz t5, sv_c6
sv_c6:
    andi t5, s0, 8
    beqz t5, sv_c7
sv_c7:
    andi t5, s0, 16
    beqz t5, sv_c8
sv_c8:
    andi t5, s0, 32
    beqz t5, sv_c9
sv_c9:
    csrw 0x8c2, s1          # ITER_START
    la   t1, table
    li   t4, 1
    mul  t6, t4, t4         # delay chain: the guard resolves ~9 cycles
    mul  t6, t6, t6         # late, letting the wrong-path load reach
    mul  t6, t6, t6         # the dcache before the squash
    bnez t6, sv_safe        # always taken; the mispredictable guard
    andi t2, s1, 63         # -- transient (wrong-path) arm --
    slli t2, t2, 6
    add  t3, t1, t2
    lbu  a0, 0(t3)          # LEAK (transient): secret-indexed load
sv_safe:
    lbu  a0, 0(t1)
    csrw 0x8c3, zero        # ITER_END
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    sv_trial
sv_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Spectre-v1 gadget with a two-stage transient payload: the wrong path
/// loads a label-indexed byte from the secret `.data` key region, then
/// both branches on it and stores to a key-byte-indexed buffer slot. The
/// transient `lbu`, `bnez`, and `sb` are all class-4 CT-SPEC
/// transmitters; the expected mnemonic pins the store.
const SPECTRE_STORE: &str = r#"
.data
skey: .byte 0x9d, 0x13, 0x77, 0xe4, 0x28, 0x5b, 0xc0, 0x3f
buf:  .zero 4096
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
st_trial:
    beqz s0, st_done
    csrr s1, 0x8c8          # label (only steers history below)
    andi t5, s1, 1          # chaff: per-(trial, class) history
    beqz t5, st_c1          # contexts, pre-region (not sampled) —
st_c1:
    andi t5, s1, 2          # see leaky_spectre_bounds
    beqz t5, st_c2
st_c2:
    andi t5, s0, 1
    beqz t5, st_c3
st_c3:
    andi t5, s0, 2
    beqz t5, st_c4
st_c4:
    andi t5, s0, 4
    beqz t5, st_c5
st_c5:
    andi t5, s0, 8
    beqz t5, st_c6
st_c6:
    andi t5, s0, 16
    beqz t5, st_c7
st_c7:
    andi t5, s0, 32
    beqz t5, st_c8
st_c8:
    csrw 0x8c2, s1          # ITER_START
    la   t0, skey
    la   t1, buf
    li   t4, 5
    mul  t6, t4, t4         # delay chain for late guard resolution
    mul  t6, t6, t6
    bnez t6, st_safe        # always taken; the mispredictable guard
    andi t2, s1, 7          # -- transient arm: pick a key byte
    add  t3, t0, t2
    lbu  t2, 0(t3)          # LEAK (transient): label-indexed key load
    bnez t2, st_skip        # LEAK (transient): branch on the secret
    addi t2, t2, 1
st_skip:
    andi t2, t2, 63
    slli t2, t2, 6
    add  t3, t1, t2
    sb   t2, 0(t3)          # LEAK (transient): secret-indexed store
st_safe:
    sb   zero, 0(t1)
    csrw 0x8c3, zero        # ITER_END
    csrw 0x8c9, zero
    addi s0, s0, -1
    j    st_trial
st_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Plain architectural CT-BRANCH leak used only as the CI gate self-test
/// (see [`gate_selftest`]): it is kept out of the baseline on purpose.
const GATE_SELFTEST: &str = r#"
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
gs_trial:
    beqz s0, gs_done
    csrr s1, 0x8c8          # secret bit
    csrw 0x8c2, s1
    li   a0, 0
    bne  s1, zero, gs_one   # LEAK: branch on the secret
    j    gs_out
gs_one:
    li   a0, 1
gs_out:
    csrw 0x8c3, zero
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    gs_trial
gs_done:
    csrw 0x8c1, zero
    ecall
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_assemble_and_run() {
        for f in all().into_iter().chain(std::iter::once(gate_selftest())) {
            let program = assemble(f.source).unwrap_or_else(|e| panic!("{}: {e}", f.name));
            f.spec.resolve(&program); // symbol references hold
            let trials = 4u64;
            let r = run_fixture(&f, CoreConfig::small_boom(), trials, 0, TraceConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert_eq!(r.iterations.len(), trials as usize, "{}", f.name);
        }
    }

    #[test]
    fn fixture_names_resolve() {
        assert!(by_name("leaky_sbox_index").is_some());
        assert!(by_name("nope").is_none());
        let classes: Vec<u8> = all().iter().map(|f| f.expected_class).collect();
        assert_eq!(classes, vec![1, 2, 3, 4, 4]);
        // The gate self-test resolves by name but stays out of the
        // baseline set.
        assert!(by_name("gate_selftest_unbaselined").is_some());
        assert!(all().iter().all(|f| f.name != "gate_selftest_unbaselined"));
    }

    #[test]
    fn fixture_labels_hit_distinct_cache_lines() {
        for (i, a) in FIXTURE_LABELS.iter().enumerate() {
            for b in &FIXTURE_LABELS[i + 1..] {
                assert_ne!(a & 63, b & 63, "labels {a:#x} and {b:#x} alias");
            }
        }
    }
}
