//! Seeded-leaky kernels: negative controls for the static analyzer.
//!
//! Each fixture plants exactly one textbook constant-time violation —
//! one per violation class — inside an otherwise well-formed trial
//! driver (same CSR marker protocol as the real kernels). The static
//! pass must flag all three; the Table V primitives must stay clean.

use crate::secrets::SecretSpec;

/// A deliberately leaky kernel with its expected static finding.
pub struct LeakyFixture {
    /// Short name used by `repro lint` and the lint baseline.
    pub name: &'static str,
    /// Full assembly source (driver included).
    pub source: &'static str,
    /// Taint sources.
    pub spec: SecretSpec,
    /// Violation class the static pass must report: 1 = secret-tainted
    /// branch, 2 = secret-tainted address, 3 = secret operand to a
    /// variable-latency mul/div.
    pub expected_class: u8,
    /// Mnemonic of the violating instruction (the reported PC must
    /// disassemble to this).
    pub expected_mnemonic: &'static str,
}

/// All three seeded-leaky fixtures.
pub fn all() -> Vec<LeakyFixture> {
    vec![
        LeakyFixture {
            name: "leaky_branchy_memcmp",
            source: BRANCHY_MEMCMP,
            spec: SecretSpec::csr_and_regions(&[("key", 16)]),
            expected_class: 1,
            expected_mnemonic: "bne",
        },
        LeakyFixture {
            name: "leaky_sbox_index",
            source: SBOX_INDEX,
            spec: SecretSpec::csr_only(),
            expected_class: 2,
            expected_mnemonic: "lbu",
        },
        LeakyFixture {
            name: "leaky_modexp_divisor",
            source: MODEXP_DIVISOR,
            spec: SecretSpec::csr_only(),
            expected_class: 3,
            expected_mnemonic: "remu",
        },
    ]
}

/// Looks up a fixture by name.
pub fn by_name(name: &str) -> Option<LeakyFixture> {
    all().into_iter().find(|f| f.name == name)
}

/// Early-exit byte compare against a secret key in `.data`: the `bne` on
/// a key byte is a class-1 violation (secret-tainted branch condition),
/// the pattern behind every classic string-compare timing attack.
const BRANCHY_MEMCMP: &str = r#"
.data
key: .byte 0x3a, 0x91, 0x5e, 0xc7, 0x08, 0x44, 0xd2, 0x6f
     .byte 0x19, 0xaa, 0x0b, 0x7c, 0xe1, 0x53, 0x2d, 0x90
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
mc_trial:
    beqz s0, mc_done
    csrr s1, 0x8c8          # guess byte (doubles as the label)
    csrw 0x8c2, s1
    la   t0, key
    li   t2, 16
    li   a0, 0
mc_scan:
    lbu  t3, 0(t0)          # secret key byte
    bne  t3, s1, mc_fail    # LEAK: branch on a secret comparison
    addi t0, t0, 1
    addi t2, t2, -1
    bgtz t2, mc_scan
    j    mc_end
mc_fail:
    li   a0, 1
mc_end:
    csrw 0x8c3, zero
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    mc_trial
mc_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Direct table indexing with a secret byte: the `lbu` through a
/// secret-derived pointer is a class-2 violation (secret-tainted
/// effective address), the AES T-table cache-attack pattern.
const SBOX_INDEX: &str = r#"
.data
sbox: .zero 256
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
sb_trial:
    beqz s0, sb_done
    csrr s1, 0x8c8          # secret index (doubles as the label)
    csrw 0x8c2, s1
    la   t0, sbox
    add  t0, t0, s1
    lbu  a0, 0(t0)          # LEAK: load address depends on the secret
    csrw 0x8c3, zero
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    sb_trial
sb_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Square-and-reduce loop with the modulus taken from the secret input:
/// the `remu` with a secret divisor is a class-3 violation (secret
/// operand to a variable-latency divide).
const MODEXP_DIVISOR: &str = r#"
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
mx_trial:
    beqz s0, mx_done
    csrr s2, 0x8c8          # secret modulus (doubles as the label)
    csrw 0x8c2, s2
    li   t1, 7              # base
    li   t2, 5              # square-and-reduce rounds
mx_round:
    mul  t1, t1, t1
    remu t1, t1, s2         # LEAK: divider latency keyed by the secret
    addi t2, t2, -1
    bgtz t2, mx_round
    csrw 0x8c3, zero
    csrw 0x8c9, t1
    addi s0, s0, -1
    j    mx_trial
mx_done:
    csrw 0x8c1, zero
    ecall
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_isa::asm::assemble;
    use microsampler_sim::{CoreConfig, Machine, TraceConfig};

    #[test]
    fn fixtures_assemble_and_run() {
        for f in all() {
            let program = assemble(f.source).unwrap_or_else(|e| panic!("{}: {e}", f.name));
            f.spec.resolve(&program); // symbol references hold
            let mut m = Machine::with_trace_config(
                CoreConfig::small_boom(),
                &program,
                TraceConfig::default(),
            );
            let trials = 4u64;
            let mut words = vec![trials];
            words.extend((0..trials).map(|i| i * 37 + 5));
            m.push_inputs(words);
            let r = m.run(400_000).unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert_eq!(r.iterations.len(), trials as usize, "{}", f.name);
        }
    }

    #[test]
    fn fixture_names_resolve() {
        assert!(by_name("leaky_sbox_index").is_some());
        assert!(by_name("nope").is_none());
        let classes: Vec<u8> = all().iter().map(|f| f.expected_class).collect();
        assert_eq!(classes, vec![1, 2, 3]);
    }
}
