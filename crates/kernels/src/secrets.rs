//! Per-kernel secret declarations for static taint analysis.
//!
//! The dynamic pipeline learns what is secret from the iteration labels;
//! a static analyzer has to be told. A [`SecretSpec`] names the taint
//! sources of one kernel: whether words read from the input CSR (0x8c8)
//! carry secret data, and which `.data` regions hold secret bytes. The
//! `microsampler-ct` analyzer seeds its abstract state from this spec.

use microsampler_isa::Program;

/// A named `.data` region holding secret bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecretRegion {
    /// Label of the region in the kernel's assembly source.
    pub symbol: &'static str,
    /// Region length in bytes.
    pub len: u64,
}

/// The taint sources of one kernel.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SecretSpec {
    /// Words read from the input CSR (0x8c8) are secret. True for every
    /// Table V primitive: the trial inputs *are* the secret classes.
    pub csr_input_secret: bool,
    /// `.data` regions staged with secret bytes.
    pub regions: Vec<SecretRegion>,
}

impl SecretSpec {
    /// Secrets arrive only through the input CSR (scalar primitives,
    /// table lookup with a secret index).
    pub fn csr_only() -> SecretSpec {
        SecretSpec { csr_input_secret: true, regions: Vec::new() }
    }

    /// Input CSR plus named `.data` regions (buffer-staging kernels).
    pub fn csr_and_regions(regions: &[(&'static str, u64)]) -> SecretSpec {
        SecretSpec {
            csr_input_secret: true,
            regions: regions.iter().map(|&(symbol, len)| SecretRegion { symbol, len }).collect(),
        }
    }

    /// Resolves the declared regions against a program's symbol table into
    /// `(start, len)` byte ranges relative to the data base.
    ///
    /// # Panics
    ///
    /// Panics when a declared symbol is missing or not in `.data` — the
    /// spec and the kernel source ship together, so a mismatch is a bug.
    pub fn resolve(&self, program: &Program) -> Vec<(u64, u64)> {
        self.regions
            .iter()
            .map(|r| {
                let sym = program
                    .symbol(r.symbol)
                    .unwrap_or_else(|| panic!("secret region `{}` not in symbol table", r.symbol));
                assert!(
                    sym.addr >= program.data_base,
                    "secret region `{}` is not in .data",
                    r.symbol
                );
                (sym.addr - program.data_base, r.len)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_isa::asm::assemble;

    #[test]
    fn resolve_maps_symbols_to_data_offsets() {
        let p = assemble(".data\npad: .zero 8\nkey: .zero 16\n.text\nnop\necall\n").unwrap();
        let spec = SecretSpec::csr_and_regions(&[("key", 16)]);
        assert_eq!(spec.resolve(&p), vec![(8, 16)]);
        assert!(spec.csr_input_secret);
    }

    #[test]
    #[should_panic(expected = "not in symbol table")]
    fn resolve_rejects_unknown_symbol() {
        let p = assemble("nop\necall\n").unwrap();
        SecretSpec::csr_and_regions(&[("ghost", 8)]).resolve(&p);
    }
}
