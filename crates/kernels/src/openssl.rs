//! The OpenSSL constant-time primitives of paper Table V.
//!
//! 27 primitives across seven families (`eq`, `select`, `ge`, `lt`,
//! `cond_swap`, `lookup`, `is_zero`), each implemented in branchless RV64
//! assembly following OpenSSL's `constant_time_*` mask arithmetic, plus a
//! trial driver that streams inputs through the input CSR so traces stay
//! position-independent. Every primitive carries a Rust reference model;
//! [`Primitive::run`] verifies functional agreement while collecting the
//! labeled iteration traces for leakage analysis.

use crate::modexp::ModexpError;
use crate::secrets::SecretSpec;
use microsampler_isa::asm::assemble;
use microsampler_sim::{CoreConfig, Machine, RunResult, TraceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the three scalar inputs and the secret-class label for one
/// trial.
type ScalarGen = fn(&mut StdRng) -> ([u64; 3], u64);
/// Reference model: inputs to the two output words.
type ScalarRef = fn([u64; 3]) -> (u64, u64);

/// How a primitive's program is built and checked.
enum Kind {
    /// Three scalar inputs via CSR, two scalar outputs.
    Scalar { body: &'static str, gen: ScalarGen, reference: ScalarRef },
    /// Two staged 4-word buffers, one scalar output.
    BigNum { roi: &'static str, gen: BnGen, reference: BnRef },
    /// Staged buffers conditionally swapped in memory, 8 output words.
    SwapBuff,
    /// A 16-entry table scanned with a secret index.
    Lookup,
}

type BnGen = fn(&mut StdRng) -> ([u64; 4], [u64; 4], u64);
type BnRef = fn(&[u64; 4], &[u64; 4]) -> u64;

/// One constant-time primitive under test.
pub struct Primitive {
    /// OpenSSL-style name, e.g. `constant_time_eq`.
    pub name: &'static str,
    kind: Kind,
}

impl std::fmt::Debug for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Primitive").field("name", &self.name).finish()
    }
}

/// The outcome of running one primitive's trial batch.
#[derive(Clone, Debug)]
pub struct PrimitiveOutcome {
    /// Simulation result with labeled iteration traces.
    pub result: RunResult,
    /// Whether every trial's outputs matched the reference model.
    pub functional_ok: bool,
}

/// Number of leading trials run to warm caches, TLB and predictors; their
/// iterations are dropped from the returned traces (cold-start snapshots
/// are systematically different and would be spurious "features").
pub const WARMUP_TRIALS: usize = 8;

// --- reference helpers ----------------------------------------------------

fn mask64(b: bool) -> u64 {
    if b {
        u64::MAX
    } else {
        0
    }
}

fn mask32(b: bool) -> u64 {
    if b {
        0xFFFF_FFFF
    } else {
        0
    }
}

fn mask8(b: bool) -> u64 {
    if b {
        0xFF
    } else {
        0
    }
}

// --- input generators -------------------------------------------------------

fn gen_eq(rng: &mut StdRng) -> ([u64; 3], u64) {
    let a: u64 = rng.gen();
    let equal: bool = rng.gen();
    let b = if equal { a } else { rng.gen::<u64>() | 1 ^ a.rotate_left(1) };
    ([a, b, 0], (a == b) as u64)
}

fn gen_eq32(rng: &mut StdRng) -> ([u64; 3], u64) {
    let a: u64 = rng.gen::<u32>() as u64;
    let equal: bool = rng.gen();
    let b = if equal { a } else { (a as u32).wrapping_add(rng.gen_range(1..=u32::MAX)) as u64 };
    ([a, b, 0], (a == b) as u64)
}

fn gen_select(rng: &mut StdRng) -> ([u64; 3], u64) {
    let pick: bool = rng.gen();
    ([mask64(pick), rng.gen(), rng.gen()], pick as u64)
}

fn gen_cmp(rng: &mut StdRng) -> ([u64; 3], u64) {
    // Mix full-range values with near-equal pairs for boundary coverage.
    let a: u64 = rng.gen();
    let b: u64 = if rng.gen::<bool>() { rng.gen() } else { a.wrapping_add(rng.gen_range(0..3)) };
    ([a, b, 0], (a < b) as u64)
}

fn gen_cmp_s(rng: &mut StdRng) -> ([u64; 3], u64) {
    let (v, _) = gen_cmp(rng);
    ([v[0], v[1], 0], ((v[0] as i64) < (v[1] as i64)) as u64)
}

fn gen_cmp8_s(rng: &mut StdRng) -> ([u64; 3], u64) {
    let a: u64 = rng.gen::<u8>() as u64;
    let b: u64 = rng.gen::<u8>() as u64;
    ([a, b, 0], ((a as u8 as i8) >= (b as u8 as i8)) as u64)
}

fn gen_cmp32(rng: &mut StdRng) -> ([u64; 3], u64) {
    let a: u64 = rng.gen::<u32>() as u64;
    let b: u64 = rng.gen::<u32>() as u64;
    ([a, b, 0], ((a as u32) < (b as u32)) as u64)
}

fn gen_swap(rng: &mut StdRng) -> ([u64; 3], u64) {
    let do_swap: bool = rng.gen();
    ([mask64(do_swap), rng.gen(), rng.gen()], do_swap as u64)
}

fn gen_swap32(rng: &mut StdRng) -> ([u64; 3], u64) {
    let do_swap: bool = rng.gen();
    ([mask32(do_swap), rng.gen::<u32>() as u64, rng.gen::<u32>() as u64], do_swap as u64)
}

fn gen_is_zero(rng: &mut StdRng) -> ([u64; 3], u64) {
    let zero: bool = rng.gen();
    let v = if zero { 0 } else { rng.gen::<u64>() | 1 };
    ([v, 0, 0], zero as u64)
}

fn gen_is_zero8(rng: &mut StdRng) -> ([u64; 3], u64) {
    let zero: bool = rng.gen();
    let v = if zero { 0 } else { rng.gen_range(1..=255u64) };
    ([v, 0, 0], zero as u64)
}

fn gen_is_zero32(rng: &mut StdRng) -> ([u64; 3], u64) {
    let zero: bool = rng.gen();
    let v = if zero { 0 } else { rng.gen_range(1..=u32::MAX as u64) };
    ([v, 0, 0], zero as u64)
}

// --- the catalog -----------------------------------------------------------

impl Primitive {
    /// All 27 primitives of Table V (`CRYPTO_memcmp` is the separate
    /// [`crate::memcmp::MemcmpKernel`] case study).
    pub fn all() -> Vec<Primitive> {
        fn scalar(
            name: &'static str,
            body: &'static str,
            gen: ScalarGen,
            reference: ScalarRef,
        ) -> Primitive {
            Primitive { name, kind: Kind::Scalar { body, gen, reference } }
        }
        vec![
            // -- eq family --
            scalar("constant_time_eq", EQ_64, gen_eq, |v| (mask64(v[0] == v[1]), 0)),
            scalar("constant_time_eq_8", EQ_8, gen_eq, |v| (mask8(v[0] == v[1]), 0)),
            scalar("constant_time_eq_int", EQ_INT, gen_eq32, |v| {
                (mask32(v[0] as u32 == v[1] as u32), 0)
            }),
            scalar("constant_time_eq_int_8", EQ_INT_8, gen_eq32, |v| {
                (mask8(v[0] as u32 == v[1] as u32), 0)
            }),
            Primitive {
                name: "constant_time_eq_bn",
                kind: Kind::BigNum {
                    roi: EQ_BN_ROI,
                    gen: gen_bn_eq,
                    reference: |a, b| mask64(a == b),
                },
            },
            // -- select family --
            scalar("constant_time_select", SELECT_64, gen_select, |v| {
                ((v[0] & v[1]) | (!v[0] & v[2]), 0)
            }),
            scalar("constant_time_select_8", SELECT_8, gen_select, |v| {
                (((v[0] & v[1]) | (!v[0] & v[2])) & 0xFF, 0)
            }),
            scalar("constant_time_select_32", SELECT_32, gen_select, |v| {
                (((v[0] & v[1]) | (!v[0] & v[2])) & 0xFFFF_FFFF, 0)
            }),
            scalar("constant_time_select_64", SELECT_64, gen_select, |v| {
                ((v[0] & v[1]) | (!v[0] & v[2]), 0)
            }),
            // -- ge family --
            scalar("constant_time_ge", GE_64, gen_cmp, |v| (mask64(v[0] >= v[1]), 0)),
            scalar("constant_time_ge_s", GE_S, gen_cmp_s, |v| {
                (mask64((v[0] as i64) >= (v[1] as i64)), 0)
            }),
            scalar("constant_time_ge_8_s", GE_8_S, gen_cmp8_s, |v| {
                (mask8((v[0] as u8 as i8) >= (v[1] as u8 as i8)), 0)
            }),
            // -- lt family --
            scalar("constant_time_lt", LT_64_PRIM, gen_cmp, |v| (mask64(v[0] < v[1]), 0)),
            scalar("constant_time_lt_s", LT_S, gen_cmp_s, |v| {
                (mask64((v[0] as i64) < (v[1] as i64)), 0)
            }),
            scalar("constant_time_lt_32", LT_32, gen_cmp32, |v| {
                (mask32((v[0] as u32) < (v[1] as u32)), 0)
            }),
            scalar("constant_time_lt_64", LT_64_PRIM, gen_cmp, |v| (mask64(v[0] < v[1]), 0)),
            Primitive {
                name: "constant_time_lt_bn",
                kind: Kind::BigNum { roi: LT_BN_ROI, gen: gen_bn_lt, reference: bn_lt_ref },
            },
            // -- cond_swap family --
            scalar("constant_time_cond_swap", SWAP_64, gen_swap, swap_ref),
            scalar("constant_time_cond_swap_32", SWAP_32_BODY, gen_swap32, |v| {
                let t = (v[1] ^ v[2]) & v[0] & 0xFFFF_FFFF;
                (v[1] ^ t, v[2] ^ t)
            }),
            scalar("constant_time_cond_swap_64", SWAP_64, gen_swap, swap_ref),
            Primitive { name: "constant_time_cond_swap_buff", kind: Kind::SwapBuff },
            // -- lookup --
            Primitive { name: "constant_time_lookup", kind: Kind::Lookup },
            // -- is_zero family --
            scalar("constant_time_is_zero", IZ_64, gen_is_zero, |v| (mask64(v[0] == 0), 0)),
            scalar("constant_time_is_zero_s", IZ_64, gen_is_zero, |v| (mask64(v[0] == 0), 0)),
            scalar("constant_time_is_zero_8", IZ_8, gen_is_zero8, |v| (mask8(v[0] == 0), 0)),
            scalar("constant_time_is_zero_32", IZ_32, gen_is_zero32, |v| {
                (mask32(v[0] as u32 == 0), 0)
            }),
            scalar("constant_time_is_zero_64", IZ_64, gen_is_zero, |v| (mask64(v[0] == 0), 0)),
        ]
    }

    /// The complete assembly source (driver plus primitive body) this
    /// primitive runs — the same text the dynamic trials assemble, so the
    /// static analyzer sees exactly what the simulator executes.
    pub fn source(&self) -> String {
        match &self.kind {
            Kind::Scalar { body, .. } => format!("{SCALAR_DRIVER}\nprim:\n{body}\n    ret\n"),
            Kind::BigNum { roi, .. } => format!("{BN_DRIVER_PRE}\n{roi}\n{BN_DRIVER_POST}"),
            Kind::SwapBuff => SWAP_BUFF_PROGRAM.to_string(),
            Kind::Lookup => LOOKUP_PROGRAM.to_string(),
        }
    }

    /// Taint sources for static analysis. Every primitive's secrets enter
    /// through the input CSR; the buffer-staging kernels additionally hold
    /// secret bytes in named `.data` regions.
    pub fn secret_spec(&self) -> SecretSpec {
        match &self.kind {
            Kind::Scalar { .. } => SecretSpec::csr_only(),
            Kind::BigNum { .. } => SecretSpec::csr_and_regions(&[("abn", 32), ("bbn", 32)]),
            Kind::SwapBuff => SecretSpec::csr_and_regions(&[("abuf", 32), ("bbuf", 32)]),
            // The lookup table itself is public; the secret is the index,
            // which arrives through the CSR.
            Kind::Lookup => SecretSpec::csr_only(),
        }
    }

    /// Runs `trials` labeled trials and verifies outputs against the
    /// reference model.
    ///
    /// # Errors
    ///
    /// Propagates assembler and simulator errors.
    pub fn run(
        &self,
        config: CoreConfig,
        trials: usize,
        seed: u64,
        trace: TraceConfig,
    ) -> Result<PrimitiveOutcome, ModexpError> {
        match &self.kind {
            Kind::Scalar { gen, reference, .. } => {
                self.run_scalar(config, trials, seed, trace, *gen, *reference)
            }
            Kind::BigNum { gen, reference, .. } => {
                self.run_bignum(config, trials, seed, trace, *gen, *reference)
            }
            Kind::SwapBuff => self.run_swap_buff(config, trials, seed, trace),
            Kind::Lookup => self.run_lookup(config, trials, seed, trace),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_scalar(
        &self,
        config: CoreConfig,
        trials: usize,
        seed: u64,
        trace: TraceConfig,
        gen: ScalarGen,
        reference: ScalarRef,
    ) -> Result<PrimitiveOutcome, ModexpError> {
        let program = assemble(&self.source())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let total = WARMUP_TRIALS + trials;
        let mut words = vec![total as u64];
        let mut expected = Vec::with_capacity(total * 2);
        for _ in 0..total {
            let (inputs, label) = gen(&mut rng);
            words.extend(inputs);
            words.push(label);
            let (r0, r1) = reference(inputs);
            expected.push(r0);
            expected.push(r1);
        }
        let mut machine = Machine::with_trace_config(config, &program, trace);
        machine.push_inputs(words);
        let mut result = machine.run(500_000 + total as u64 * 20_000)?;
        result.iterations.drain(..WARMUP_TRIALS);
        let outputs = machine.take_outputs();
        Ok(PrimitiveOutcome { functional_ok: outputs == expected, result })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_bignum(
        &self,
        config: CoreConfig,
        trials: usize,
        seed: u64,
        trace: TraceConfig,
        gen: BnGen,
        reference: BnRef,
    ) -> Result<PrimitiveOutcome, ModexpError> {
        let program = assemble(&self.source())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let total = WARMUP_TRIALS + trials;
        let mut words = vec![total as u64];
        let mut expected = Vec::with_capacity(total);
        for _ in 0..total {
            let (a, b, label) = gen(&mut rng);
            words.extend(a);
            words.extend(b);
            words.push(label);
            expected.push(reference(&a, &b));
        }
        let mut machine = Machine::with_trace_config(config, &program, trace);
        machine.push_inputs(words);
        let mut result = machine.run(500_000 + total as u64 * 30_000)?;
        result.iterations.drain(..WARMUP_TRIALS);
        let outputs = machine.take_outputs();
        Ok(PrimitiveOutcome { functional_ok: outputs == expected, result })
    }

    fn run_swap_buff(
        &self,
        config: CoreConfig,
        trials: usize,
        seed: u64,
        trace: TraceConfig,
    ) -> Result<PrimitiveOutcome, ModexpError> {
        let program = assemble(&self.source())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let total = WARMUP_TRIALS + trials;
        let mut words = vec![total as u64];
        let mut expected = Vec::with_capacity(total * 8);
        for _ in 0..total {
            let do_swap: bool = rng.gen();
            let a: [u64; 4] = rng.gen();
            let b: [u64; 4] = rng.gen();
            words.extend(a);
            words.extend(b);
            words.push(mask64(do_swap));
            words.push(do_swap as u64); // label
            let (ea, eb) = if do_swap { (b, a) } else { (a, b) };
            expected.extend(ea);
            expected.extend(eb);
        }
        let mut machine = Machine::with_trace_config(config, &program, trace);
        machine.push_inputs(words);
        let mut result = machine.run(500_000 + total as u64 * 30_000)?;
        result.iterations.drain(..WARMUP_TRIALS);
        let outputs = machine.take_outputs();
        Ok(PrimitiveOutcome { functional_ok: outputs == expected, result })
    }

    fn run_lookup(
        &self,
        config: CoreConfig,
        trials: usize,
        seed: u64,
        trace: TraceConfig,
    ) -> Result<PrimitiveOutcome, ModexpError> {
        let program = assemble(&self.source())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let table: Vec<u64> = (0..16).map(|_| rng.gen()).collect();
        let total = WARMUP_TRIALS + trials;
        let mut words = table.clone();
        words.push(total as u64);
        let mut expected = Vec::with_capacity(total);
        for _ in 0..total {
            let idx = rng.gen_range(0..16u64);
            words.push(idx); // secret index doubles as the label
            expected.push(table[idx as usize]);
        }
        let mut machine = Machine::with_trace_config(config, &program, trace);
        machine.push_inputs(words);
        let mut result = machine.run(500_000 + total as u64 * 60_000)?;
        result.iterations.drain(..WARMUP_TRIALS);
        let outputs = machine.take_outputs();
        Ok(PrimitiveOutcome { functional_ok: outputs == expected, result })
    }
}

fn swap_ref(v: [u64; 3]) -> (u64, u64) {
    let t = (v[1] ^ v[2]) & v[0];
    (v[1] ^ t, v[2] ^ t)
}

fn gen_bn_eq(rng: &mut StdRng) -> ([u64; 4], [u64; 4], u64) {
    let a: [u64; 4] = rng.gen();
    if rng.gen() {
        (a, a, 1)
    } else {
        let mut b = a;
        b[rng.gen_range(0..4usize)] ^= rng.gen::<u64>() | 1;
        (a, b, (a == b) as u64)
    }
}

fn gen_bn_lt(rng: &mut StdRng) -> ([u64; 4], [u64; 4], u64) {
    let a: [u64; 4] = rng.gen();
    let b: [u64; 4] = if rng.gen() {
        rng.gen()
    } else {
        let mut b = a;
        let i = rng.gen_range(0..4usize);
        b[i] = b[i].wrapping_add(1);
        b
    };
    let label = bn_lt_ref(&a, &b);
    (a, b, label)
}

/// Little-endian limb comparison: 1 when `a < b`.
fn bn_lt_ref(a: &[u64; 4], b: &[u64; 4]) -> u64 {
    let mut borrow = 0u64;
    for i in 0..4 {
        let lt = (a[i] < b[i]) as u64;
        let eq = (a[i] == b[i]) as u64;
        borrow = lt | (eq & borrow);
    }
    borrow
}

// --- scalar primitive bodies -----------------------------------------------
// Bodies are assembled from string literals with `concat!`. Each implements
// the corresponding OpenSSL `constant_time_*` mask arithmetic and ends with
// results in a0 (and a1 for two-output primitives; others zero it).

/// `constant_time_eq`: `is_zero(a ^ b)` (OpenSSL's definition).
const EQ_64: &str = concat!(
    "    xor  a0, a0, a1\n",
    "    not  t0, a0\n    addi t1, a0, -1\n    and  t0, t0, t1\n    srai a0, t0, 63\n",
    "    li a1, 0\n"
);

const EQ_8: &str = concat!(
    "    xor  a0, a0, a1\n",
    "    not  t0, a0\n    addi t1, a0, -1\n    and  t0, t0, t1\n    srai a0, t0, 63\n",
    "    andi a0, a0, 0xff\n",
    "    li a1, 0\n"
);

const EQ_INT: &str = concat!(
    "    sext.w a0, a0\n    sext.w a1, a1\n    xor a0, a0, a1\n",
    "    sext.w a0, a0\n    not   t0, a0\n    addiw t1, a0, -1\n    and   t0, t0, t1\n",
    "    sraiw a0, t0, 31\n    slli  a0, a0, 32\n    srli  a0, a0, 32\n",
    "    li a1, 0\n"
);

const EQ_INT_8: &str = concat!(
    "    sext.w a0, a0\n    sext.w a1, a1\n    xor a0, a0, a1\n",
    "    sext.w a0, a0\n    not   t0, a0\n    addiw t1, a0, -1\n    and   t0, t0, t1\n",
    "    sraiw a0, t0, 31\n",
    "    andi a0, a0, 0xff\n",
    "    li a1, 0\n"
);

const SELECT_64: &str = concat!(
    "    and t0, a0, a1\n    not t1, a0\n    and t1, t1, a2\n    or a0, t0, t1\n",
    "    li a1, 0\n"
);

const SELECT_8: &str = concat!(
    "    and t0, a0, a1\n    not t1, a0\n    and t1, t1, a2\n    or a0, t0, t1\n",
    "    andi a0, a0, 0xff\n",
    "    li a1, 0\n"
);

const SELECT_32: &str = concat!(
    "    and t0, a0, a1\n    not t1, a0\n    and t1, t1, a2\n    or a0, t0, t1\n",
    "    slli a0, a0, 32\n    srli a0, a0, 32\n",
    "    li a1, 0\n"
);

const LT_64_PRIM: &str = concat!(
    "    xor  t0, a0, a1\n    sub  t2, a0, a1\n    xor  t2, t2, a1\n",
    "    or   t0, t0, t2\n    xor  t0, t0, a0\n    srai a0, t0, 63\n",
    "    li a1, 0\n"
);

const GE_64: &str = concat!(
    "    xor  t0, a0, a1\n    sub  t2, a0, a1\n    xor  t2, t2, a1\n",
    "    or   t0, t0, t2\n    xor  t0, t0, a0\n    srai a0, t0, 63\n",
    "    not  a0, a0\n",
    "    li a1, 0\n"
);

const LT_S: &str = concat!(
    "    li   t3, 1\n    slli t3, t3, 63\n    xor  a0, a0, t3\n    xor  a1, a1, t3\n",
    "    xor  t0, a0, a1\n    sub  t2, a0, a1\n    xor  t2, t2, a1\n",
    "    or   t0, t0, t2\n    xor  t0, t0, a0\n    srai a0, t0, 63\n",
    "    li a1, 0\n"
);

const GE_S: &str = concat!(
    "    li   t3, 1\n    slli t3, t3, 63\n    xor  a0, a0, t3\n    xor  a1, a1, t3\n",
    "    xor  t0, a0, a1\n    sub  t2, a0, a1\n    xor  t2, t2, a1\n",
    "    or   t0, t0, t2\n    xor  t0, t0, a0\n    srai a0, t0, 63\n",
    "    not  a0, a0\n",
    "    li a1, 0\n"
);

const GE_8_S: &str = concat!(
    "    slli a0, a0, 56\n    slli a1, a1, 56\n", // 8-bit values into the sign position
    "    li   t3, 1\n    slli t3, t3, 63\n    xor  a0, a0, t3\n    xor  a1, a1, t3\n",
    "    xor  t0, a0, a1\n    sub  t2, a0, a1\n    xor  t2, t2, a1\n",
    "    or   t0, t0, t2\n    xor  t0, t0, a0\n    srai a0, t0, 63\n",
    "    not  a0, a0\n",
    "    andi a0, a0, 0xff\n",
    "    li a1, 0\n"
);

const LT_32: &str = concat!(
    // Inputs already zero-extended 32-bit values; 64-bit compare is exact.
    "    xor  t0, a0, a1\n    sub  t2, a0, a1\n    xor  t2, t2, a1\n",
    "    or   t0, t0, t2\n    xor  t0, t0, a0\n    srai a0, t0, 63\n",
    "    slli a0, a0, 32\n    srli a0, a0, 32\n",
    "    li a1, 0\n"
);

const SWAP_64: &str = concat!(
    "    mv   t1, a1\n    xor  t0, a1, a2\n    and  t0, t0, a0\n",
    "    xor  a0, t1, t0\n    xor  a1, a2, t0\n"
);

const SWAP_32_BODY: &str = concat!(
    "    mv   t1, a1\n    xor  t0, a1, a2\n    and  t0, t0, a0\n",
    "    slli t0, t0, 32\n    srli t0, t0, 32\n",
    "    xor  a0, t1, t0\n    xor  a1, a2, t0\n"
);

const IZ_64: &str = concat!(
    "    not  t0, a0\n    addi t1, a0, -1\n    and  t0, t0, t1\n    srai a0, t0, 63\n",
    "    li a1, 0\n"
);

const IZ_8: &str = concat!(
    "    andi a0, a0, 0xff\n",
    "    not  t0, a0\n    addi t1, a0, -1\n    and  t0, t0, t1\n    srai a0, t0, 63\n",
    "    andi a0, a0, 0xff\n",
    "    li a1, 0\n"
);

const IZ_32: &str = concat!(
    "    sext.w a0, a0\n    not   t0, a0\n    addiw t1, a0, -1\n    and   t0, t0, t1\n",
    "    sraiw a0, t0, 31\n    slli  a0, a0, 32\n    srli  a0, a0, 32\n",
    "    li a1, 0\n"
);

// --- drivers ----------------------------------------------------------------

/// Scalar driver: trials count, then per trial 3 inputs + label via the
/// input CSR, two outputs via the output CSR.
const SCALAR_DRIVER: &str = r#"
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
p_loop:
    beqz s0, p_done
    csrr a0, 0x8c8
    csrr a1, 0x8c8
    csrr a2, 0x8c8
    csrr s1, 0x8c8          # label
    csrw 0x8c2, s1          # ITER_START
    call prim
    csrw 0x8c3, zero        # ITER_END
    csrw 0x8c9, a0
    csrw 0x8c9, a1
    addi s0, s0, -1
    j p_loop
p_done:
    csrw 0x8c1, zero
    ecall
"#;

/// BigNum driver prefix: stages two 4-word buffers, reads the label, opens
/// the iteration and loads buffer base pointers into a0/a1.
const BN_DRIVER_PRE: &str = r#"
.data
abn: .zero 32
bbn: .zero 32
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8
bn_loop:
    beqz s0, bn_done
    la   t0, abn
    li   t1, 8              # stage both buffers back to back
bn_stage:
    csrr t2, 0x8c8
    sd   t2, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bgtz t1, bn_stage
    csrr s1, 0x8c8          # label
    csrw 0x8c2, s1
    la   a0, abn
    la   a1, bbn
"#;

/// BigNum driver suffix: closes the iteration and reports `a0`.
const BN_DRIVER_POST: &str = r#"
    csrw 0x8c3, zero
    csrw 0x8c9, a0
    addi s0, s0, -1
    j bn_loop
bn_done:
    csrw 0x8c1, zero
    ecall
"#;

/// `constant_time_eq_bn` region of interest: OR-fold of limb XORs, then
/// the is-zero mask.
const EQ_BN_ROI: &str = r#"
    li   t0, 0
    li   t3, 4
eqbn_loop:
    ld   t1, 0(a0)
    ld   t2, 0(a1)
    xor  t1, t1, t2
    or   t0, t0, t1
    addi a0, a0, 8
    addi a1, a1, 8
    addi t3, t3, -1
    bgtz t3, eqbn_loop
    mv   a0, t0
    not  t0, a0
    addi t1, a0, -1
    and  t0, t0, t1
    srai a0, t0, 63
"#;

/// `constant_time_lt_bn` region of interest: branchless borrow chain over
/// the four little-endian limbs.
const LT_BN_ROI: &str = r#"
    li   t0, 0              # borrow
    li   t3, 4
ltbn_loop:
    ld   t1, 0(a0)
    ld   t2, 0(a1)
    sltu t4, t1, t2         # a_i < b_i
    xor  t5, t1, t2
    seqz t5, t5             # a_i == b_i
    and  t5, t5, t0
    or   t0, t4, t5
    addi a0, a0, 8
    addi a1, a1, 8
    addi t3, t3, -1
    bgtz t3, ltbn_loop
    mv   a0, t0
"#;

/// `constant_time_cond_swap_buff`: stages two 4-word buffers plus a mask,
/// swaps in memory inside the iteration, reports both buffers.
const SWAP_BUFF_PROGRAM: &str = r#"
.data
abuf: .zero 32
bbuf: .zero 32
.text
_start:
    csrw 0x8c0, zero
    csrr s0, 0x8c8
sw_loop:
    beqz s0, sw_done
    la   t0, abuf
    li   t1, 8
sw_stage:
    csrr t2, 0x8c8
    sd   t2, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bgtz t1, sw_stage
    csrr s2, 0x8c8          # mask
    csrr s1, 0x8c8          # label
    csrw 0x8c2, s1
    la   a0, abuf
    la   a1, bbuf
    li   t3, 4
sw_body:
    ld   t1, 0(a0)
    ld   t2, 0(a1)
    xor  t0, t1, t2
    and  t0, t0, s2
    xor  t1, t1, t0
    xor  t2, t2, t0
    sd   t1, 0(a0)
    sd   t2, 0(a1)
    addi a0, a0, 8
    addi a1, a1, 8
    addi t3, t3, -1
    bgtz t3, sw_body
    csrw 0x8c3, zero
    la   t0, abuf           # report both buffers
    li   t1, 8
sw_out:
    ld   t2, 0(t0)
    csrw 0x8c9, t2
    addi t0, t0, 8
    addi t1, t1, -1
    bgtz t1, sw_out
    addi s0, s0, -1
    j sw_loop
sw_done:
    csrw 0x8c1, zero
    ecall
"#;

/// `constant_time_lookup`: a 16-entry table scanned in full with a
/// mask-accumulated select; the secret index is the class label.
const LOOKUP_PROGRAM: &str = r#"
.data
tbl: .zero 128
.text
_start:
    la   t0, tbl            # stage the (public) table once
    li   t1, 16
lk_fill:
    csrr t2, 0x8c8
    sd   t2, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bgtz t1, lk_fill
    csrw 0x8c0, zero
    csrr s0, 0x8c8          # trials
lk_loop:
    beqz s0, lk_done
    csrr s1, 0x8c8          # secret index (also the label)
    csrw 0x8c2, s1
    la   t0, tbl
    li   t1, 0              # i
    li   t2, 0              # acc
lk_scan:
    xor  t3, t1, s1         # eq-mask(i, idx)
    not  t4, t3
    addi t5, t3, -1
    and  t4, t4, t5
    srai t4, t4, 63
    ld   t5, 0(t0)
    and  t5, t5, t4
    or   t2, t2, t5
    addi t0, t0, 8
    addi t1, t1, 1
    slti t3, t1, 16
    bnez t3, lk_scan
    csrw 0x8c3, zero
    csrw 0x8c9, t2
    addi s0, s0, -1
    j lk_loop
lk_done:
    csrw 0x8c1, zero
    ecall
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_27_primitives_with_unique_names() {
        let all = Primitive::all();
        assert_eq!(all.len(), 27);
        let mut names: Vec<&str> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27, "duplicate primitive names");
    }

    #[test]
    fn every_primitive_is_functionally_correct() {
        for p in Primitive::all() {
            let outcome = p
                .run(CoreConfig::small_boom(), 6, 0xC0FFEE, TraceConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(outcome.functional_ok, "{} outputs diverged from the reference", p.name);
            assert_eq!(outcome.result.iterations.len(), 6, "{}", p.name);
        }
    }

    #[test]
    fn bn_lt_reference_cases() {
        assert_eq!(bn_lt_ref(&[0, 0, 0, 0], &[1, 0, 0, 0]), 1);
        assert_eq!(bn_lt_ref(&[1, 0, 0, 0], &[0, 0, 0, 0]), 0);
        assert_eq!(bn_lt_ref(&[5, 5, 5, 5], &[5, 5, 5, 5]), 0);
        // Most-significant limb dominates.
        assert_eq!(bn_lt_ref(&[u64::MAX, 0, 0, 0], &[0, 0, 0, 1]), 1);
        assert_eq!(bn_lt_ref(&[0, 0, 0, 1], &[u64::MAX, u64::MAX, u64::MAX, 0]), 0);
    }

    #[test]
    fn labels_match_secret_classes() {
        let p = &Primitive::all()[0]; // constant_time_eq
        let outcome = p.run(CoreConfig::small_boom(), 10, 5, TraceConfig::default()).unwrap();
        // Labels are 0/1 and both classes appear over 10 trials with this
        // seed (gen_eq flips a coin per trial).
        let labels: std::collections::BTreeSet<u64> =
            outcome.result.iterations.iter().map(|i| i.label).collect();
        assert!(labels.iter().all(|&l| l <= 1));
    }

    #[test]
    fn lookup_labels_are_indices() {
        let lookup =
            Primitive::all().into_iter().find(|p| p.name == "constant_time_lookup").unwrap();
        let outcome = lookup.run(CoreConfig::small_boom(), 8, 9, TraceConfig::default()).unwrap();
        assert!(outcome.functional_ok);
        for it in &outcome.result.iterations {
            assert!(it.label < 16);
        }
    }
}
