//! Extension case study: table-based byte substitution (S-box), the
//! textbook secret-dependent-memory-access vulnerability the paper's
//! introduction motivates (AES T-table attacks, Osvik–Shamir–Tromer).
//!
//! Two implementations of `y = SBOX[x]` over a 256-byte table:
//!
//! * [`SboxKernel::table_lookup`] — direct indexing: the accessed cache
//!   line reveals the top bits of the secret byte. MicroSampler flags the
//!   load-address side (LQ-ADDR, Cache-ADDR).
//! * [`SboxKernel::constant_time_scan`] — reads every table byte and
//!   mask-selects the match: same addresses for every secret.
//!
//! Iterations are labeled with the *cache line* of the secret index
//! (index / 64, four classes) — the granularity a cache attacker observes.

use crate::modexp::ModexpError;
use microsampler_isa::asm::assemble;
use microsampler_sim::{CoreConfig, Machine, RunResult, TraceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which S-box implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SboxImpl {
    /// Direct `SBOX[x]` indexing (leaky).
    TableLookup,
    /// Constant-time full-table scan (safe).
    ConstantTimeScan,
}

/// The S-box case-study kernel.
#[derive(Clone, Debug)]
pub struct SboxKernel {
    imp: SboxImpl,
}

/// Warmup trials excluded from the returned iterations.
const WARMUP: usize = 8;

impl SboxKernel {
    /// The leaky direct-lookup variant.
    pub fn table_lookup() -> SboxKernel {
        SboxKernel { imp: SboxImpl::TableLookup }
    }

    /// The constant-time scan variant.
    pub fn constant_time_scan() -> SboxKernel {
        SboxKernel { imp: SboxImpl::ConstantTimeScan }
    }

    /// Which implementation this is.
    pub fn implementation(&self) -> SboxImpl {
        self.imp
    }

    fn source(&self) -> String {
        let body = match self.imp {
            SboxImpl::TableLookup => TABLE_LOOKUP_BODY,
            SboxImpl::ConstantTimeScan => CT_SCAN_BODY,
        };
        format!("{DRIVER}\nsub_byte:\n{body}\n")
    }

    /// Runs `trials` random byte substitutions; labels are the cache line
    /// (`index / 64`) of each secret index. Outputs are checked against
    /// the substitution table.
    ///
    /// # Errors
    ///
    /// Propagates assembler and simulator errors; returns
    /// `functional_ok = false` on reference mismatch.
    pub fn run(
        &self,
        config: CoreConfig,
        trials: usize,
        seed: u64,
        trace: TraceConfig,
    ) -> Result<(RunResult, bool), ModexpError> {
        let program = assemble(&self.source())?;
        let mut rng = StdRng::seed_from_u64(seed);
        // A fixed public substitution table (any permutation works).
        let table: Vec<u8> = {
            let mut t: Vec<u8> = (0..=255).collect();
            for i in (1..256).rev() {
                t.swap(i, rng.gen_range(0..=i));
            }
            t
        };
        let total = WARMUP + trials;
        let mut words = vec![total as u64];
        let mut expected = Vec::with_capacity(total);
        for _ in 0..total {
            let idx: u8 = rng.gen();
            words.push(idx as u64);
            words.push((idx / 64) as u64); // label = cache line touched
            expected.push(table[idx as usize] as u64);
        }
        let mut machine = Machine::with_trace_config(config, &program, trace);
        machine.write_mem(program.symbol_addr("sbox"), &table);
        machine.push_inputs(words);
        let mut result = machine.run(500_000 + total as u64 * 60_000)?;
        result.iterations.drain(..WARMUP);
        let outputs = machine.take_outputs();
        Ok((result, outputs == expected))
    }
}

const DRIVER: &str = r#"
.data
.align 6
sbox: .zero 256
.text
_start:
    csrw 0x8c0, zero
    la   s2, sbox
    csrr s0, 0x8c8          # trials
sb_loop:
    beqz s0, sb_done
    csrr s1, 0x8c8          # secret index
    csrr s3, 0x8c8          # label (cache line of the index)
    csrw 0x8c2, s3          # ITER_START
    mv   a0, s1
    call sub_byte
    csrw 0x8c3, zero        # ITER_END
    csrw 0x8c9, a0
    addi s0, s0, -1
    j    sb_loop
sb_done:
    csrw 0x8c1, zero
    ecall
"#;

/// Direct indexing: one load whose address is the secret.
const TABLE_LOOKUP_BODY: &str = r#"
    add  t0, s2, a0
    lbu  a0, 0(t0)
    ret
"#;

/// Constant-time scan: read all 256 bytes, mask-select the match.
const CT_SCAN_BODY: &str = r#"
    li   t0, 0              # i
    li   t1, 0              # acc
ct_loop:
    add  t2, s2, t0
    lbu  t3, 0(t2)          # table[i], every i
    xor  t4, t0, a0         # eq mask via is_zero
    not  t5, t4
    addi t6, t4, -1
    and  t5, t5, t6
    srai t5, t5, 63
    and  t3, t3, t5
    or   t1, t1, t3
    addi t0, t0, 1
    slti t2, t0, 256
    bnez t2, ct_loop
    mv   a0, t1
    ret
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_sim::UnitId;

    #[test]
    fn both_variants_functionally_correct() {
        for kernel in [SboxKernel::table_lookup(), SboxKernel::constant_time_scan()] {
            let (result, ok) =
                kernel.run(CoreConfig::mega_boom(), 12, 5, TraceConfig::default()).unwrap();
            assert!(ok, "{:?} output mismatch", kernel.implementation());
            assert_eq!(result.iterations.len(), 12);
            for it in &result.iterations {
                assert!(it.label < 4, "labels are cache-line indices");
            }
        }
    }

    #[test]
    fn leaky_variant_touches_distinct_lines_per_class() {
        let (result, ok) = SboxKernel::table_lookup()
            .run(CoreConfig::mega_boom(), 32, 9, TraceConfig::default())
            .unwrap();
        assert!(ok);
        // The load addresses inside each window must differ by class.
        use std::collections::BTreeMap;
        let mut per_class: BTreeMap<u64, std::collections::BTreeSet<u64>> = BTreeMap::new();
        for it in &result.iterations {
            let lines: std::collections::BTreeSet<u64> =
                it.unit(UnitId::LqAddr).features.iter().map(|a| a >> 6).collect();
            per_class.entry(it.label).or_default().extend(lines);
        }
        assert!(per_class.len() >= 3, "several classes observed");
    }
}
