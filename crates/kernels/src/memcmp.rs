//! OpenSSL `CRYPTO_memcmp` (paper Listing 7) with the dependent control
//! flow of Listing 8 — the `CT-MEM-CMP` case study.
//!
//! Trials are streamed through the input CSR so every trial's working data
//! lands in the *same* fixed buffers (no trial-position addresses leak into
//! the traces). Each trial:
//!
//! 1. stages two 32-byte inputs into `abuf`/`bbuf` (outside the iteration),
//! 2. opens an iteration labeled with the secret class (fully-equal or not),
//! 3. calls `CRYPTO_memcmp` and records the return into a saved register —
//!    the paper's "few instructions that use the return value",
//! 4. closes the iteration, then branches to `equal`/`inequal` exactly as
//!    Listing 8 does.
//!
//! The transient-execution phenomenon the paper reports — a mispredicted
//! loop-exit branch inside `CRYPTO_memcmp` causing a premature speculative
//! return whose partial result transiently steers the Listing-8 branch —
//! happens *inside* the sampled window and shows up in the ROB-PC trace.

use crate::inputs::{pack_words, MemcmpTrial};
use crate::modexp::ModexpError;
use microsampler_isa::asm::assemble;
use microsampler_isa::Program;
use microsampler_sim::{CoreConfig, Machine, RunResult, TraceConfig};

/// Assembly of the CT-MEM-CMP case study.
pub const CT_MEMCMP_SOURCE: &str = r#"
.data
abuf: .zero 32
bbuf: .zero 32
.text
_start:
    csrw 0x8c0, zero        # SCR start
    csrr s0, 0x8c8          # number of trials
trial_loop:
    beqz s0, done
    la   t0, abuf           # stage input a (4 words via the input CSR)
    li   t1, 4
stage_a:
    csrr t2, 0x8c8
    sd   t2, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bgtz t1, stage_a
    la   t0, bbuf           # stage input b
    li   t1, 4
stage_b:
    csrr t2, 0x8c8
    sd   t2, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bgtz t1, stage_b
    csrr s1, 0x8c8          # secret class label
    fence                   # settle stores/fetch so the window start does
    nop                     # not inherit the previous trial's alignment
    nop
    nop
    nop
    nop
    nop
    nop
    nop

    csrw 0x8c2, s1          # ITER_START
    la   a0, abuf
    la   a1, bbuf
    li   a2, 32
    call crypto_memcmp
    mv   s2, a0             # the return value lands
    csrw 0x8c3, zero        # ITER_END

    beqz s2, is_eq          # Listing 8: dependent control flow
    call inequal_fn
    j    joined
is_eq:
    call equal_fn
joined:
    csrw 0x8c9, a0          # report the taken path for functional checks
    addi s0, s0, -1
    j    trial_loop
done:
    csrw 0x8c1, zero        # SCR end
    ecall

# Listing 7: OpenSSL constant-time CRYPTO_memcmp.
crypto_memcmp:              # a0=a, a1=b, a2=len
    li   t0, 0
    beqz a2, cm_done
cm_loop:
    lbu  t1, 0(a0)
    lbu  t2, 0(a1)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    xor  t1, t1, t2
    or   t0, t0, t1
    bgtz a2, cm_loop        # the mispredict-prone loop-exit branch
cm_done:
    mv   a0, t0
    ret

equal_fn:
    li   a0, 0
    ret
inequal_fn:
    li   a0, 1
    ret
"#;

/// The CT-MEM-CMP kernel.
#[derive(Clone, Debug, Default)]
pub struct MemcmpKernel;

impl MemcmpKernel {
    /// Assembles the kernel.
    ///
    /// # Errors
    ///
    /// Returns the assembler error on an internal source bug.
    pub fn program(&self) -> Result<Program, ModexpError> {
        Ok(assemble(CT_MEMCMP_SOURCE)?)
    }

    /// Runs `trials` on `config`. Each trial becomes one labeled iteration.
    ///
    /// # Errors
    ///
    /// Propagates assembler and simulator errors.
    pub fn run(
        &self,
        config: CoreConfig,
        trials: &[MemcmpTrial],
        trace: TraceConfig,
    ) -> Result<RunResult, ModexpError> {
        self.run_with_outputs(config, trials, trace).map(|(result, _)| result)
    }

    /// Runs and also returns the per-trial taken paths (0 = `equal`,
    /// 1 = `inequal`) for functional verification.
    ///
    /// # Errors
    ///
    /// Propagates assembler and simulator errors.
    pub fn run_with_outputs(
        &self,
        config: CoreConfig,
        trials: &[MemcmpTrial],
        trace: TraceConfig,
    ) -> Result<(RunResult, Vec<u64>), ModexpError> {
        let program = self.program()?;
        let mut machine = Machine::with_trace_config(config, &program, trace);
        let mut words = vec![trials.len() as u64];
        for t in trials {
            words.extend(pack_words(&t.a));
            words.extend(pack_words(&t.b));
            words.push(t.label);
        }
        machine.push_inputs(words);
        let result = machine.run(1_000_000 + trials.len() as u64 * 40_000)?;
        let outputs = machine.take_outputs();
        Ok((result, outputs))
    }

    /// Reference: 0 when the buffers are equal, nonzero otherwise (the
    /// OR-fold of XORed bytes, like the assembly).
    pub fn reference(&self, t: &MemcmpTrial) -> u64 {
        let fold = t.a.iter().zip(&t.b).fold(0u8, |acc, (x, y)| acc | (x ^ y));
        (fold != 0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::memcmp_trials;
    use microsampler_sim::UnitId;

    #[test]
    fn source_assembles() {
        MemcmpKernel.program().unwrap();
    }

    #[test]
    fn paths_match_reference() {
        let trials = memcmp_trials(12, 3);
        let (result, outputs) = MemcmpKernel
            .run_with_outputs(CoreConfig::mega_boom(), &trials, TraceConfig::default())
            .unwrap();
        assert_eq!(outputs.len(), trials.len());
        for (t, &path) in trials.iter().zip(&outputs) {
            assert_eq!(path, MemcmpKernel.reference(t), "trial {t:?}");
        }
        assert_eq!(result.iterations.len(), trials.len());
        for (t, iter) in trials.iter().zip(&result.iterations) {
            assert_eq!(iter.label, t.label);
        }
    }

    #[test]
    fn transient_double_calls_visible_in_rob() {
        // Over enough trials, at least some iterations must show the
        // equal/inequal function PCs inside the *memcmp* window — i.e.
        // speculative fetch reached the dependent calls while the loop was
        // still running or immediately around its return.
        let trials = memcmp_trials(32, 11);
        let p = MemcmpKernel.program().unwrap();
        let equal_pc = p.symbol_addr("equal_fn");
        let inequal_pc = p.symbol_addr("inequal_fn");
        let result =
            MemcmpKernel.run(CoreConfig::mega_boom(), &trials, TraceConfig::default()).unwrap();
        let windows_with_calls = result
            .iterations
            .iter()
            .filter(|it| {
                let f = &it.unit(UnitId::RobPc).features;
                f.contains(&equal_pc) || f.contains(&inequal_pc)
            })
            .count();
        assert!(
            windows_with_calls > 0,
            "no iteration window ever contained the dependent call PCs"
        );
    }
}
