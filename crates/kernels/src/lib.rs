//! Constant-time kernels under test (the paper's case-study workloads).
//!
//! Every kernel is a real RV64 assembly program assembled by
//! [`microsampler_isa::asm`] and run on the [`microsampler_sim`] core. The
//! paper's assembly listings are transcribed directly:
//!
//! * [`modexp`] — square-and-multiply modular exponentiation in five
//!   flavors: the naive branchy version (Listing 1), the register-level
//!   constant-time `cmov` version (Listing 2), the libgcrypt-style
//!   conditional copy with the compiler's preload artifact (`ME-V1-CV`,
//!   Listings 3/4), the branchless dst/dummy select (`ME-V1-MV`,
//!   Listing 5), and the BearSSL byte-wise conditional copy (`ME-V2-Safe`,
//!   Listing 6).
//! * [`memcmp`] — OpenSSL's `CRYPTO_memcmp` (Listing 7) with the dependent
//!   control flow of Listing 8 (the paper's previously-unreported
//!   transient-execution finding).
//! * [`openssl`] — the 27 other constant-time primitives of Table V
//!   (`constant_time_eq/select/ge/lt/cond_swap/lookup/is_zero` families).
//! * [`sbox`] — an extension case study: table-based byte substitution,
//!   leaky direct indexing vs a constant-time full-table scan.
//! * [`inputs`] — deterministic random key/input generation.
//! * [`secrets`] — per-kernel [`secrets::SecretSpec`] taint declarations
//!   consumed by the `microsampler-ct` static analyzer.
//! * [`fixtures`] — seeded-leaky negative controls, one per static
//!   violation class.
//!
//! Each kernel pairs its assembly with a Rust reference model; functional
//! tests run both and require exact agreement.

pub mod fixtures;
pub mod inputs;
pub mod memcmp;
pub mod modexp;
pub mod openssl;
pub mod sbox;
pub mod secrets;
