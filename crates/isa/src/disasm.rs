use crate::inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, StoreOp};

fn alu_name(op: AluOp, imm: bool) -> &'static str {
    match (op, imm) {
        (AluOp::Add, false) => "add",
        (AluOp::Add, true) => "addi",
        (AluOp::Sub, _) => "sub",
        (AluOp::Sll, false) => "sll",
        (AluOp::Sll, true) => "slli",
        (AluOp::Slt, false) => "slt",
        (AluOp::Slt, true) => "slti",
        (AluOp::Sltu, false) => "sltu",
        (AluOp::Sltu, true) => "sltiu",
        (AluOp::Xor, false) => "xor",
        (AluOp::Xor, true) => "xori",
        (AluOp::Srl, false) => "srl",
        (AluOp::Srl, true) => "srli",
        (AluOp::Sra, false) => "sra",
        (AluOp::Sra, true) => "srai",
        (AluOp::Or, false) => "or",
        (AluOp::Or, true) => "ori",
        (AluOp::And, false) => "and",
        (AluOp::And, true) => "andi",
        (AluOp::AddW, false) => "addw",
        (AluOp::AddW, true) => "addiw",
        (AluOp::SubW, _) => "subw",
        (AluOp::SllW, false) => "sllw",
        (AluOp::SllW, true) => "slliw",
        (AluOp::SrlW, false) => "srlw",
        (AluOp::SrlW, true) => "srliw",
        (AluOp::SraW, false) => "sraw",
        (AluOp::SraW, true) => "sraiw",
    }
}

fn muldiv_name(op: MulDivOp) -> &'static str {
    match op {
        MulDivOp::Mul => "mul",
        MulDivOp::Mulh => "mulh",
        MulDivOp::Mulhsu => "mulhsu",
        MulDivOp::Mulhu => "mulhu",
        MulDivOp::Div => "div",
        MulDivOp::Divu => "divu",
        MulDivOp::Rem => "rem",
        MulDivOp::Remu => "remu",
        MulDivOp::MulW => "mulw",
        MulDivOp::DivW => "divw",
        MulDivOp::DivuW => "divuw",
        MulDivOp::RemW => "remw",
        MulDivOp::RemuW => "remuw",
    }
}

/// Renders an instruction as canonical assembly text.
///
/// PC-relative targets are printed as signed byte offsets (`jal ra, +16`),
/// since the disassembler has no symbol table.
///
/// # Example
///
/// ```
/// use microsampler_isa::{disassemble, decode};
/// assert_eq!(disassemble(&decode(0x0015_0513)?), "addi a0, a0, 1");
/// # Ok::<(), microsampler_isa::DecodeError>(())
/// ```
pub fn disassemble(inst: &Inst) -> String {
    match *inst {
        Inst::Lui { rd, imm } => format!("lui {rd}, {:#x}", (imm >> 12) & 0xFFFFF),
        Inst::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", (imm >> 12) & 0xFFFFF),
        Inst::Jal { rd, offset } => format!("jal {rd}, {offset:+}"),
        Inst::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        Inst::Branch { op, rs1, rs2, offset } => {
            let name = match op {
                BranchOp::Beq => "beq",
                BranchOp::Bne => "bne",
                BranchOp::Blt => "blt",
                BranchOp::Bge => "bge",
                BranchOp::Bltu => "bltu",
                BranchOp::Bgeu => "bgeu",
            };
            format!("{name} {rs1}, {rs2}, {offset:+}")
        }
        Inst::Load { op, rd, rs1, offset } => {
            let name = match op {
                LoadOp::Lb => "lb",
                LoadOp::Lh => "lh",
                LoadOp::Lw => "lw",
                LoadOp::Ld => "ld",
                LoadOp::Lbu => "lbu",
                LoadOp::Lhu => "lhu",
                LoadOp::Lwu => "lwu",
            };
            format!("{name} {rd}, {offset}({rs1})")
        }
        Inst::Store { op, rs1, rs2, offset } => {
            let name = match op {
                StoreOp::Sb => "sb",
                StoreOp::Sh => "sh",
                StoreOp::Sw => "sw",
                StoreOp::Sd => "sd",
            };
            format!("{name} {rs2}, {offset}({rs1})")
        }
        Inst::OpImm { op, rd, rs1, imm } => format!("{} {rd}, {rs1}, {imm}", alu_name(op, true)),
        Inst::Op { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", alu_name(op, false)),
        Inst::MulDiv { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", muldiv_name(op)),
        Inst::Csr { op, rd, rs1, csr } => {
            let name = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            format!("{name} {rd}, {csr:#x}, {rs1}")
        }
        Inst::Ecall => "ecall".to_owned(),
        Inst::Ebreak => "ebreak".to_owned(),
        Inst::Fence => "fence".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn renders_common_forms() {
        assert_eq!(
            disassemble(&Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::new(10),
                rs1: Reg::new(10),
                imm: 1
            }),
            "addi a0, a0, 1"
        );
        assert_eq!(
            disassemble(&Inst::Store {
                op: StoreOp::Sd,
                rs1: Reg::SP,
                rs2: Reg::new(11),
                offset: 16
            }),
            "sd a1, 16(sp)"
        );
        assert_eq!(disassemble(&Inst::Jal { rd: Reg::ZERO, offset: -8 }), "jal zero, -8");
        assert_eq!(disassemble(&Inst::Ecall), "ecall");
    }

    #[test]
    fn never_empty() {
        assert!(!disassemble(&Inst::Fence).is_empty());
        assert!(!disassemble(&Inst::NOP).is_empty());
    }
}
