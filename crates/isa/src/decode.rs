use crate::inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, StoreOp};
use crate::Reg;
use std::fmt;

/// Error returned by [`decode`] for words that are not valid instructions in
/// the supported RV64IM subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode machine word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn sext(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value as i64) << shift) >> shift
}

/// Decodes a 32-bit machine word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid encoding of any
/// instruction in the supported subset.
///
/// # Example
///
/// ```
/// use microsampler_isa::{decode, Inst, Reg, AluOp};
/// let inst = decode(0x0015_0513)?; // addi a0, a0, 1
/// assert_eq!(inst, Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::new(10), imm: 1 });
/// # Ok::<(), microsampler_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x7F;
    let rd = Reg::new(((word >> 7) & 0x1F) as u8);
    let funct3 = (word >> 12) & 0x7;
    let rs1 = Reg::new(((word >> 15) & 0x1F) as u8);
    let rs2 = Reg::new(((word >> 20) & 0x1F) as u8);
    let funct7 = (word >> 25) & 0x7F;
    let err = Err(DecodeError { word });

    let inst = match opcode {
        0b0110111 => Inst::Lui { rd, imm: sext(word & 0xFFFF_F000, 32) },
        0b0010111 => Inst::Auipc { rd, imm: sext(word & 0xFFFF_F000, 32) },
        0b1101111 => {
            let imm = ((word >> 31) & 1) << 20
                | ((word >> 21) & 0x3FF) << 1
                | ((word >> 20) & 1) << 11
                | ((word >> 12) & 0xFF) << 12;
            Inst::Jal { rd, offset: sext(imm, 21) }
        }
        0b1100111 => {
            if funct3 != 0 {
                return err;
            }
            Inst::Jalr { rd, rs1, offset: sext(word >> 20, 12) }
        }
        0b1100011 => {
            let op = match funct3 {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return err,
            };
            let imm = ((word >> 31) & 1) << 12
                | ((word >> 7) & 1) << 11
                | ((word >> 25) & 0x3F) << 5
                | ((word >> 8) & 0xF) << 1;
            Inst::Branch { op, rs1, rs2, offset: sext(imm, 13) }
        }
        0b0000011 => {
            let op = match funct3 {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                _ => return err,
            };
            Inst::Load { op, rd, rs1, offset: sext(word >> 20, 12) }
        }
        0b0100011 => {
            let op = match funct3 {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                _ => return err,
            };
            let imm = ((word >> 25) & 0x7F) << 5 | ((word >> 7) & 0x1F);
            Inst::Store { op, rs1, rs2, offset: sext(imm, 12) }
        }
        0b0010011 => {
            let imm = sext(word >> 20, 12);
            let op = match funct3 {
                0b000 => AluOp::Add,
                0b001 if funct7 & 0x7E == 0 => {
                    return Ok(Inst::OpImm {
                        op: AluOp::Sll,
                        rd,
                        rs1,
                        imm: ((word >> 20) & 0x3F) as i64,
                    })
                }
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b101 => {
                    let shamt = ((word >> 20) & 0x3F) as i64;
                    let op = match funct7 & 0x7E {
                        0b0000000 => AluOp::Srl,
                        0b0100000 => AluOp::Sra,
                        _ => return err,
                    };
                    return Ok(Inst::OpImm { op, rd, rs1, imm: shamt });
                }
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                _ => return err,
            };
            Inst::OpImm { op, rd, rs1, imm }
        }
        0b0011011 => match funct3 {
            0b000 => Inst::OpImm { op: AluOp::AddW, rd, rs1, imm: sext(word >> 20, 12) },
            0b001 if funct7 == 0 => {
                Inst::OpImm { op: AluOp::SllW, rd, rs1, imm: rs2.index() as i64 }
            }
            0b101 => {
                let shamt = rs2.index() as i64;
                match funct7 {
                    0b0000000 => Inst::OpImm { op: AluOp::SrlW, rd, rs1, imm: shamt },
                    0b0100000 => Inst::OpImm { op: AluOp::SraW, rd, rs1, imm: shamt },
                    _ => return err,
                }
            }
            _ => return err,
        },
        0b0110011 => {
            if funct7 == 0b0000001 {
                let op = match funct3 {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    0b111 => MulDivOp::Remu,
                    _ => unreachable!(),
                };
                Inst::MulDiv { op, rd, rs1, rs2 }
            } else {
                let op = match (funct3, funct7) {
                    (0b000, 0b0000000) => AluOp::Add,
                    (0b000, 0b0100000) => AluOp::Sub,
                    (0b001, 0b0000000) => AluOp::Sll,
                    (0b010, 0b0000000) => AluOp::Slt,
                    (0b011, 0b0000000) => AluOp::Sltu,
                    (0b100, 0b0000000) => AluOp::Xor,
                    (0b101, 0b0000000) => AluOp::Srl,
                    (0b101, 0b0100000) => AluOp::Sra,
                    (0b110, 0b0000000) => AluOp::Or,
                    (0b111, 0b0000000) => AluOp::And,
                    _ => return err,
                };
                Inst::Op { op, rd, rs1, rs2 }
            }
        }
        0b0111011 => {
            if funct7 == 0b0000001 {
                let op = match funct3 {
                    0b000 => MulDivOp::MulW,
                    0b100 => MulDivOp::DivW,
                    0b101 => MulDivOp::DivuW,
                    0b110 => MulDivOp::RemW,
                    0b111 => MulDivOp::RemuW,
                    _ => return err,
                };
                Inst::MulDiv { op, rd, rs1, rs2 }
            } else {
                let op = match (funct3, funct7) {
                    (0b000, 0b0000000) => AluOp::AddW,
                    (0b000, 0b0100000) => AluOp::SubW,
                    (0b001, 0b0000000) => AluOp::SllW,
                    (0b101, 0b0000000) => AluOp::SrlW,
                    (0b101, 0b0100000) => AluOp::SraW,
                    _ => return err,
                };
                Inst::Op { op, rd, rs1, rs2 }
            }
        }
        0b1110011 => match funct3 {
            0b000 => match word >> 20 {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return err,
            },
            0b001 => Inst::Csr { op: CsrOp::Rw, rd, rs1, csr: (word >> 20) as u16 },
            0b010 => Inst::Csr { op: CsrOp::Rs, rd, rs1, csr: (word >> 20) as u16 },
            0b011 => Inst::Csr { op: CsrOp::Rc, rd, rs1, csr: (word >> 20) as u16 },
            _ => return err,
        },
        0b0001111 => Inst::Fence,
        _ => return err,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
    }

    #[test]
    fn decodes_known_words() {
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
        assert_eq!(
            decode(0x0015_0513).unwrap(),
            Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::new(10), imm: 1 }
        );
    }

    #[test]
    fn negative_jal_roundtrip() {
        let i = Inst::Jal { rd: Reg::ZERO, offset: -1048576 };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn shift_roundtrip() {
        for imm in [0i64, 1, 31, 32, 63] {
            for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
                let i = Inst::OpImm { op, rd: Reg::new(3), rs1: Reg::new(4), imm };
                assert_eq!(decode(encode(&i)).unwrap(), i, "{op:?} {imm}");
            }
        }
        for imm in [0i64, 1, 31] {
            for op in [AluOp::SllW, AluOp::SrlW, AluOp::SraW] {
                let i = Inst::OpImm { op, rd: Reg::new(3), rs1: Reg::new(4), imm };
                assert_eq!(decode(encode(&i)).unwrap(), i, "{op:?} {imm}");
            }
        }
    }

    #[test]
    fn csr_roundtrip() {
        for op in [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc] {
            let i = Inst::Csr { op, rd: Reg::new(1), rs1: Reg::new(2), csr: 0x8C2 };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn error_display_mentions_word() {
        let e = decode(0xFFFF_FFFF).unwrap_err();
        assert!(e.to_string().contains("0xffffffff"));
    }
}
