use std::collections::BTreeMap;

/// Default virtual address where `.text` is loaded.
pub const TEXT_BASE: u64 = 0x8000_0000;
/// Default virtual address where `.data` is loaded (a separate page group).
pub const DATA_BASE: u64 = 0x8010_0000;
/// Default initial stack pointer (grows down, own page group).
pub const STACK_TOP: u64 = 0x8080_0000;

/// Which section a symbol or chunk of bytes belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Section {
    /// Executable code.
    Text,
    /// Initialized data.
    Data,
}

/// A named address produced by a label in the assembly source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Label name as written in the source.
    pub name: String,
    /// Absolute virtual address.
    pub addr: u64,
    /// Section the label was defined in.
    pub section: Section,
}

/// A loadable program image: text and data bytes plus a symbol table.
///
/// Produced by [`crate::asm::assemble`]; consumed by the simulator's loader.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Machine code, loaded at [`Program::text_base`].
    pub text: Vec<u8>,
    /// Initialized data, loaded at [`Program::data_base`].
    pub data: Vec<u8>,
    /// Text section load address.
    pub text_base: u64,
    /// Data section load address.
    pub data_base: u64,
    /// Entry point (address of the first instruction or of the `_start`
    /// label when one is defined).
    pub entry: u64,
    symbols: BTreeMap<String, Symbol>,
}

impl Program {
    /// Creates an empty program with default load addresses.
    pub fn new() -> Program {
        Program {
            text: Vec::new(),
            data: Vec::new(),
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
            entry: TEXT_BASE,
            symbols: BTreeMap::new(),
        }
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// Address of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is not defined; intended for test and harness
    /// code where a missing symbol is a programming error.
    pub fn symbol_addr(&self, name: &str) -> u64 {
        self.symbols.get(name).unwrap_or_else(|| panic!("symbol `{name}` not defined")).addr
    }

    /// Iterates over all symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = &Symbol> {
        self.symbols.values()
    }

    pub(crate) fn insert_symbol(&mut self, sym: Symbol) -> Result<(), String> {
        if self.symbols.contains_key(&sym.name) {
            return Err(format!("duplicate label `{}`", sym.name));
        }
        self.symbols.insert(sym.name.clone(), sym);
        Ok(())
    }

    /// Number of instructions in the text section.
    pub fn inst_count(&self) -> usize {
        self.text.len() / 4
    }

    /// Decodes the instruction at a text-section virtual address.
    ///
    /// Returns `None` when the address falls outside the text section or is
    /// not 4-byte aligned.
    pub fn inst_at(&self, addr: u64) -> Option<crate::Inst> {
        if addr < self.text_base || !addr.is_multiple_of(4) {
            return None;
        }
        let off = (addr - self.text_base) as usize;
        let bytes = self.text.get(off..off + 4)?;
        crate::decode(u32::from_le_bytes(bytes.try_into().unwrap())).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_symbol_rejected() {
        let mut p = Program::new();
        p.insert_symbol(Symbol { name: "a".into(), addr: 0, section: Section::Text }).unwrap();
        assert!(p
            .insert_symbol(Symbol { name: "a".into(), addr: 4, section: Section::Text })
            .is_err());
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn missing_symbol_panics() {
        Program::new().symbol_addr("nope");
    }

    #[test]
    fn inst_at_bounds() {
        let mut p = Program::new();
        p.text = crate::encode(&crate::Inst::Ecall).to_le_bytes().to_vec();
        assert_eq!(p.inst_at(p.text_base), Some(crate::Inst::Ecall));
        assert_eq!(p.inst_at(p.text_base + 4), None);
        assert_eq!(p.inst_at(p.text_base + 1), None);
        assert_eq!(p.inst_at(0), None);
    }
}
