use std::fmt;
use std::str::FromStr;

/// An architectural integer register, `x0` through `x31`.
///
/// `x0` is hard-wired to zero. The type stores the raw index and knows both
/// numeric (`x10`) and ABI (`a0`) spellings.
///
/// # Example
///
/// ```
/// use microsampler_isa::Reg;
/// let a0: Reg = "a0".parse()?;
/// assert_eq!(a0, Reg::new(10));
/// assert_eq!(a0.to_string(), "a0");
/// # Ok::<(), microsampler_isa::asm::AsmError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// ABI names in index order.
pub(crate) const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl Reg {
    /// The zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return-address register `x1` (`ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2` (`sp`).
    pub const SP: Reg = Reg(2);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ABI name, e.g. `"a0"` for `x10`.
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// All 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({}/x{})", self.abi_name(), self.0)
    }
}

impl FromStr for Reg {
    type Err = crate::asm::AsmError;

    fn from_str(s: &str) -> Result<Reg, Self::Err> {
        if let Some(rest) = s.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                if n < 32 {
                    return Ok(Reg(n));
                }
            }
        }
        if s == "fp" {
            return Ok(Reg(8));
        }
        if let Some(idx) = ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(idx as u8));
        }
        Err(crate::asm::AsmError::new(0, format!("unknown register `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_and_numeric_spellings_agree() {
        for i in 0..32u8 {
            let by_num: Reg = format!("x{i}").parse().unwrap();
            let by_abi: Reg = ABI_NAMES[i as usize].parse().unwrap();
            assert_eq!(by_num, by_abi);
            assert_eq!(by_num.index(), i as usize);
        }
    }

    #[test]
    fn fp_is_s0() {
        let fp: Reg = "fp".parse().unwrap();
        assert_eq!(fp, Reg::new(8));
    }

    #[test]
    fn rejects_bad_names() {
        assert!("x32".parse::<Reg>().is_err());
        assert!("q0".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::RA.is_zero());
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), 32);
    }
}
