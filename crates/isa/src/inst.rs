use crate::Reg;

/// Integer ALU operation (register-register or register-immediate form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    /// 32-bit add, sign-extended result (`addw`/`addiw`).
    AddW,
    /// 32-bit subtract (`subw`). No immediate form exists.
    SubW,
    SllW,
    SrlW,
    SraW,
}

impl AluOp {
    /// Whether an immediate (`OP-IMM`) form of this operation exists.
    pub fn has_imm_form(self) -> bool {
        !matches!(self, AluOp::Sub | AluOp::SubW)
    }
}

/// `M` extension multiply/divide operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    MulW,
    DivW,
    DivuW,
    RemW,
    RemuW,
}

impl MulDivOp {
    /// True for divide/remainder operations (iterative, long-latency unit).
    pub fn is_div(self) -> bool {
        use MulDivOp::*;
        matches!(self, Div | Divu | Rem | Remu | DivW | DivuW | RemW | RemuW)
    }
}

/// Conditional branch comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Load width/signedness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }
}

/// Store width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
    Sd,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// CSR access flavor. Only register forms are modeled (the immediate forms
/// are not needed by the kernels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw` — atomic read/write.
    Rw,
    /// `csrrs` — atomic read and set bits.
    Rs,
    /// `csrrc` — atomic read and clear bits.
    Rc,
}

/// A decoded RV64IM instruction.
///
/// Offsets in branch/jump/load/store variants are byte offsets relative to
/// the instruction's own PC (branches, `jal`) or to `rs1` (loads, stores,
/// `jalr`), exactly as the immediate encodes them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `lui rd, imm` — load upper immediate (`imm` is the already-shifted
    /// 32-bit value, sign-extended to 64 bits).
    Lui { rd: Reg, imm: i64 },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc { rd: Reg, imm: i64 },
    /// `jal rd, offset` — jump and link.
    Jal { rd: Reg, offset: i64 },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i64 },
    /// Conditional branch.
    Branch { op: BranchOp, rs1: Reg, rs2: Reg, offset: i64 },
    /// Memory load.
    Load { op: LoadOp, rd: Reg, rs1: Reg, offset: i64 },
    /// Memory store.
    Store { op: StoreOp, rs1: Reg, rs2: Reg, offset: i64 },
    /// Register-immediate ALU operation.
    OpImm { op: AluOp, rd: Reg, rs1: Reg, imm: i64 },
    /// Register-register ALU operation.
    Op { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `M` extension multiply/divide.
    MulDiv { op: MulDivOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// CSR access (used for MicroSampler trace markers).
    Csr { op: CsrOp, rd: Reg, rs1: Reg, csr: u16 },
    /// Environment call — terminates simulation in this framework.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Memory fence (modeled as a pipeline-ordering no-op).
    Fence,
}

impl Inst {
    /// Canonical no-op (`addi x0, x0, 0`).
    pub const NOP: Inst = Inst::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };

    /// Destination register, if the instruction writes one (writes to `x0`
    /// are reported as `None` — they are architecturally void).
    pub fn rd(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::Csr { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers, in operand order. `x0` sources are included (they
    /// read as zero but still occupy an operand slot).
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Inst::Jalr { rs1, .. } | Inst::Load { rs1, .. } | Inst::OpImm { rs1, .. } => {
                (Some(rs1), None)
            }
            Inst::Csr { rs1, .. } => (Some(rs1), None),
            Inst::Branch { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::Op { rs1, rs2, .. }
            | Inst::MulDiv { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            _ => (None, None),
        }
    }

    /// True for conditional branches.
    pub fn is_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// True for any control-flow transfer (branch, `jal`, `jalr`).
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. })
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// True if this is a call-shaped jump (`jal`/`jalr` linking into `ra`).
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } if *rd == Reg::RA
        )
    }

    /// True if this is a return-shaped jump (`jalr x0, 0(ra)`).
    pub fn is_return(&self) -> bool {
        matches!(
            self,
            Inst::Jalr { rd, rs1, .. } if rd.is_zero() && *rs1 == Reg::RA
        )
    }

    /// Base register and displacement of a memory access (`offset(rs1)`),
    /// for loads and stores only.
    pub fn mem_base(&self) -> Option<(Reg, i64)> {
        match *self {
            Inst::Load { rs1, offset, .. } | Inst::Store { rs1, offset, .. } => Some((rs1, offset)),
            _ => None,
        }
    }

    /// Access size in bytes, for loads and stores only.
    pub fn mem_size(&self) -> Option<u64> {
        match *self {
            Inst::Load { op, .. } => Some(op.size()),
            Inst::Store { op, .. } => Some(op.size()),
            _ => None,
        }
    }

    /// The two registers a conditional branch compares.
    pub fn branch_sources(&self) -> Option<(Reg, Reg)> {
        match *self {
            Inst::Branch { rs1, rs2, .. } => Some((rs1, rs2)),
            _ => None,
        }
    }

    /// If this instruction writes a compile-time constant to its
    /// destination independent of any register state, returns
    /// `(rd, value)`. Covers `lui` and `li`-shaped `addi rd, x0, imm`
    /// (and its `addiw` form). Writes to `x0` return `None`.
    pub fn writes_const(&self) -> Option<(Reg, u64)> {
        let (rd, value) = match *self {
            Inst::Lui { rd, imm } => (rd, imm as u64),
            Inst::OpImm { op: AluOp::Add, rd, rs1, imm } if rs1.is_zero() => (rd, imm as u64),
            Inst::OpImm { op: AluOp::AddW, rd, rs1, imm } if rs1.is_zero() => {
                (rd, imm as i32 as i64 as u64)
            }
            _ => return None,
        };
        (!rd.is_zero()).then_some((rd, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd_of_x0_write_is_none() {
        let i = Inst::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::new(5), imm: 1 };
        assert_eq!(i.rd(), None);
    }

    #[test]
    fn rd_of_normal_write() {
        let i = Inst::Op { op: AluOp::Xor, rd: Reg::new(7), rs1: Reg::new(1), rs2: Reg::new(2) };
        assert_eq!(i.rd(), Some(Reg::new(7)));
    }

    #[test]
    fn call_and_return_shapes() {
        let call = Inst::Jal { rd: Reg::RA, offset: 64 };
        assert!(call.is_call());
        assert!(!call.is_return());
        let ret = Inst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 };
        assert!(ret.is_return());
        assert!(!ret.is_call());
        let plain_j = Inst::Jal { rd: Reg::ZERO, offset: -8 };
        assert!(!plain_j.is_call() && !plain_j.is_return());
    }

    #[test]
    fn store_sources() {
        let s = Inst::Store { op: StoreOp::Sd, rs1: Reg::new(2), rs2: Reg::new(3), offset: 8 };
        assert_eq!(s.sources(), (Some(Reg::new(2)), Some(Reg::new(3))));
        assert_eq!(s.rd(), None);
        assert!(s.is_store());
    }

    #[test]
    fn imm_forms() {
        assert!(AluOp::Add.has_imm_form());
        assert!(!AluOp::Sub.has_imm_form());
        assert!(!AluOp::SubW.has_imm_form());
    }

    #[test]
    fn mem_base_and_size() {
        let ld = Inst::Load { op: LoadOp::Lw, rd: Reg::new(10), rs1: Reg::SP, offset: -16 };
        assert_eq!(ld.mem_base(), Some((Reg::SP, -16)));
        assert_eq!(ld.mem_size(), Some(4));
        let st = Inst::Store { op: StoreOp::Sb, rs1: Reg::new(8), rs2: Reg::new(9), offset: 3 };
        assert_eq!(st.mem_base(), Some((Reg::new(8), 3)));
        assert_eq!(st.mem_size(), Some(1));
        assert_eq!(Inst::NOP.mem_base(), None);
        assert_eq!(Inst::NOP.mem_size(), None);
    }

    #[test]
    fn branch_sources_only_on_branches() {
        let b = Inst::Branch { op: BranchOp::Bltu, rs1: Reg::new(4), rs2: Reg::new(5), offset: 8 };
        assert_eq!(b.branch_sources(), Some((Reg::new(4), Reg::new(5))));
        assert_eq!(Inst::Jal { rd: Reg::ZERO, offset: 8 }.branch_sources(), None);
    }

    #[test]
    fn const_writes() {
        let lui = Inst::Lui { rd: Reg::new(5), imm: 0x12345 << 12 };
        assert_eq!(lui.writes_const(), Some((Reg::new(5), (0x12345u64) << 12)));
        let li = Inst::OpImm { op: AluOp::Add, rd: Reg::new(6), rs1: Reg::ZERO, imm: -7 };
        assert_eq!(li.writes_const(), Some((Reg::new(6), (-7i64) as u64)));
        // addi from a live register is not a constant write.
        let addi = Inst::OpImm { op: AluOp::Add, rd: Reg::new(6), rs1: Reg::new(7), imm: 1 };
        assert_eq!(addi.writes_const(), None);
        // x0 destination is architecturally void.
        assert_eq!(Inst::NOP.writes_const(), None);
    }

    #[test]
    fn div_classification() {
        assert!(MulDivOp::Rem.is_div());
        assert!(MulDivOp::DivuW.is_div());
        assert!(!MulDivOp::Mul.is_div());
        assert!(!MulDivOp::MulW.is_div());
    }
}
