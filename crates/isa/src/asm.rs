//! Two-pass text assembler for the RV64IM subset.
//!
//! Supports labels, the common data directives (`.byte`, `.half`, `.word`,
//! `.dword`, `.zero`, `.align`, `.asciz`), `.equ` constants and the standard
//! pseudo-instructions (`li`, `la`, `mv`, `not`, `neg`, `negw`, `sext.w`,
//! `seqz`, `snez`, `beqz`, `bnez`, `bgtz`, `blez`, `bgez`, `bltz`, `bgt`,
//! `ble`, `bgtu`, `bleu`, `j`, `jr`, `call`, `tail`, `ret`, `nop`, `csrw`,
//! `csrr`).
//!
//! Comments start with `#` or `//`. Sections are `.text` (default) and
//! `.data`; they load at [`crate::program::TEXT_BASE`] and
//! [`crate::program::DATA_BASE`].

use crate::inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, StoreOp};
use crate::program::{Section, Symbol, DATA_BASE, TEXT_BASE};
use crate::{encode, Program, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error with the 1-based source line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 when no line applies).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}

/// An instruction awaiting label resolution.
#[derive(Clone, Debug)]
enum Pending {
    Ready(Inst),
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        target: String,
    },
    Jal {
        rd: Reg,
        target: String,
    },
    /// `auipc` half of `la`; the matching `addi` follows immediately.
    LaHi {
        rd: Reg,
        target: String,
    },
    /// `addi` half of `la`; anchored at own pc minus 4.
    LaLo {
        rd: Reg,
        target: String,
    },
}

struct Assembler<'a> {
    src: &'a str,
    text: Vec<(Pending, u32)>,
    data: Vec<u8>,
    section: Section,
    consts: BTreeMap<String, i64>,
    program: Program,
}

/// Assembles source text into a loadable [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] on syntax errors, unknown mnemonics/registers,
/// out-of-range immediates and undefined or duplicate labels.
///
/// # Example
///
/// ```
/// use microsampler_isa::asm::assemble;
/// let p = assemble(".text\nstart: li a0, 5\n loop: addi a0, a0, -1\n bnez a0, loop\n ecall\n")?;
/// assert_eq!(p.inst_count(), 4);
/// assert_eq!(p.symbol_addr("loop"), p.symbol_addr("start") + 4);
/// # Ok::<(), microsampler_isa::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut asm = Assembler {
        src,
        text: Vec::new(),
        data: Vec::new(),
        section: Section::Text,
        consts: BTreeMap::new(),
        program: Program::new(),
    };
    asm.first_pass()?;
    asm.second_pass()
}

impl<'a> Assembler<'a> {
    fn text_pc(&self) -> u64 {
        TEXT_BASE + self.text.len() as u64 * 4
    }

    fn data_pc(&self) -> u64 {
        DATA_BASE + self.data.len() as u64
    }

    fn first_pass(&mut self) -> Result<(), AsmError> {
        for (idx, raw) in self.src.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let mut line = raw;
            if let Some(pos) = line.find('#') {
                line = &line[..pos];
            }
            if let Some(pos) = line.find("//") {
                line = &line[..pos];
            }
            let mut line = line.trim();
            // Labels (possibly several) at line start.
            while let Some(colon) = line.find(':') {
                let (label, rest) = line.split_at(colon);
                let label = label.trim();
                if label.is_empty() || !is_ident(label) {
                    break;
                }
                let (addr, section) = match self.section {
                    Section::Text => (self.text_pc(), Section::Text),
                    Section::Data => (self.data_pc(), Section::Data),
                };
                self.program
                    .insert_symbol(Symbol { name: label.to_owned(), addr, section })
                    .map_err(|m| AsmError::new(line_no, m))?;
                line = rest[1..].trim();
            }
            if line.is_empty() {
                continue;
            }
            if let Some(directive) = line.strip_prefix('.') {
                self.directive(directive, line_no)?;
            } else {
                self.instruction(line, line_no)?;
            }
        }
        Ok(())
    }

    fn directive(&mut self, line: &str, line_no: u32) -> Result<(), AsmError> {
        let (name, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        match name {
            "text" => self.section = Section::Text,
            "data" => self.section = Section::Data,
            "global" | "globl" | "option" | "p2align" | "size" | "type" | "section" => {}
            "equ" | "set" => {
                let (name, value) = rest
                    .split_once(',')
                    .ok_or_else(|| AsmError::new(line_no, ".equ requires `name, value`"))?;
                let value = self.parse_imm(value.trim(), line_no)?;
                self.consts.insert(name.trim().to_owned(), value);
            }
            "align" => {
                let n: u32 = rest
                    .parse()
                    .map_err(|_| AsmError::new(line_no, ".align requires an integer"))?;
                let align = 1usize << n;
                match self.section {
                    Section::Text => {
                        while !(self.text.len() * 4).is_multiple_of(align) {
                            self.text.push((Pending::Ready(Inst::NOP), line_no));
                        }
                    }
                    Section::Data => {
                        while !self.data.len().is_multiple_of(align) {
                            self.data.push(0);
                        }
                    }
                }
            }
            "byte" | "half" | "word" | "dword" => {
                if self.section != Section::Data {
                    return Err(AsmError::new(line_no, format!(".{name} only allowed in .data")));
                }
                let width = match name {
                    "byte" => 1,
                    "half" => 2,
                    "word" => 4,
                    _ => 8,
                };
                for field in rest.split(',') {
                    let v = self.parse_imm(field.trim(), line_no)?;
                    self.data.extend_from_slice(&v.to_le_bytes()[..width]);
                }
            }
            "zero" | "space" | "skip" => {
                if self.section != Section::Data {
                    return Err(AsmError::new(line_no, ".zero only allowed in .data"));
                }
                let n = self.parse_imm(rest, line_no)?;
                if n < 0 {
                    return Err(AsmError::new(line_no, ".zero size must be non-negative"));
                }
                self.data.extend(std::iter::repeat_n(0u8, n as usize));
            }
            "asciz" | "ascii" => {
                if self.section != Section::Data {
                    return Err(AsmError::new(line_no, format!(".{name} only allowed in .data")));
                }
                let s = rest.trim();
                if !(s.starts_with('"') && s.ends_with('"') && s.len() >= 2) {
                    return Err(AsmError::new(line_no, "expected a quoted string"));
                }
                self.data.extend_from_slice(&s.as_bytes()[1..s.len() - 1]);
                if name == "asciz" {
                    self.data.push(0);
                }
            }
            _ => return Err(AsmError::new(line_no, format!("unknown directive `.{name}`"))),
        }
        Ok(())
    }

    fn instruction(&mut self, line: &str, line_no: u32) -> Result<(), AsmError> {
        if self.section != Section::Text {
            return Err(AsmError::new(line_no, "instructions only allowed in .text"));
        }
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> =
            if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
        let pendings = self.lower(mnemonic, &ops, line_no)?;
        for p in pendings {
            self.text.push((p, line_no));
        }
        Ok(())
    }

    fn reg(&self, s: &str, line_no: u32) -> Result<Reg, AsmError> {
        s.parse::<Reg>().map_err(|e| AsmError::new(line_no, e.message))
    }

    fn parse_imm(&self, s: &str, line_no: u32) -> Result<i64, AsmError> {
        parse_int(s)
            .or_else(|| self.consts.get(s).copied())
            .ok_or_else(|| AsmError::new(line_no, format!("cannot parse immediate `{s}`")))
    }

    /// Parses `offset(reg)` with an optional offset.
    fn mem_operand(&self, s: &str, line_no: u32) -> Result<(i64, Reg), AsmError> {
        let open = s
            .find('(')
            .ok_or_else(|| AsmError::new(line_no, format!("expected `offset(reg)`, got `{s}`")))?;
        if !s.ends_with(')') {
            return Err(AsmError::new(line_no, format!("expected `offset(reg)`, got `{s}`")));
        }
        let off_str = s[..open].trim();
        let off = if off_str.is_empty() { 0 } else { self.parse_imm(off_str, line_no)? };
        let reg = self.reg(s[open + 1..s.len() - 1].trim(), line_no)?;
        Ok((off, reg))
    }

    fn expect_ops(
        &self,
        ops: &[&str],
        n: usize,
        mnemonic: &str,
        line_no: u32,
    ) -> Result<(), AsmError> {
        if ops.len() != n {
            return Err(AsmError::new(
                line_no,
                format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
            ));
        }
        Ok(())
    }

    fn lower(&mut self, m: &str, ops: &[&str], ln: u32) -> Result<Vec<Pending>, AsmError> {
        use Pending::Ready;
        let one = |i: Inst| Ok(vec![Ready(i)]);

        // Register-register ALU / muldiv ops.
        if let Some(op) = alu_rr(m) {
            self.expect_ops(ops, 3, m, ln)?;
            let (rd, rs1, rs2) =
                (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?, self.reg(ops[2], ln)?);
            return one(Inst::Op { op, rd, rs1, rs2 });
        }
        if let Some(op) = muldiv(m) {
            self.expect_ops(ops, 3, m, ln)?;
            let (rd, rs1, rs2) =
                (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?, self.reg(ops[2], ln)?);
            return one(Inst::MulDiv { op, rd, rs1, rs2 });
        }
        if let Some(op) = alu_ri(m) {
            self.expect_ops(ops, 3, m, ln)?;
            let (rd, rs1) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
            let imm = self.parse_imm(ops[2], ln)?;
            return one(Inst::OpImm { op, rd, rs1, imm });
        }
        if let Some(op) = load(m) {
            self.expect_ops(ops, 2, m, ln)?;
            let rd = self.reg(ops[0], ln)?;
            let (offset, rs1) = self.mem_operand(ops[1], ln)?;
            return one(Inst::Load { op, rd, rs1, offset });
        }
        if let Some(op) = store(m) {
            self.expect_ops(ops, 2, m, ln)?;
            let rs2 = self.reg(ops[0], ln)?;
            let (offset, rs1) = self.mem_operand(ops[1], ln)?;
            return one(Inst::Store { op, rs1, rs2, offset });
        }
        if let Some(op) = branch(m) {
            self.expect_ops(ops, 3, m, ln)?;
            let (rs1, rs2) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
            return Ok(vec![Pending::Branch { op, rs1, rs2, target: ops[2].to_owned() }]);
        }
        // Swapped-operand branch pseudos.
        if let Some(op) = match m {
            "bgt" => Some(BranchOp::Blt),
            "ble" => Some(BranchOp::Bge),
            "bgtu" => Some(BranchOp::Bltu),
            "bleu" => Some(BranchOp::Bgeu),
            _ => None,
        } {
            self.expect_ops(ops, 3, m, ln)?;
            let (rs1, rs2) = (self.reg(ops[1], ln)?, self.reg(ops[0], ln)?);
            return Ok(vec![Pending::Branch { op, rs1, rs2, target: ops[2].to_owned() }]);
        }
        // Zero-comparison branch pseudos.
        if let Some((op, zero_first)) = match m {
            "beqz" => Some((BranchOp::Beq, false)),
            "bnez" => Some((BranchOp::Bne, false)),
            "bltz" => Some((BranchOp::Blt, false)),
            "bgez" => Some((BranchOp::Bge, false)),
            "bgtz" => Some((BranchOp::Blt, true)),
            "blez" => Some((BranchOp::Bge, true)),
            _ => None,
        } {
            self.expect_ops(ops, 2, m, ln)?;
            let rs = self.reg(ops[0], ln)?;
            let (rs1, rs2) = if zero_first { (Reg::ZERO, rs) } else { (rs, Reg::ZERO) };
            return Ok(vec![Pending::Branch { op, rs1, rs2, target: ops[1].to_owned() }]);
        }

        match m {
            "lui" => {
                self.expect_ops(ops, 2, m, ln)?;
                let rd = self.reg(ops[0], ln)?;
                let v = self.parse_imm(ops[1], ln)?;
                if !(0..=0xFFFFF).contains(&v) {
                    return Err(AsmError::new(ln, format!("lui immediate {v} out of range")));
                }
                one(Inst::Lui { rd, imm: ((v << 12) as i32) as i64 })
            }
            "auipc" => {
                self.expect_ops(ops, 2, m, ln)?;
                let rd = self.reg(ops[0], ln)?;
                let v = self.parse_imm(ops[1], ln)?;
                one(Inst::Auipc { rd, imm: (v << 12) as i32 as i64 })
            }
            "jal" => match ops.len() {
                1 => Ok(vec![Pending::Jal { rd: Reg::RA, target: ops[0].to_owned() }]),
                2 => {
                    let rd = self.reg(ops[0], ln)?;
                    Ok(vec![Pending::Jal { rd, target: ops[1].to_owned() }])
                }
                _ => Err(AsmError::new(ln, "`jal` expects 1 or 2 operands")),
            },
            "jalr" => match ops.len() {
                1 => {
                    let rs1 = self.reg(ops[0], ln)?;
                    one(Inst::Jalr { rd: Reg::RA, rs1, offset: 0 })
                }
                2 => {
                    let rd = self.reg(ops[0], ln)?;
                    let (offset, rs1) = self.mem_operand(ops[1], ln)?;
                    one(Inst::Jalr { rd, rs1, offset })
                }
                _ => Err(AsmError::new(ln, "`jalr` expects 1 or 2 operands")),
            },
            "j" | "tail" => {
                self.expect_ops(ops, 1, m, ln)?;
                Ok(vec![Pending::Jal { rd: Reg::ZERO, target: ops[0].to_owned() }])
            }
            "call" => {
                self.expect_ops(ops, 1, m, ln)?;
                Ok(vec![Pending::Jal { rd: Reg::RA, target: ops[0].to_owned() }])
            }
            "jr" => {
                self.expect_ops(ops, 1, m, ln)?;
                let rs1 = self.reg(ops[0], ln)?;
                one(Inst::Jalr { rd: Reg::ZERO, rs1, offset: 0 })
            }
            "ret" => {
                self.expect_ops(ops, 0, m, ln)?;
                one(Inst::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 })
            }
            "nop" => {
                self.expect_ops(ops, 0, m, ln)?;
                one(Inst::NOP)
            }
            "mv" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs1) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::OpImm { op: AluOp::Add, rd, rs1, imm: 0 })
            }
            "not" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs1) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::OpImm { op: AluOp::Xor, rd, rs1, imm: -1 })
            }
            "neg" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs2) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::Op { op: AluOp::Sub, rd, rs1: Reg::ZERO, rs2 })
            }
            "negw" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs2) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::Op { op: AluOp::SubW, rd, rs1: Reg::ZERO, rs2 })
            }
            "sext.w" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs1) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::OpImm { op: AluOp::AddW, rd, rs1, imm: 0 })
            }
            "seqz" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs1) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::OpImm { op: AluOp::Sltu, rd, rs1, imm: 1 })
            }
            "snez" => {
                self.expect_ops(ops, 2, m, ln)?;
                let (rd, rs2) = (self.reg(ops[0], ln)?, self.reg(ops[1], ln)?);
                one(Inst::Op { op: AluOp::Sltu, rd, rs1: Reg::ZERO, rs2 })
            }
            "li" => {
                self.expect_ops(ops, 2, m, ln)?;
                let rd = self.reg(ops[0], ln)?;
                let v = self.parse_imm(ops[1], ln)?;
                Ok(expand_li(rd, v).into_iter().map(Ready).collect())
            }
            "la" => {
                self.expect_ops(ops, 2, m, ln)?;
                let rd = self.reg(ops[0], ln)?;
                Ok(vec![
                    Pending::LaHi { rd, target: ops[1].to_owned() },
                    Pending::LaLo { rd, target: ops[1].to_owned() },
                ])
            }
            "csrw" => {
                self.expect_ops(ops, 2, m, ln)?;
                let csr = self.parse_imm(ops[0], ln)? as u16;
                let rs1 = self.reg(ops[1], ln)?;
                one(Inst::Csr { op: CsrOp::Rw, rd: Reg::ZERO, rs1, csr })
            }
            "csrr" => {
                self.expect_ops(ops, 2, m, ln)?;
                let rd = self.reg(ops[0], ln)?;
                let csr = self.parse_imm(ops[1], ln)? as u16;
                one(Inst::Csr { op: CsrOp::Rs, rd, rs1: Reg::ZERO, csr })
            }
            "csrrw" | "csrrs" | "csrrc" => {
                self.expect_ops(ops, 3, m, ln)?;
                let rd = self.reg(ops[0], ln)?;
                let csr = self.parse_imm(ops[1], ln)? as u16;
                let rs1 = self.reg(ops[2], ln)?;
                let op = match m {
                    "csrrw" => CsrOp::Rw,
                    "csrrs" => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                one(Inst::Csr { op, rd, rs1, csr })
            }
            "ecall" => one(Inst::Ecall),
            "ebreak" => one(Inst::Ebreak),
            "fence" => one(Inst::Fence),
            _ => Err(AsmError::new(ln, format!("unknown mnemonic `{m}`"))),
        }
    }

    fn resolve(&self, target: &str, ln: u32) -> Result<u64, AsmError> {
        self.program
            .symbol(target)
            .map(|s| s.addr)
            .ok_or_else(|| AsmError::new(ln, format!("undefined label `{target}`")))
    }

    fn second_pass(mut self) -> Result<Program, AsmError> {
        let mut words = Vec::with_capacity(self.text.len());
        let pendings = std::mem::take(&mut self.text);
        for (i, (p, ln)) in pendings.iter().enumerate() {
            let pc = TEXT_BASE + i as u64 * 4;
            let inst = match p {
                Pending::Ready(inst) => *inst,
                Pending::Branch { op, rs1, rs2, target } => {
                    let dest = self.resolve(target, *ln)?;
                    let offset = dest as i64 - pc as i64;
                    if !(-4096..=4094).contains(&offset) {
                        return Err(AsmError::new(
                            *ln,
                            format!("branch to `{target}` out of range ({offset} bytes)"),
                        ));
                    }
                    Inst::Branch { op: *op, rs1: *rs1, rs2: *rs2, offset }
                }
                Pending::Jal { rd, target } => {
                    let dest = self.resolve(target, *ln)?;
                    let offset = dest as i64 - pc as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(AsmError::new(
                            *ln,
                            format!("jump to `{target}` out of range ({offset} bytes)"),
                        ));
                    }
                    Inst::Jal { rd: *rd, offset }
                }
                Pending::LaHi { rd, target } => {
                    let dest = self.resolve(target, *ln)?;
                    let delta = dest as i64 - pc as i64;
                    let hi = (delta + 0x800) >> 12 << 12;
                    Inst::Auipc { rd: *rd, imm: hi }
                }
                Pending::LaLo { rd, target } => {
                    let dest = self.resolve(target, *ln)?;
                    let anchor = pc - 4;
                    let delta = dest as i64 - anchor as i64;
                    let hi = (delta + 0x800) >> 12 << 12;
                    Inst::OpImm { op: AluOp::Add, rd: *rd, rs1: *rd, imm: delta - hi }
                }
            };
            words.push(encode(&inst));
        }
        self.program.text = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.program.data = self.data;
        self.program.entry = self.program.symbol("_start").map(|s| s.addr).unwrap_or(TEXT_BASE);
        Ok(self.program)
    }
}

/// Expands `li rd, value` into a minimal concrete sequence.
fn expand_li(rd: Reg, value: i64) -> Vec<Inst> {
    if (-2048..=2047).contains(&value) {
        return vec![Inst::OpImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: value }];
    }
    if value == value as i32 as i64 {
        let hi = ((value + 0x800) >> 12) << 12;
        let lo = value - hi;
        // `hi` may have wrapped to exactly 2^31 for values near i32::MAX; the
        // lui immediate field interprets it modulo 2^32 with sign extension.
        let hi = hi as i32 as i64;
        let mut seq = vec![Inst::Lui { rd, imm: hi }];
        if lo != 0 {
            seq.push(Inst::OpImm { op: AluOp::AddW, rd, rs1: rd, imm: lo });
        }
        return seq;
    }
    // General 64-bit case: materialize the upper half, shift, then OR in the
    // lower bits 12 at a time (11 to keep immediates non-negative).
    let mut seq = expand_li(rd, value >> 32);
    let mut remaining = 32u32;
    let low = value as u32 as u64;
    while remaining > 0 {
        let chunk = remaining.min(11);
        remaining -= chunk;
        seq.push(Inst::OpImm { op: AluOp::Sll, rd, rs1: rd, imm: chunk as i64 });
        let bits = ((low >> remaining) & ((1 << chunk) - 1)) as i64;
        if bits != 0 {
            seq.push(Inst::OpImm { op: AluOp::Or, rd, rs1: rd, imm: bits });
        }
    }
    seq
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let magnitude = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<u64>().ok()?
    };
    if neg {
        Some((magnitude as i64).wrapping_neg())
    } else {
        Some(magnitude as i64)
    }
}

fn alu_rr(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "sll" => AluOp::Sll,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "xor" => AluOp::Xor,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "or" => AluOp::Or,
        "and" => AluOp::And,
        "addw" => AluOp::AddW,
        "subw" => AluOp::SubW,
        "sllw" => AluOp::SllW,
        "srlw" => AluOp::SrlW,
        "sraw" => AluOp::SraW,
        _ => return None,
    })
}

fn alu_ri(m: &str) -> Option<AluOp> {
    Some(match m {
        "addi" => AluOp::Add,
        "slli" => AluOp::Sll,
        "slti" => AluOp::Slt,
        "sltiu" => AluOp::Sltu,
        "xori" => AluOp::Xor,
        "srli" => AluOp::Srl,
        "srai" => AluOp::Sra,
        "ori" => AluOp::Or,
        "andi" => AluOp::And,
        "addiw" => AluOp::AddW,
        "slliw" => AluOp::SllW,
        "srliw" => AluOp::SrlW,
        "sraiw" => AluOp::SraW,
        _ => return None,
    })
}

fn muldiv(m: &str) -> Option<MulDivOp> {
    Some(match m {
        "mul" => MulDivOp::Mul,
        "mulh" => MulDivOp::Mulh,
        "mulhsu" => MulDivOp::Mulhsu,
        "mulhu" => MulDivOp::Mulhu,
        "div" => MulDivOp::Div,
        "divu" => MulDivOp::Divu,
        "rem" => MulDivOp::Rem,
        "remu" => MulDivOp::Remu,
        "mulw" => MulDivOp::MulW,
        "divw" => MulDivOp::DivW,
        "divuw" => MulDivOp::DivuW,
        "remw" => MulDivOp::RemW,
        "remuw" => MulDivOp::RemuW,
        _ => return None,
    })
}

fn load(m: &str) -> Option<LoadOp> {
    Some(match m {
        "lb" => LoadOp::Lb,
        "lh" => LoadOp::Lh,
        "lw" => LoadOp::Lw,
        "ld" => LoadOp::Ld,
        "lbu" => LoadOp::Lbu,
        "lhu" => LoadOp::Lhu,
        "lwu" => LoadOp::Lwu,
        _ => return None,
    })
}

fn store(m: &str) -> Option<StoreOp> {
    Some(match m {
        "sb" => StoreOp::Sb,
        "sh" => StoreOp::Sh,
        "sw" => StoreOp::Sw,
        "sd" => StoreOp::Sd,
        _ => return None,
    })
}

fn branch(m: &str) -> Option<BranchOp> {
    Some(match m {
        "beq" => BranchOp::Beq,
        "bne" => BranchOp::Bne,
        "blt" => BranchOp::Blt,
        "bge" => BranchOp::Bge,
        "bltu" => BranchOp::Bltu,
        "bgeu" => BranchOp::Bgeu,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    fn insts(p: &Program) -> Vec<Inst> {
        p.text
            .chunks(4)
            .map(|c| decode(u32::from_le_bytes(c.try_into().unwrap())).unwrap())
            .collect()
    }

    #[test]
    fn simple_program() {
        let p = assemble("li a0, 5\naddi a0, a0, 1\necall\n").unwrap();
        assert_eq!(
            insts(&p),
            vec![
                Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::ZERO, imm: 5 },
                Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::new(10), imm: 1 },
                Inst::Ecall,
            ]
        );
    }

    #[test]
    fn backward_and_forward_branches() {
        let p = assemble("top: beqz a0, done\n addi a0, a0, -1\n j top\n done: ecall\n").unwrap();
        let is = insts(&p);
        assert_eq!(
            is[0],
            Inst::Branch { op: BranchOp::Beq, rs1: Reg::new(10), rs2: Reg::ZERO, offset: 12 }
        );
        assert_eq!(is[2], Inst::Jal { rd: Reg::ZERO, offset: -8 });
    }

    #[test]
    fn li_expansions_cover_widths() {
        for v in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234,
            -4097,
            0x7FFF_FFFF,
            -0x8000_0000,
            0x1234_5678,
            0x1_0000_0000,
            -0x1_0000_0000,
            0x0102_0304_0506_0708,
            i64::MAX,
            i64::MIN,
            -0x7654_3210_0FED_CBA9,
        ] {
            let seq = expand_li(Reg::new(5), v);
            assert_eq!(eval_li(&seq), v, "li {v:#x}");
        }
    }

    /// Interprets an `li` expansion sequence to check its value.
    fn eval_li(seq: &[Inst]) -> i64 {
        let mut r = 0i64;
        for inst in seq {
            r = match *inst {
                Inst::Lui { imm, .. } => imm,
                Inst::OpImm { op: AluOp::Add, rs1, imm, .. } if rs1.is_zero() => imm,
                Inst::OpImm { op: AluOp::AddW, imm, .. } => (r + imm) as i32 as i64,
                Inst::OpImm { op: AluOp::Sll, imm, .. } => r << imm,
                Inst::OpImm { op: AluOp::Or, imm, .. } => r | imm,
                _ => panic!("unexpected inst in li expansion: {inst:?}"),
            };
        }
        r
    }

    #[test]
    fn la_resolves_data_symbols() {
        let src = ".data\nbuf: .zero 16\nval: .dword 42\n.text\nla a0, buf\nla a1, val\necall\n";
        let p = assemble(src).unwrap();
        assert_eq!(p.symbol_addr("buf"), DATA_BASE);
        assert_eq!(p.symbol_addr("val"), DATA_BASE + 16);
        // auipc+addi pair must compute the symbol address.
        let is = insts(&p);
        let (hi, lo) = match (is[0], is[1]) {
            (Inst::Auipc { imm: hi, .. }, Inst::OpImm { op: AluOp::Add, imm: lo, .. }) => (hi, lo),
            other => panic!("unexpected la expansion {other:?}"),
        };
        assert_eq!((TEXT_BASE as i64 + hi + lo) as u64, DATA_BASE);
    }

    #[test]
    fn data_directives() {
        let p = assemble(".data\na: .byte 1, 2, 3\n.align 2\nb: .word 0x11223344\nc: .dword -1\n")
            .unwrap();
        assert_eq!(p.data[0..3], [1, 2, 3]);
        assert_eq!(p.symbol_addr("b") % 4, 0);
        let woff = (p.symbol_addr("b") - DATA_BASE) as usize;
        assert_eq!(p.data[woff..woff + 4], [0x44, 0x33, 0x22, 0x11]);
        let doff = (p.symbol_addr("c") - DATA_BASE) as usize;
        assert_eq!(p.data[doff..doff + 8], [0xFF; 8]);
    }

    #[test]
    fn equ_constants() {
        let p = assemble(".equ N, 12\nli a0, N\naddi a0, a0, N\n").unwrap();
        let is = insts(&p);
        assert_eq!(
            is[0],
            Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::ZERO, imm: 12 }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus a0, a1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn duplicate_label_is_error() {
        assert!(assemble("x: nop\nx: nop\n").is_err());
    }

    #[test]
    fn undefined_label_is_error() {
        let e = assemble("j nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# full line\n  nop # trailing\n\n // slashes\nnop\n").unwrap();
        assert_eq!(p.inst_count(), 2);
    }

    #[test]
    fn entry_uses_start_when_present() {
        let p = assemble("nop\n_start: ecall\n").unwrap();
        assert_eq!(p.entry, TEXT_BASE + 4);
        let q = assemble("nop\n").unwrap();
        assert_eq!(q.entry, TEXT_BASE);
    }

    #[test]
    fn csr_markers() {
        let p = assemble("csrw 0x8c2, a0\ncsrr a1, 0x8c2\n").unwrap();
        let is = insts(&p);
        assert_eq!(
            is[0],
            Inst::Csr { op: CsrOp::Rw, rd: Reg::ZERO, rs1: Reg::new(10), csr: 0x8C2 }
        );
        assert_eq!(
            is[1],
            Inst::Csr { op: CsrOp::Rs, rd: Reg::new(11), rs1: Reg::ZERO, csr: 0x8C2 }
        );
    }

    #[test]
    fn zero_comparison_pseudos() {
        let p = assemble("t: bgtz a0, t\nblez a1, t\nbgez a2, t\nbltz a3, t\n").unwrap();
        let is = insts(&p);
        assert!(matches!(is[0], Inst::Branch { op: BranchOp::Blt, rs1, .. } if rs1.is_zero()));
        assert!(matches!(is[1], Inst::Branch { op: BranchOp::Bge, rs1, .. } if rs1.is_zero()));
        assert!(matches!(is[2], Inst::Branch { op: BranchOp::Bge, rs2, .. } if rs2.is_zero()));
        assert!(matches!(is[3], Inst::Branch { op: BranchOp::Blt, rs2, .. } if rs2.is_zero()));
    }

    #[test]
    fn swapped_branch_pseudos() {
        let p = assemble("t: bgt a0, a1, t\nble a0, a1, t\n").unwrap();
        let is = insts(&p);
        assert_eq!(
            is[0],
            Inst::Branch { op: BranchOp::Blt, rs1: Reg::new(11), rs2: Reg::new(10), offset: 0 }
        );
        assert_eq!(
            is[1],
            Inst::Branch { op: BranchOp::Bge, rs1: Reg::new(11), rs2: Reg::new(10), offset: -4 }
        );
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble("ld a0, (sp)\nld a1, -8(s0)\nsb a2, 3(a3)\n").unwrap();
        let is = insts(&p);
        assert_eq!(is[0], Inst::Load { op: LoadOp::Ld, rd: Reg::new(10), rs1: Reg::SP, offset: 0 });
        assert_eq!(
            is[1],
            Inst::Load { op: LoadOp::Ld, rd: Reg::new(11), rs1: Reg::new(8), offset: -8 }
        );
        assert_eq!(
            is[2],
            Inst::Store { op: StoreOp::Sb, rs1: Reg::new(13), rs2: Reg::new(12), offset: 3 }
        );
    }

    #[test]
    fn muldiv_mnemonics() {
        let p = assemble("mul a0, a1, a2\nremu a3, a4, a5\ndivw a6, a7, t0\n").unwrap();
        let is = insts(&p);
        assert!(matches!(is[0], Inst::MulDiv { op: MulDivOp::Mul, .. }));
        assert!(matches!(is[1], Inst::MulDiv { op: MulDivOp::Remu, .. }));
        assert!(matches!(is[2], Inst::MulDiv { op: MulDivOp::DivW, .. }));
    }
}
