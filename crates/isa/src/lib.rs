//! RV64IM subset for the MicroSampler framework.
//!
//! This crate provides everything needed to get constant-time kernels from
//! readable text assembly into a simulated machine:
//!
//! * [`Reg`] — architectural register names (`x0..x31` plus ABI aliases).
//! * [`Inst`] — a typed instruction model for the RV64IM subset used by the
//!   case studies (integer ALU ops, loads/stores, branches, jumps, `M`
//!   extension, CSR accesses used as trace markers, `ecall`).
//! * [`encode`]/[`decode`] — lossless binary encoding per the RISC-V
//!   unprivileged specification.
//! * [`assemble`](asm::assemble) — a two-pass text assembler with labels,
//!   data directives and the usual pseudo-instructions (`li`, `mv`, `j`,
//!   `call`, `ret`, `beqz`, …).
//! * [`Program`] — a loadable image (text + data sections, symbols, entry).
//!
//! # Example
//!
//! ```
//! use microsampler_isa::asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     .text
//!     start:
//!         li   a0, 40
//!         addi a0, a0, 2
//!         ecall
//!     "#,
//! )?;
//! assert_eq!(program.text.len(), 4 * 3);
//! # Ok::<(), microsampler_isa::asm::AsmError>(())
//! ```

pub mod asm;
mod decode;
mod disasm;
mod encode;
mod inst;
mod program;
mod reg;

pub use decode::{decode, DecodeError};
pub use disasm::disassemble;
pub use encode::encode;
pub use inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, StoreOp};
pub use program::{Program, Section, Symbol, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::Reg;

/// Marker CSR: writing it (value ignored) opens the security-critical region.
pub const CSR_SCR_START: u16 = 0x8C0;
/// Marker CSR: writing it closes the security-critical region.
pub const CSR_SCR_END: u16 = 0x8C1;
/// Marker CSR: writing it begins an iteration; the written value is the
/// iteration's secret-class label (e.g. the key bit being processed).
pub const CSR_ITER_START: u16 = 0x8C2;
/// Marker CSR: writing it ends the current iteration.
pub const CSR_ITER_END: u16 = 0x8C3;
/// Marker CSR: writing it requests simulation exit; the value is the exit code.
pub const CSR_EXIT: u16 = 0x8C4;
/// Attacker-model CSR: writing it flushes the D-cache line containing the
/// written address (models `clflush`/eviction by a co-located attacker).
pub const CSR_FLUSH_LINE: u16 = 0x8C5;
/// Attacker-model CSR: writing it flushes the entire D-cache.
pub const CSR_FLUSH_DCACHE: u16 = 0x8C6;
/// Attacker-model CSR: writing it flushes the data TLB.
pub const CSR_FLUSH_TLB: u16 = 0x8C7;
/// Harness CSR: reading it (`csrr`) pops the next word from the host-supplied
/// input queue (0 when empty). Reads are non-speculative: the core only
/// executes them at the head of the ROB.
pub const CSR_INPUT: u16 = 0x8C8;
/// Harness CSR: writing it (`csrw`) appends the value to the host-visible
/// output vector at commit.
pub const CSR_OUTPUT: u16 = 0x8C9;
/// The standard RISC-V `cycle` CSR. Reading it returns the current cycle
/// count (the golden-model interpreter returns its retired-instruction
/// count instead — programs that read it cannot be differentially tested).
pub const CSR_CYCLE: u16 = 0xC00;
