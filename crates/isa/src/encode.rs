use crate::inst::{AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, StoreOp};
use crate::Reg;

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP_IMM_32: u32 = 0b0011011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP_32: u32 = 0b0111011;
const OPC_SYSTEM: u32 = 0b1110011;
const OPC_MISC_MEM: u32 = 0b0001111;

fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i64) -> u32 {
    let imm = (imm as u32) & 0xFFF;
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | (imm << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1F) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i64) -> u32 {
    let imm = offset as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opcode: u32, rd: Reg, imm: i64) -> u32 {
    opcode | ((rd.index() as u32) << 7) | ((imm as u32) & 0xFFFF_F000)
}

fn j_type(opcode: u32, rd: Reg, offset: i64) -> u32 {
    let imm = offset as u32;
    opcode
        | ((rd.index() as u32) << 7)
        | (imm & 0xFF000)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn alu_funct(op: AluOp) -> (u32, u32, bool) {
    // (funct3, funct7, is_32bit)
    match op {
        AluOp::Add => (0b000, 0b0000000, false),
        AluOp::Sub => (0b000, 0b0100000, false),
        AluOp::Sll => (0b001, 0b0000000, false),
        AluOp::Slt => (0b010, 0b0000000, false),
        AluOp::Sltu => (0b011, 0b0000000, false),
        AluOp::Xor => (0b100, 0b0000000, false),
        AluOp::Srl => (0b101, 0b0000000, false),
        AluOp::Sra => (0b101, 0b0100000, false),
        AluOp::Or => (0b110, 0b0000000, false),
        AluOp::And => (0b111, 0b0000000, false),
        AluOp::AddW => (0b000, 0b0000000, true),
        AluOp::SubW => (0b000, 0b0100000, true),
        AluOp::SllW => (0b001, 0b0000000, true),
        AluOp::SrlW => (0b101, 0b0000000, true),
        AluOp::SraW => (0b101, 0b0100000, true),
    }
}

fn muldiv_funct(op: MulDivOp) -> (u32, bool) {
    match op {
        MulDivOp::Mul => (0b000, false),
        MulDivOp::Mulh => (0b001, false),
        MulDivOp::Mulhsu => (0b010, false),
        MulDivOp::Mulhu => (0b011, false),
        MulDivOp::Div => (0b100, false),
        MulDivOp::Divu => (0b101, false),
        MulDivOp::Rem => (0b110, false),
        MulDivOp::Remu => (0b111, false),
        MulDivOp::MulW => (0b000, true),
        MulDivOp::DivW => (0b100, true),
        MulDivOp::DivuW => (0b101, true),
        MulDivOp::RemW => (0b110, true),
        MulDivOp::RemuW => (0b111, true),
    }
}

/// Encodes an instruction to its 32-bit RISC-V machine word.
///
/// # Panics
///
/// Panics if an immediate or offset does not fit its encoding field (the
/// assembler validates ranges before calling this; direct callers must do
/// the same).
///
/// # Example
///
/// ```
/// use microsampler_isa::{encode, Inst, Reg, AluOp};
/// // addi a0, a0, 1
/// let word = encode(&Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::new(10), imm: 1 });
/// assert_eq!(word, 0x0015_0513);
/// ```
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd, imm } => {
            assert_eq!(imm & 0xFFF, 0, "lui immediate must be 4KiB aligned");
            u_type(OPC_LUI, rd, imm)
        }
        Inst::Auipc { rd, imm } => {
            assert_eq!(imm & 0xFFF, 0, "auipc immediate must be 4KiB aligned");
            u_type(OPC_AUIPC, rd, imm)
        }
        Inst::Jal { rd, offset } => {
            check_range(offset, 21, "jal offset");
            assert_eq!(offset & 1, 0, "jal offset must be even");
            j_type(OPC_JAL, rd, offset)
        }
        Inst::Jalr { rd, rs1, offset } => {
            check_range(offset, 12, "jalr offset");
            i_type(OPC_JALR, 0b000, rd, rs1, offset)
        }
        Inst::Branch { op, rs1, rs2, offset } => {
            check_range(offset, 13, "branch offset");
            assert_eq!(offset & 1, 0, "branch offset must be even");
            let funct3 = match op {
                BranchOp::Beq => 0b000,
                BranchOp::Bne => 0b001,
                BranchOp::Blt => 0b100,
                BranchOp::Bge => 0b101,
                BranchOp::Bltu => 0b110,
                BranchOp::Bgeu => 0b111,
            };
            b_type(OPC_BRANCH, funct3, rs1, rs2, offset)
        }
        Inst::Load { op, rd, rs1, offset } => {
            check_range(offset, 12, "load offset");
            let funct3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Ld => 0b011,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
                LoadOp::Lwu => 0b110,
            };
            i_type(OPC_LOAD, funct3, rd, rs1, offset)
        }
        Inst::Store { op, rs1, rs2, offset } => {
            check_range(offset, 12, "store offset");
            let funct3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
                StoreOp::Sd => 0b011,
            };
            s_type(OPC_STORE, funct3, rs1, rs2, offset)
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            assert!(op.has_imm_form(), "{op:?} has no immediate form");
            let (funct3, funct7, is32) = alu_funct(op);
            let opcode = if is32 { OPC_OP_IMM_32 } else { OPC_OP_IMM };
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    assert!((0..64).contains(&imm), "shift amount out of range");
                    i_type(opcode, funct3, rd, rs1, imm | ((funct7 as i64) << 5))
                }
                AluOp::SllW | AluOp::SrlW | AluOp::SraW => {
                    assert!((0..32).contains(&imm), "shift amount out of range");
                    i_type(opcode, funct3, rd, rs1, imm | ((funct7 as i64) << 5))
                }
                _ => {
                    check_range(imm, 12, "immediate");
                    i_type(opcode, funct3, rd, rs1, imm)
                }
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7, is32) = alu_funct(op);
            let opcode = if is32 { OPC_OP_32 } else { OPC_OP };
            r_type(opcode, funct3, funct7, rd, rs1, rs2)
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            let (funct3, is32) = muldiv_funct(op);
            let opcode = if is32 { OPC_OP_32 } else { OPC_OP };
            r_type(opcode, funct3, 0b0000001, rd, rs1, rs2)
        }
        Inst::Csr { op, rd, rs1, csr } => {
            let funct3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            i_type(OPC_SYSTEM, funct3, rd, rs1, csr as i64)
        }
        Inst::Ecall => i_type(OPC_SYSTEM, 0b000, Reg::ZERO, Reg::ZERO, 0),
        Inst::Ebreak => i_type(OPC_SYSTEM, 0b000, Reg::ZERO, Reg::ZERO, 1),
        Inst::Fence => i_type(OPC_MISC_MEM, 0b000, Reg::ZERO, Reg::ZERO, 0),
    }
}

fn check_range(value: i64, bits: u32, what: &str) {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    assert!((min..=max).contains(&value), "{what} {value} does not fit in {bits} signed bits");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec / GNU as output.
        // addi a0, a0, 1
        assert_eq!(
            encode(&Inst::OpImm { op: AluOp::Add, rd: Reg::new(10), rs1: Reg::new(10), imm: 1 }),
            0x0015_0513
        );
        // add a0, a1, a2
        assert_eq!(
            encode(&Inst::Op {
                op: AluOp::Add,
                rd: Reg::new(10),
                rs1: Reg::new(11),
                rs2: Reg::new(12)
            }),
            0x00C5_8533
        );
        // lui a0, 0x12345
        assert_eq!(encode(&Inst::Lui { rd: Reg::new(10), imm: 0x12345 << 12 }), 0x1234_5537);
        // ecall
        assert_eq!(encode(&Inst::Ecall), 0x0000_0073);
        // ld a1, 8(sp)
        assert_eq!(
            encode(&Inst::Load { op: LoadOp::Ld, rd: Reg::new(11), rs1: Reg::SP, offset: 8 }),
            0x0081_3583
        );
        // sd a1, 16(sp)
        assert_eq!(
            encode(&Inst::Store { op: StoreOp::Sd, rs1: Reg::SP, rs2: Reg::new(11), offset: 16 }),
            0x00B1_3823
        );
        // mul a0, a1, a2
        assert_eq!(
            encode(&Inst::MulDiv {
                op: MulDivOp::Mul,
                rd: Reg::new(10),
                rs1: Reg::new(11),
                rs2: Reg::new(12)
            }),
            0x02C5_8533
        );
        // beq a0, a1, +16
        assert_eq!(
            encode(&Inst::Branch {
                op: BranchOp::Beq,
                rs1: Reg::new(10),
                rs2: Reg::new(11),
                offset: 16
            }),
            0x00B5_0863
        );
        // jal ra, +2048 -- imm[11] set
        assert_eq!(encode(&Inst::Jal { rd: Reg::RA, offset: 2048 }), 0x0010_00EF);
    }

    #[test]
    fn srai_encodes_funct6() {
        // srai a0, a0, 3
        let w =
            encode(&Inst::OpImm { op: AluOp::Sra, rd: Reg::new(10), rs1: Reg::new(10), imm: 3 });
        assert_eq!(w, 0x4035_5513);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn immediate_overflow_panics() {
        encode(&Inst::OpImm { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::new(1), imm: 4096 });
    }

    #[test]
    #[should_panic(expected = "no immediate form")]
    fn subi_rejected() {
        encode(&Inst::OpImm { op: AluOp::Sub, rd: Reg::new(1), rs1: Reg::new(1), imm: 1 });
    }

    #[test]
    fn negative_branch_offset() {
        let w = encode(&Inst::Branch {
            op: BranchOp::Bne,
            rs1: Reg::new(5),
            rs2: Reg::ZERO,
            offset: -4,
        });
        // bne t0, zero, -4  => 0xfe029ee3
        assert_eq!(w, 0xFE02_9EE3);
    }
}
