//! Property tests closing the full tooling loop over RV64IM:
//! assembler → encoder → decoder → disassembler.
//!
//! `roundtrip.rs` already pins encode↔decode; these properties add the
//! text layer: disassembly of any label-free instruction is valid
//! assembler input that lowers back to the same instruction, and whole
//! assembled programs (labels, branches, calls included) re-encode
//! word-for-word.

use microsampler_isa::asm::assemble;
use microsampler_isa::{
    decode, disassemble, encode, AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, Reg, StoreOp,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn op_imm() -> impl Strategy<Value = Inst> {
    // Immediate-form ALU ops with their per-op immediate ranges.
    prop_oneof![
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Slt),
                Just(AluOp::Sltu),
                Just(AluOp::Xor),
                Just(AluOp::Or),
                Just(AluOp::And),
                Just(AluOp::AddW),
            ],
            reg(),
            reg(),
            -2048i64..2048,
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)],
            reg(),
            reg(),
            0i64..64,
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(AluOp::SllW), Just(AluOp::SrlW), Just(AluOp::SraW)],
            reg(),
            reg(),
            0i64..32,
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::OpImm { op, rd, rs1, imm }),
    ]
}

fn op_rr() -> impl Strategy<Value = Inst> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::AddW),
        Just(AluOp::SubW),
        Just(AluOp::SllW),
        Just(AluOp::SrlW),
        Just(AluOp::SraW),
    ];
    let muldiv = prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
        Just(MulDivOp::MulW),
        Just(MulDivOp::DivW),
        Just(MulDivOp::DivuW),
        Just(MulDivOp::RemW),
        Just(MulDivOp::RemuW),
    ];
    prop_oneof![
        (alu, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        (muldiv, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv {
            op,
            rd,
            rs1,
            rs2
        }),
    ]
}

/// Instructions whose disassembly is valid assembler input (everything
/// except PC-relative branches/jumps, whose textual form is a label).
fn label_free_inst() -> impl Strategy<Value = Inst> {
    let load = prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Ld),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
        Just(LoadOp::Lwu),
    ];
    let store =
        prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw), Just(StoreOp::Sd)];
    prop_oneof![
        (reg(), -524288i64..524288).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (reg(), -524288i64..524288).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (reg(), reg(), -2048i64..2048).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (load, reg(), reg(), -2048i64..2048).prop_map(|(op, rd, rs1, offset)| Inst::Load {
            op,
            rd,
            rs1,
            offset
        }),
        (store, reg(), reg(), -2048i64..2048).prop_map(|(op, rs1, rs2, offset)| Inst::Store {
            op,
            rs1,
            rs2,
            offset
        }),
        op_imm(),
        op_rr(),
        (prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)], reg(), reg(), 0u16..4096)
            .prop_map(|(op, rd, rs1, csr)| Inst::Csr { op, rd, rs1, csr }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Fence),
    ]
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu),
    ]
}

/// One line of a random program: either a label-free instruction or a
/// control-flow instruction targeting label `Lk` (k capped to the line
/// count at render time, so every target exists).
#[derive(Clone, Debug)]
enum Line {
    Plain(Inst),
    Branch(BranchOp, Reg, Reg, usize),
    Jump(Reg, usize),
}

fn line() -> impl Strategy<Value = Line> {
    prop_oneof![
        label_free_inst().prop_map(Line::Plain),
        (branch_op(), reg(), reg(), 0usize..64)
            .prop_map(|(op, rs1, rs2, t)| Line::Branch(op, rs1, rs2, t)),
        (reg(), 0usize..64).prop_map(|(rd, t)| Line::Jump(rd, t)),
    ]
}

fn branch_name(op: BranchOp) -> &'static str {
    match op {
        BranchOp::Beq => "beq",
        BranchOp::Bne => "bne",
        BranchOp::Blt => "blt",
        BranchOp::Bge => "bge",
        BranchOp::Bltu => "bltu",
        BranchOp::Bgeu => "bgeu",
    }
}

fn render(lines: &[Line]) -> String {
    let mut src = String::from("_start:\n");
    for (i, l) in lines.iter().enumerate() {
        src.push_str(&format!("L{i}:\n"));
        match l {
            Line::Plain(inst) => src.push_str(&format!("    {}\n", disassemble(inst))),
            Line::Branch(op, rs1, rs2, t) => src.push_str(&format!(
                "    {} {rs1}, {rs2}, L{}\n",
                branch_name(*op),
                t % lines.len(),
            )),
            Line::Jump(rd, t) => src.push_str(&format!("    jal {rd}, L{}\n", t % lines.len())),
        }
    }
    src
}

proptest! {
    /// disassemble → assemble is the identity on label-free instructions.
    #[test]
    fn disasm_reassembles_to_same_inst(inst in label_free_inst()) {
        let src = format!("_start:\n    {}\n", disassemble(&inst));
        let program = assemble(&src)
            .unwrap_or_else(|e| panic!("`{}` failed to assemble: {e}", disassemble(&inst)));
        prop_assert_eq!(program.inst_count(), 1);
        prop_assert_eq!(program.inst_at(program.entry).unwrap(), inst);
    }

    /// Whole random programs — labels, branches, jumps included —
    /// assemble into words that decode, re-encode bit-identically, and
    /// disassemble to non-empty text.
    #[test]
    fn assembled_programs_reencode_word_for_word(
        lines in proptest::collection::vec(line(), 1..40)
    ) {
        let program = assemble(&render(&lines)).expect("generated program assembles");
        prop_assert_eq!(program.inst_count(), lines.len());
        for i in 0..program.inst_count() {
            let pc = program.entry + i as u64 * 4;
            let inst = program.inst_at(pc).expect("assembled word decodes");
            prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
            prop_assert!(!disassemble(&inst).is_empty());
        }
    }
}
