//! Property tests: every constructible instruction encodes and decodes back
//! to itself, and assembly → disassembly → assembly is stable for concrete
//! (label-free) instructions.

use microsampler_isa::{
    decode, disassemble, encode, AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, Reg, StoreOp,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::AddW),
        Just(AluOp::SubW),
        Just(AluOp::SllW),
        Just(AluOp::SrlW),
        Just(AluOp::SraW),
    ]
}

fn muldiv_op() -> impl Strategy<Value = MulDivOp> {
    prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
        Just(MulDivOp::MulW),
        Just(MulDivOp::DivW),
        Just(MulDivOp::DivuW),
        Just(MulDivOp::RemW),
        Just(MulDivOp::RemuW),
    ]
}

fn branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Beq),
        Just(BranchOp::Bne),
        Just(BranchOp::Blt),
        Just(BranchOp::Bge),
        Just(BranchOp::Bltu),
        Just(BranchOp::Bgeu),
    ]
}

fn load_op() -> impl Strategy<Value = LoadOp> {
    prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lh),
        Just(LoadOp::Lw),
        Just(LoadOp::Ld),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lhu),
        Just(LoadOp::Lwu),
    ]
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw), Just(StoreOp::Sd)]
}

fn inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg(), -524288i64..524288).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (reg(), -524288i64..524288).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (reg(), -1048576i64..1048576).prop_map(|(rd, o)| Inst::Jal { rd, offset: o & !1 }),
        (reg(), reg(), -2048i64..2048).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (branch_op(), reg(), reg(), -4096i64..4096).prop_map(|(op, rs1, rs2, o)| Inst::Branch {
            op,
            rs1,
            rs2,
            offset: o & !1
        }),
        (load_op(), reg(), reg(), -2048i64..2048).prop_map(|(op, rd, rs1, offset)| Inst::Load {
            op,
            rd,
            rs1,
            offset
        }),
        (store_op(), reg(), reg(), -2048i64..2048).prop_map(|(op, rs1, rs2, offset)| Inst::Store {
            op,
            rs1,
            rs2,
            offset
        }),
        (alu_op(), reg(), reg(), -2048i64..2048).prop_filter_map(
            "imm form",
            |(op, rd, rs1, imm)| {
                if !op.has_imm_form() {
                    return None;
                }
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(64),
                    AluOp::SllW | AluOp::SrlW | AluOp::SraW => imm.rem_euclid(32),
                    _ => imm,
                };
                Some(Inst::OpImm { op, rd, rs1, imm })
            }
        ),
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (muldiv_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv {
            op,
            rd,
            rs1,
            rs2
        }),
        (prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)], reg(), reg(), 0u16..4096)
            .prop_map(|(op, rd, rs1, csr)| Inst::Csr { op, rd, rs1, csr }),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Fence),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(i in inst()) {
        let word = encode(&i);
        let back = decode(word).expect("decode of encoded instruction");
        prop_assert_eq!(back, i);
    }

    #[test]
    fn disassembly_never_empty(i in inst()) {
        prop_assert!(!disassemble(&i).is_empty());
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decode_encode_fixpoint(word in any::<u32>()) {
        // Any decodable word re-encodes to a word that decodes identically
        // (encode may canonicalize, decode must be stable).
        if let Ok(i) = decode(word) {
            let w2 = encode(&i);
            prop_assert_eq!(decode(w2).unwrap(), i);
        }
    }
}
