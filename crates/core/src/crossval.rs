//! Cross-validation of the static taint verdict against the dynamic
//! statistical audit.
//!
//! The two detectors have complementary blind spots: the static analyzer
//! over-approximates (any feasible path counts, so it can flag code the
//! dynamic audit never observes leaking), while the dynamic audit
//! under-approximates (it only sees leakage the sampled microarchitecture
//! actually expressed — prefetcher state, cache-set conflicts, and other
//! emergent channels the taint lattice does not model). Every primitive
//! therefore lands in exactly one of five explained buckets; an
//! "unexplained" row is a bug in one of the detectors.

use crate::AnalysisReport;
use microsampler_obs::json::Value;
use std::fmt;

/// Agreement classification for one kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossVerdict {
    /// Both detectors agree the kernel is constant-time.
    TrueCt,
    /// Both detectors agree the kernel leaks.
    TrueLeaky,
    /// Static flags it, dynamic observed nothing — the over-approximation
    /// expected of a sound may-taint analysis (infeasible path, or a
    /// channel the sampled configuration does not express).
    StaticConservative,
    /// Dynamic observed leakage the taint lattice does not model
    /// (emergent microarchitectural channels: prefetcher, cache-set
    /// conflicts, port contention).
    DynamicOnly,
    /// The dynamic audit saw strong association without significance and
    /// wants more samples — no dynamic verdict to compare against.
    Inconclusive,
}

impl CrossVerdict {
    /// Stable label used in the report table and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CrossVerdict::TrueCt => "true-ct",
            CrossVerdict::TrueLeaky => "true-leaky",
            CrossVerdict::StaticConservative => "static-conservative",
            CrossVerdict::DynamicOnly => "dynamic-only",
            CrossVerdict::Inconclusive => "inconclusive",
        }
    }

    /// Why this combination of verdicts is expected, not a detector bug.
    pub fn explanation(self) -> &'static str {
        match self {
            CrossVerdict::TrueCt => "static clean and dynamic clean: constant-time",
            CrossVerdict::TrueLeaky => "static leaky and dynamic leaky: confirmed leak",
            CrossVerdict::StaticConservative => {
                "static leaky, dynamic clean: may-taint over-approximation \
                 (infeasible path or channel not expressed by this configuration)"
            }
            CrossVerdict::DynamicOnly => {
                "dynamic leaky, static clean: emergent microarchitectural channel \
                 outside the taint model"
            }
            CrossVerdict::Inconclusive => {
                "dynamic audit needs more samples: no verdict to cross-check"
            }
        }
    }

    /// True when the static and dynamic verdicts disagree.
    pub fn is_disagreement(self) -> bool {
        matches!(self, CrossVerdict::StaticConservative | CrossVerdict::DynamicOnly)
    }
}

/// Classifies one kernel's pair of verdicts.
pub fn classify(static_leaky: bool, dynamic: &AnalysisReport) -> CrossVerdict {
    if dynamic.is_leaky() {
        if static_leaky {
            CrossVerdict::TrueLeaky
        } else {
            CrossVerdict::DynamicOnly
        }
    } else if dynamic.needs_more_samples() {
        CrossVerdict::Inconclusive
    } else if static_leaky {
        CrossVerdict::StaticConservative
    } else {
        CrossVerdict::TrueCt
    }
}

/// Agreement classification along the *speculative* dimension: the static
/// CT-SPEC verdict against a dynamic audit run under adversarial
/// speculation (polarized predictor initial state and/or spurious-squash
/// fault plans) that maximizes wrong-path execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecVerdict {
    /// Static flagged CT-SPEC and the adversarial run leaked: the
    /// transient channel is real on this core.
    Confirmed,
    /// Static flagged CT-SPEC but no adversarial run expressed it — the
    /// window the taint analysis assumes (every branch mispredictable for
    /// a full ROB) is wider than what this core's predictor reached.
    NotExpressed,
    /// The adversarial run leaked a kernel that is statically clean even
    /// speculatively: an emergent transient channel outside the model.
    TransientDynamicOnly,
    /// No CT-SPEC finding and the adversarial run stayed clean.
    CleanBoth,
    /// The adversarial audit wants more samples: no verdict to compare.
    Inconclusive,
}

impl SpecVerdict {
    /// Stable label used in the report table and JSON.
    pub fn label(self) -> &'static str {
        match self {
            SpecVerdict::Confirmed => "spec-confirmed",
            SpecVerdict::NotExpressed => "spec-not-expressed",
            SpecVerdict::TransientDynamicOnly => "spec-dynamic-only",
            SpecVerdict::CleanBoth => "spec-clean",
            SpecVerdict::Inconclusive => "spec-inconclusive",
        }
    }

    /// Why this combination is expected, not a detector bug.
    pub fn explanation(self) -> &'static str {
        match self {
            SpecVerdict::Confirmed => {
                "static CT-SPEC and adversarial-speculation run leaky: transient channel \
                 confirmed end to end"
            }
            SpecVerdict::NotExpressed => {
                "static CT-SPEC, adversarial run clean: the modeled window over-approximates \
                 what this predictor state reached"
            }
            SpecVerdict::TransientDynamicOnly => {
                "adversarial run leaky, static speculatively clean: emergent transient \
                 channel outside the taint model"
            }
            SpecVerdict::CleanBoth => "no CT-SPEC finding and adversarial run clean",
            SpecVerdict::Inconclusive => {
                "adversarial audit needs more samples: no verdict to cross-check"
            }
        }
    }

    /// True when the static and adversarial-dynamic verdicts disagree.
    pub fn is_disagreement(self) -> bool {
        matches!(self, SpecVerdict::NotExpressed | SpecVerdict::TransientDynamicOnly)
    }
}

/// Classifies one kernel along the speculative dimension.
///
/// `static_transient` is "the static pass reported at least one CT-SPEC
/// violation"; `adversarial` is the dynamic audit of a run under
/// adversarial speculation.
pub fn classify_spec(static_transient: bool, adversarial: &AnalysisReport) -> SpecVerdict {
    if adversarial.is_leaky() {
        if static_transient {
            SpecVerdict::Confirmed
        } else {
            SpecVerdict::TransientDynamicOnly
        }
    } else if adversarial.needs_more_samples() {
        SpecVerdict::Inconclusive
    } else if static_transient {
        SpecVerdict::NotExpressed
    } else {
        SpecVerdict::CleanBoth
    }
}

/// One row of the cross-validation table.
#[derive(Clone, Debug)]
pub struct CrossRow {
    /// Kernel name.
    pub name: String,
    /// Static verdict label ("clean"/"leaky").
    pub static_verdict: &'static str,
    /// Dynamic verdict label ("clean"/"leaky"/"needs-more-samples").
    pub dynamic_verdict: &'static str,
    /// Strongest per-unit Cramér's V the dynamic audit measured.
    pub max_cramers_v: f64,
    /// Agreement classification.
    pub verdict: CrossVerdict,
    /// Static speculative verdict ("transient"/"clean"), set once the
    /// speculative dimension has been cross-checked.
    pub spec_static: Option<&'static str>,
    /// Dynamic verdict of the adversarial-speculation run.
    pub spec_dynamic: Option<&'static str>,
    /// Strongest per-unit Cramér's V under adversarial speculation.
    pub spec_max_cramers_v: f64,
    /// Speculative agreement classification, when cross-checked.
    pub spec_verdict: Option<SpecVerdict>,
}

fn dynamic_label(dynamic: &AnalysisReport) -> &'static str {
    if dynamic.is_leaky() {
        "leaky"
    } else if dynamic.needs_more_samples() {
        "needs-more-samples"
    } else {
        "clean"
    }
}

impl CrossRow {
    /// Builds a row from the two reports. `static_leaky` is the
    /// *architectural* static verdict — transient-only (CT-SPEC) findings
    /// belong to the speculative dimension, attached via
    /// [`CrossRow::with_spec`].
    pub fn new(name: &str, static_leaky: bool, dynamic: &AnalysisReport) -> CrossRow {
        CrossRow {
            name: name.to_string(),
            static_verdict: if static_leaky { "leaky" } else { "clean" },
            dynamic_verdict: dynamic_label(dynamic),
            max_cramers_v: dynamic.units.iter().map(|u| u.assoc.cramers_v).fold(0.0, f64::max),
            verdict: classify(static_leaky, dynamic),
            spec_static: None,
            spec_dynamic: None,
            spec_max_cramers_v: 0.0,
            spec_verdict: None,
        }
    }

    /// Attaches the speculative dimension: the static CT-SPEC verdict
    /// cross-checked against an adversarial-speculation dynamic run.
    pub fn with_spec(mut self, static_transient: bool, adversarial: &AnalysisReport) -> CrossRow {
        self.spec_static = Some(if static_transient { "transient" } else { "clean" });
        self.spec_dynamic = Some(dynamic_label(adversarial));
        self.spec_max_cramers_v =
            adversarial.units.iter().map(|u| u.assoc.cramers_v).fold(0.0, f64::max);
        self.spec_verdict = Some(classify_spec(static_transient, adversarial));
        self
    }

    /// JSON rendering (stable keys: `name`, `static`, `dynamic`,
    /// `max_cramers_v`, `verdict`, `explanation`, plus a `spec` object
    /// when the speculative dimension was cross-checked).
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object()
            .field("name", self.name.as_str())
            .field("static", self.static_verdict)
            .field("dynamic", self.dynamic_verdict)
            .field("max_cramers_v", self.max_cramers_v)
            .field("verdict", self.verdict.label())
            .field("explanation", self.verdict.explanation());
        if let (Some(ss), Some(sd), Some(sv)) =
            (self.spec_static, self.spec_dynamic, self.spec_verdict)
        {
            obj = obj.field(
                "spec",
                Value::object()
                    .field("static", ss)
                    .field("dynamic", sd)
                    .field("max_cramers_v", self.spec_max_cramers_v)
                    .field("verdict", sv.label())
                    .field("explanation", sv.explanation())
                    .build(),
            );
        }
        obj.build()
    }
}

/// The full cross-validation report: one row per kernel, every row
/// explained.
#[derive(Clone, Debug, Default)]
pub struct CrossReport {
    /// Rows in analysis order.
    pub rows: Vec<CrossRow>,
}

impl CrossReport {
    /// Rows where the detectors disagree.
    pub fn disagreements(&self) -> impl Iterator<Item = &CrossRow> {
        self.rows.iter().filter(|r| r.verdict.is_disagreement())
    }

    /// Rows where the speculative dimension disagrees.
    pub fn spec_disagreements(&self) -> impl Iterator<Item = &CrossRow> {
        self.rows.iter().filter(|r| r.spec_verdict.is_some_and(SpecVerdict::is_disagreement))
    }

    /// Rows where a static CT-SPEC finding was confirmed dynamically
    /// under adversarial speculation — the end-to-end transient evidence
    /// the run report records.
    pub fn spec_confirmed(&self) -> impl Iterator<Item = &CrossRow> {
        self.rows.iter().filter(|r| r.spec_verdict == Some(SpecVerdict::Confirmed))
    }

    /// JSON rendering (schema `microsampler-crossval-v2`; v1 plus the
    /// per-row `spec` object and top-level speculative counters).
    pub fn to_json(&self) -> Value {
        Value::object()
            .field("schema", "microsampler-crossval-v2")
            .field("rows", Value::Array(self.rows.iter().map(CrossRow::to_json).collect()))
            .field("disagreements", self.disagreements().count() as u64)
            .field("spec_disagreements", self.spec_disagreements().count() as u64)
            .field("spec_confirmed", self.spec_confirmed().count() as u64)
            .build()
    }
}

impl fmt::Display for CrossReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<30} {:>7} {:>19} {:>8}  verdict", "kernel", "static", "dynamic", "max V")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>7} {:>19} {:>8.3}  {}",
                r.name,
                r.static_verdict,
                r.dynamic_verdict,
                r.max_cramers_v,
                r.verdict.label()
            )?;
        }
        for r in self.disagreements() {
            writeln!(f, "  {}: {}", r.name, r.verdict.explanation())?;
        }
        if self.rows.iter().any(|r| r.spec_verdict.is_some()) {
            writeln!(f, "speculative dimension (adversarial predictor state):")?;
            writeln!(
                f,
                "{:<30} {:>9} {:>19} {:>8}  verdict",
                "kernel", "static", "adversarial", "max V"
            )?;
            for r in self.rows.iter().filter(|r| r.spec_verdict.is_some()) {
                writeln!(
                    f,
                    "{:<30} {:>9} {:>19} {:>8.3}  {}",
                    r.name,
                    r.spec_static.unwrap_or("-"),
                    r.spec_dynamic.unwrap_or("-"),
                    r.spec_max_cramers_v,
                    r.spec_verdict.map_or("-", SpecVerdict::label)
                )?;
            }
            for r in self.spec_disagreements() {
                writeln!(f, "  {}: {}", r.name, r.spec_verdict.unwrap().explanation())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::UnitReport;
    use microsampler_sim::UnitId;
    use microsampler_stats::Association;

    fn dynamic_with(v: f64, p: f64) -> AnalysisReport {
        let assoc = Association { cramers_v: v, chi2: 10.0, p_value: p, ..Association::none() };
        AnalysisReport {
            units: UnitId::ALL
                .iter()
                .map(|&u| UnitReport { unit: u, assoc, assoc_timeless: assoc })
                .collect(),
            iterations: 64,
            classes: 4,
            dropped_cycles: 0,
            sampled_cycles: 256,
            pipeline: microsampler_sim::PipelineStats::default(),
        }
    }

    #[test]
    fn four_quadrants_classify() {
        let leaky = dynamic_with(0.9, 0.001);
        let clean = dynamic_with(0.05, 0.8);
        assert_eq!(classify(true, &leaky), CrossVerdict::TrueLeaky);
        assert_eq!(classify(false, &leaky), CrossVerdict::DynamicOnly);
        assert_eq!(classify(true, &clean), CrossVerdict::StaticConservative);
        assert_eq!(classify(false, &clean), CrossVerdict::TrueCt);
    }

    #[test]
    fn unconfirmed_association_is_inconclusive() {
        let unsure = dynamic_with(0.9, 0.5);
        assert_eq!(classify(false, &unsure), CrossVerdict::Inconclusive);
        assert_eq!(classify(true, &unsure), CrossVerdict::Inconclusive);
    }

    #[test]
    fn spec_quadrants_classify() {
        let leaky = dynamic_with(0.9, 0.001);
        let clean = dynamic_with(0.05, 0.8);
        let unsure = dynamic_with(0.9, 0.5);
        assert_eq!(classify_spec(true, &leaky), SpecVerdict::Confirmed);
        assert_eq!(classify_spec(false, &leaky), SpecVerdict::TransientDynamicOnly);
        assert_eq!(classify_spec(true, &clean), SpecVerdict::NotExpressed);
        assert_eq!(classify_spec(false, &clean), SpecVerdict::CleanBoth);
        assert_eq!(classify_spec(true, &unsure), SpecVerdict::Inconclusive);
        assert_eq!(classify_spec(false, &unsure), SpecVerdict::Inconclusive);
    }

    #[test]
    fn with_spec_attaches_the_dimension_and_json_carries_it() {
        // A Spectre gadget: architecturally clean both ways, transient
        // statically, leaky under adversarial speculation → Confirmed.
        let row = CrossRow::new("spectre", false, &dynamic_with(0.05, 0.8))
            .with_spec(true, &dynamic_with(0.9, 0.001));
        assert_eq!(row.verdict, CrossVerdict::TrueCt);
        assert_eq!(row.spec_verdict, Some(SpecVerdict::Confirmed));
        assert_eq!(row.spec_static, Some("transient"));
        assert_eq!(row.spec_dynamic, Some("leaky"));
        assert!(row.spec_max_cramers_v > 0.8);
        let json = row.to_json();
        let spec = json.get("spec").unwrap();
        assert_eq!(spec.get("verdict").and_then(Value::as_str), Some("spec-confirmed"));
        // A row without the dimension omits the object entirely.
        let bare = CrossRow::new("plain", false, &dynamic_with(0.05, 0.8));
        assert!(bare.to_json().get("spec").is_none());
    }

    #[test]
    fn report_counts_spec_confirmations_and_renders_the_section() {
        let report = CrossReport {
            rows: vec![
                CrossRow::new("spectre", false, &dynamic_with(0.05, 0.8))
                    .with_spec(true, &dynamic_with(0.9, 0.001)),
                CrossRow::new("honest", false, &dynamic_with(0.05, 0.8))
                    .with_spec(false, &dynamic_with(0.05, 0.8)),
                CrossRow::new("wide-window", false, &dynamic_with(0.05, 0.8))
                    .with_spec(true, &dynamic_with(0.05, 0.8)),
            ],
        };
        assert_eq!(report.spec_confirmed().count(), 1);
        assert_eq!(report.spec_disagreements().count(), 1);
        let json = report.to_json();
        assert_eq!(json.get("schema").and_then(Value::as_str), Some("microsampler-crossval-v2"));
        assert_eq!(json.get("spec_confirmed").and_then(Value::as_u64), Some(1));
        assert_eq!(json.get("spec_disagreements").and_then(Value::as_u64), Some(1));
        let text = report.to_string();
        assert!(text.contains("speculative dimension"));
        assert!(text.contains("spec-confirmed"));
        assert!(text.contains("over-approximates"));
    }

    #[test]
    fn report_counts_disagreements_and_renders() {
        let report = CrossReport {
            rows: vec![
                CrossRow::new("a", false, &dynamic_with(0.05, 0.8)),
                CrossRow::new("b", true, &dynamic_with(0.05, 0.8)),
            ],
        };
        assert_eq!(report.disagreements().count(), 1);
        let json = report.to_json();
        assert_eq!(json.get("disagreements").and_then(Value::as_u64), Some(1));
        let text = report.to_string();
        assert!(text.contains("static-conservative"));
        assert!(text.contains("over-approximation"));
    }
}
