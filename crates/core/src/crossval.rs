//! Cross-validation of the static taint verdict against the dynamic
//! statistical audit.
//!
//! The two detectors have complementary blind spots: the static analyzer
//! over-approximates (any feasible path counts, so it can flag code the
//! dynamic audit never observes leaking), while the dynamic audit
//! under-approximates (it only sees leakage the sampled microarchitecture
//! actually expressed — prefetcher state, cache-set conflicts, and other
//! emergent channels the taint lattice does not model). Every primitive
//! therefore lands in exactly one of five explained buckets; an
//! "unexplained" row is a bug in one of the detectors.

use crate::AnalysisReport;
use microsampler_obs::json::Value;
use std::fmt;

/// Agreement classification for one kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossVerdict {
    /// Both detectors agree the kernel is constant-time.
    TrueCt,
    /// Both detectors agree the kernel leaks.
    TrueLeaky,
    /// Static flags it, dynamic observed nothing — the over-approximation
    /// expected of a sound may-taint analysis (infeasible path, or a
    /// channel the sampled configuration does not express).
    StaticConservative,
    /// Dynamic observed leakage the taint lattice does not model
    /// (emergent microarchitectural channels: prefetcher, cache-set
    /// conflicts, port contention).
    DynamicOnly,
    /// The dynamic audit saw strong association without significance and
    /// wants more samples — no dynamic verdict to compare against.
    Inconclusive,
}

impl CrossVerdict {
    /// Stable label used in the report table and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CrossVerdict::TrueCt => "true-ct",
            CrossVerdict::TrueLeaky => "true-leaky",
            CrossVerdict::StaticConservative => "static-conservative",
            CrossVerdict::DynamicOnly => "dynamic-only",
            CrossVerdict::Inconclusive => "inconclusive",
        }
    }

    /// Why this combination of verdicts is expected, not a detector bug.
    pub fn explanation(self) -> &'static str {
        match self {
            CrossVerdict::TrueCt => "static clean and dynamic clean: constant-time",
            CrossVerdict::TrueLeaky => "static leaky and dynamic leaky: confirmed leak",
            CrossVerdict::StaticConservative => {
                "static leaky, dynamic clean: may-taint over-approximation \
                 (infeasible path or channel not expressed by this configuration)"
            }
            CrossVerdict::DynamicOnly => {
                "dynamic leaky, static clean: emergent microarchitectural channel \
                 outside the taint model"
            }
            CrossVerdict::Inconclusive => {
                "dynamic audit needs more samples: no verdict to cross-check"
            }
        }
    }

    /// True when the static and dynamic verdicts disagree.
    pub fn is_disagreement(self) -> bool {
        matches!(self, CrossVerdict::StaticConservative | CrossVerdict::DynamicOnly)
    }
}

/// Classifies one kernel's pair of verdicts.
pub fn classify(static_leaky: bool, dynamic: &AnalysisReport) -> CrossVerdict {
    if dynamic.is_leaky() {
        if static_leaky {
            CrossVerdict::TrueLeaky
        } else {
            CrossVerdict::DynamicOnly
        }
    } else if dynamic.needs_more_samples() {
        CrossVerdict::Inconclusive
    } else if static_leaky {
        CrossVerdict::StaticConservative
    } else {
        CrossVerdict::TrueCt
    }
}

/// One row of the cross-validation table.
#[derive(Clone, Debug)]
pub struct CrossRow {
    /// Kernel name.
    pub name: String,
    /// Static verdict label ("clean"/"leaky").
    pub static_verdict: &'static str,
    /// Dynamic verdict label ("clean"/"leaky"/"needs-more-samples").
    pub dynamic_verdict: &'static str,
    /// Strongest per-unit Cramér's V the dynamic audit measured.
    pub max_cramers_v: f64,
    /// Agreement classification.
    pub verdict: CrossVerdict,
}

impl CrossRow {
    /// Builds a row from the two reports.
    pub fn new(name: &str, static_leaky: bool, dynamic: &AnalysisReport) -> CrossRow {
        let dynamic_verdict = if dynamic.is_leaky() {
            "leaky"
        } else if dynamic.needs_more_samples() {
            "needs-more-samples"
        } else {
            "clean"
        };
        CrossRow {
            name: name.to_string(),
            static_verdict: if static_leaky { "leaky" } else { "clean" },
            dynamic_verdict,
            max_cramers_v: dynamic.units.iter().map(|u| u.assoc.cramers_v).fold(0.0, f64::max),
            verdict: classify(static_leaky, dynamic),
        }
    }

    /// JSON rendering (stable keys: `name`, `static`, `dynamic`,
    /// `max_cramers_v`, `verdict`, `explanation`).
    pub fn to_json(&self) -> Value {
        Value::object()
            .field("name", self.name.as_str())
            .field("static", self.static_verdict)
            .field("dynamic", self.dynamic_verdict)
            .field("max_cramers_v", self.max_cramers_v)
            .field("verdict", self.verdict.label())
            .field("explanation", self.verdict.explanation())
            .build()
    }
}

/// The full cross-validation report: one row per kernel, every row
/// explained.
#[derive(Clone, Debug, Default)]
pub struct CrossReport {
    /// Rows in analysis order.
    pub rows: Vec<CrossRow>,
}

impl CrossReport {
    /// Rows where the detectors disagree.
    pub fn disagreements(&self) -> impl Iterator<Item = &CrossRow> {
        self.rows.iter().filter(|r| r.verdict.is_disagreement())
    }

    /// JSON rendering (schema `microsampler-crossval-v1`).
    pub fn to_json(&self) -> Value {
        Value::object()
            .field("schema", "microsampler-crossval-v1")
            .field("rows", Value::Array(self.rows.iter().map(CrossRow::to_json).collect()))
            .field("disagreements", self.disagreements().count() as u64)
            .build()
    }
}

impl fmt::Display for CrossReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<30} {:>7} {:>19} {:>8}  verdict", "kernel", "static", "dynamic", "max V")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>7} {:>19} {:>8.3}  {}",
                r.name,
                r.static_verdict,
                r.dynamic_verdict,
                r.max_cramers_v,
                r.verdict.label()
            )?;
        }
        for r in self.disagreements() {
            writeln!(f, "  {}: {}", r.name, r.verdict.explanation())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::UnitReport;
    use microsampler_sim::UnitId;
    use microsampler_stats::Association;

    fn dynamic_with(v: f64, p: f64) -> AnalysisReport {
        let assoc = Association { cramers_v: v, chi2: 10.0, p_value: p, ..Association::none() };
        AnalysisReport {
            units: UnitId::ALL
                .iter()
                .map(|&u| UnitReport { unit: u, assoc, assoc_timeless: assoc })
                .collect(),
            iterations: 64,
            classes: 4,
            dropped_cycles: 0,
            sampled_cycles: 256,
            pipeline: microsampler_sim::PipelineStats::default(),
        }
    }

    #[test]
    fn four_quadrants_classify() {
        let leaky = dynamic_with(0.9, 0.001);
        let clean = dynamic_with(0.05, 0.8);
        assert_eq!(classify(true, &leaky), CrossVerdict::TrueLeaky);
        assert_eq!(classify(false, &leaky), CrossVerdict::DynamicOnly);
        assert_eq!(classify(true, &clean), CrossVerdict::StaticConservative);
        assert_eq!(classify(false, &clean), CrossVerdict::TrueCt);
    }

    #[test]
    fn unconfirmed_association_is_inconclusive() {
        let unsure = dynamic_with(0.9, 0.5);
        assert_eq!(classify(false, &unsure), CrossVerdict::Inconclusive);
        assert_eq!(classify(true, &unsure), CrossVerdict::Inconclusive);
    }

    #[test]
    fn report_counts_disagreements_and_renders() {
        let report = CrossReport {
            rows: vec![
                CrossRow::new("a", false, &dynamic_with(0.05, 0.8)),
                CrossRow::new("b", true, &dynamic_with(0.05, 0.8)),
            ],
        };
        assert_eq!(report.disagreements().count(), 1);
        let json = report.to_json();
        assert_eq!(json.get("disagreements").and_then(Value::as_u64), Some(1));
        let text = report.to_string();
        assert!(text.contains("static-conservative"));
        assert!(text.contains("over-approximation"));
    }
}
