//! Correlation root-cause analysis (paper §V-C3): once a unit is flagged,
//! find the microarchitectural *features* responsible.
//!
//! Two criteria:
//!
//! * **Feature uniqueness** — features (addresses, PCs, activity words)
//!   present predominantly in one class: the union of each class's features
//!   minus the features shared by all classes.
//! * **Feature ordering** — features present in all classes but
//!   *consistently* observed in a different chronological order per class.

use microsampler_sim::{IterationTrace, UnitId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-class unique features for one unit (drives the paper's Fig. 5
/// scatter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UniquenessReport {
    /// The unit analyzed.
    pub unit: UnitId,
    /// Features observed (in any iteration) of each class.
    pub class_features: BTreeMap<u64, BTreeSet<u64>>,
    /// Features seen in every class — removed from the unique sets.
    pub shared: BTreeSet<u64>,
    /// `class -> features unique to that class` (never seen in any other).
    pub unique: BTreeMap<u64, BTreeSet<u64>>,
}

impl UniquenessReport {
    /// True when at least one class has a feature no other class shows.
    pub fn has_unique_features(&self) -> bool {
        self.unique.values().any(|s| !s.is_empty())
    }

    /// Total number of unique features across classes.
    pub fn unique_count(&self) -> usize {
        self.unique.values().map(BTreeSet::len).sum()
    }
}

/// Extracts feature uniqueness for `unit` (paper §V-C3 criterion 1).
pub fn feature_uniqueness(iterations: &[IterationTrace], unit: UnitId) -> UniquenessReport {
    let _stage = microsampler_obs::span::span("extract");
    let _span = microsampler_obs::span::span("uniqueness");
    let mut class_features: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for it in iterations {
        class_features.entry(it.label).or_default().extend(&it.unit(unit).features);
    }
    let mut shared: Option<BTreeSet<u64>> = None;
    for feats in class_features.values() {
        shared = Some(match shared {
            None => feats.clone(),
            Some(s) => s.intersection(feats).copied().collect(),
        });
    }
    let shared = shared.unwrap_or_default();
    // A feature is unique to a class if no *other* class ever shows it.
    let mut all_others: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for &c in class_features.keys() {
        let mut others = BTreeSet::new();
        for (&o, feats) in &class_features {
            if o != c {
                others.extend(feats.iter().copied());
            }
        }
        all_others.insert(c, others);
    }
    let unique = class_features
        .iter()
        .map(|(&c, feats)| (c, feats.difference(&all_others[&c]).copied().collect()))
        .collect();
    UniquenessReport { unit, class_features, shared, unique }
}

/// A pair of features whose chronological order differs consistently
/// between two classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderMismatch {
    /// First class.
    pub class_a: u64,
    /// Second class.
    pub class_b: u64,
    /// Feature observed earlier in `class_a` but later in `class_b`.
    pub first_in_a: u64,
    /// Feature observed later in `class_a` but earlier in `class_b`.
    pub first_in_b: u64,
}

/// Per-class dominant feature orderings and the mismatches between them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderingReport {
    /// The unit analyzed.
    pub unit: UnitId,
    /// `class -> dominant first-occurrence order` (the most frequent order
    /// signature among that class's iterations).
    pub class_orders: BTreeMap<u64, Vec<u64>>,
    /// Feature pairs consistently ordered differently across classes.
    pub mismatches: Vec<OrderMismatch>,
}

impl OrderingReport {
    /// True when any cross-class ordering mismatch was found.
    pub fn has_mismatches(&self) -> bool {
        !self.mismatches.is_empty()
    }
}

/// Extracts feature-ordering mismatches for `unit` (paper §V-C3
/// criterion 2). For each class the *dominant* (most frequent)
/// first-occurrence order is taken; for every pair of classes, every pair
/// of features common to both orders that appears in opposite relative
/// order is reported.
pub fn feature_ordering(iterations: &[IterationTrace], unit: UnitId) -> OrderingReport {
    let _stage = microsampler_obs::span::span("extract");
    let _span = microsampler_obs::span::span("ordering");
    // Dominant order signature per class.
    let mut counts: BTreeMap<u64, BTreeMap<Vec<u64>, usize>> = BTreeMap::new();
    for it in iterations {
        *counts.entry(it.label).or_default().entry(it.unit(unit).order.clone()).or_insert(0) += 1;
    }
    let class_orders: BTreeMap<u64, Vec<u64>> = counts
        .into_iter()
        .map(|(class, orders)| {
            let dominant = orders
                .into_iter()
                .max_by_key(|(order, n)| (*n, std::cmp::Reverse(order.clone())))
                .map(|(order, _)| order)
                .unwrap_or_default();
            (class, dominant)
        })
        .collect();

    let mut mismatches = Vec::new();
    let classes: Vec<u64> = class_orders.keys().copied().collect();
    for (i, &a) in classes.iter().enumerate() {
        for &b in &classes[i + 1..] {
            let order_a = &class_orders[&a];
            let order_b = &class_orders[&b];
            let pos_b: BTreeMap<u64, usize> =
                order_b.iter().enumerate().map(|(p, &f)| (f, p)).collect();
            // Common features in class-a order.
            let common: Vec<(u64, usize)> =
                order_a.iter().filter_map(|f| pos_b.get(f).map(|&p| (*f, p))).collect();
            for (x, (fx, px)) in common.iter().enumerate() {
                for (fy, py) in &common[x + 1..] {
                    // fx precedes fy in class a; if fy precedes fx in b,
                    // that's an ordering mismatch.
                    if py < px {
                        mismatches.push(OrderMismatch {
                            class_a: a,
                            class_b: b,
                            first_in_a: *fx,
                            first_in_b: *fy,
                        });
                    }
                }
            }
        }
    }
    OrderingReport { unit, class_orders, mismatches }
}

/// Maps observed feature values of one unit to the values of a paired
/// unit at the same queue slot and cycle — e.g. `SQ-ADDR → SQ-PC` answers
/// "which instructions produced these store addresses?" (paper §VII-A2:
/// the flagged `ME-V1-MV` addresses all map back to `memmove`).
///
/// Requires raw matrices ([`microsampler_sim::TraceConfig::keep_matrices`]);
/// returns `None` when any iteration lacks them.
pub fn map_features(
    iterations: &[IterationTrace],
    value_unit: UnitId,
    key_unit: UnitId,
) -> Option<BTreeMap<u64, BTreeSet<u64>>> {
    let _stage = microsampler_obs::span::span("extract");
    let _span = microsampler_obs::span::span("map");
    let mut map: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for it in iterations {
        let values = it.unit(value_unit).rows.as_ref()?;
        let keys = it.unit(key_unit).rows.as_ref()?;
        for (vrow, krow) in values.iter().zip(keys) {
            for (slot, &v) in vrow.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                if let Some(&k) = krow.get(slot) {
                    if k != 0 {
                        map.entry(v).or_default().insert(k);
                    }
                }
            }
        }
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_sim::{TraceConfig, Tracer};

    /// Builds iterations where each class's SQ-ADDR rows contain the given
    /// feature sequences.
    fn traces(per_class_rows: &[(u64, Vec<Vec<u64>>)], reps: usize) -> Vec<IterationTrace> {
        let mut tracer = Tracer::new(TraceConfig::default());
        tracer.scr_start(0);
        let mut t = 0;
        for _ in 0..reps {
            for (label, rows) in per_class_rows {
                tracer.iter_start(t, *label);
                for (c, row) in rows.iter().enumerate() {
                    tracer.begin_cycle(t + c as u64 + 1);
                    for unit in UnitId::ALL {
                        if unit == UnitId::SqAddr {
                            tracer.record_row(unit, row);
                        } else {
                            tracer.record_row(unit, &[0]);
                        }
                    }
                }
                t += 100;
                tracer.iter_end(t);
            }
        }
        tracer.scr_end(u64::MAX);
        tracer.iterations
    }

    #[test]
    fn uniqueness_separates_classes() {
        // Class 0 touches 0xA00 and 0xC00; class 1 touches 0xB00 and 0xC00.
        let iters = traces(
            &[(0, vec![vec![0xA00, 0], vec![0xC00, 0]]), (1, vec![vec![0xB00, 0], vec![0xC00, 0]])],
            3,
        );
        let r = feature_uniqueness(&iters, UnitId::SqAddr);
        assert!(r.has_unique_features());
        assert_eq!(r.unique[&0], [0xA00].into());
        assert_eq!(r.unique[&1], [0xB00].into());
        assert_eq!(r.shared, [0xC00].into());
        assert_eq!(r.unique_count(), 2);
    }

    #[test]
    fn no_uniqueness_when_classes_identical() {
        let iters = traces(&[(0, vec![vec![0xA00, 0xB00]]), (1, vec![vec![0xA00, 0xB00]])], 2);
        let r = feature_uniqueness(&iters, UnitId::SqAddr);
        assert!(!r.has_unique_features());
        assert_eq!(r.shared, [0xA00, 0xB00].into());
    }

    #[test]
    fn ordering_mismatch_detected() {
        // Same features, opposite order per class.
        let iters = traces(
            &[(0, vec![vec![0x111, 0], vec![0x222, 0]]), (1, vec![vec![0x222, 0], vec![0x111, 0]])],
            4,
        );
        let uniq = feature_uniqueness(&iters, UnitId::SqAddr);
        assert!(!uniq.has_unique_features(), "features are shared, only order differs");
        let ord = feature_ordering(&iters, UnitId::SqAddr);
        assert!(ord.has_mismatches());
        let m = ord.mismatches[0];
        assert_eq!((m.first_in_a, m.first_in_b), (0x111, 0x222));
    }

    #[test]
    fn consistent_order_is_clean() {
        let iters = traces(
            &[(0, vec![vec![0x111, 0], vec![0x222, 0]]), (1, vec![vec![0x111, 0], vec![0x222, 0]])],
            4,
        );
        let ord = feature_ordering(&iters, UnitId::SqAddr);
        assert!(!ord.has_mismatches());
        assert_eq!(ord.class_orders[&0], vec![0x111, 0x222]);
    }

    #[test]
    fn dominant_order_wins_over_noise() {
        // Class 1 mostly orders (B, A) but one noisy iteration is (A, B).
        let mut rows =
            vec![(0, vec![vec![0xA, 0], vec![0xB, 0]]), (1, vec![vec![0xB, 0], vec![0xA, 0]])];
        let mut iters = traces(&rows, 5);
        rows[1] = (1, vec![vec![0xA, 0], vec![0xB, 0]]);
        iters.extend(traces(&rows, 1).into_iter().filter(|i| i.label == 1));
        let ord = feature_ordering(&iters, UnitId::SqAddr);
        assert_eq!(ord.class_orders[&1], vec![0xB, 0xA], "dominant order should win");
        assert!(ord.has_mismatches());
    }

    #[test]
    fn map_features_pairs_slots_positionally() {
        let mut tracer = Tracer::new(TraceConfig { keep_matrices: true, ..TraceConfig::default() });
        tracer.scr_start(0);
        tracer.iter_start(0, 0);
        tracer.begin_cycle(1);
        for unit in UnitId::ALL {
            match unit {
                UnitId::SqAddr => tracer.record_row(unit, &[0xA00, 0xB00, 0]),
                UnitId::SqPc => tracer.record_row(unit, &[0x100, 0x104, 0]),
                _ => tracer.record_row(unit, &[0]),
            }
        }
        tracer.begin_cycle(2);
        for unit in UnitId::ALL {
            match unit {
                UnitId::SqAddr => tracer.record_row(unit, &[0xA00, 0, 0]),
                UnitId::SqPc => tracer.record_row(unit, &[0x108, 0, 0]),
                _ => tracer.record_row(unit, &[0]),
            }
        }
        tracer.iter_end(3);
        tracer.scr_end(4);
        let map =
            map_features(&tracer.iterations, UnitId::SqAddr, UnitId::SqPc).expect("matrices kept");
        assert_eq!(map[&0xA00], [0x100, 0x108].into());
        assert_eq!(map[&0xB00], [0x104].into());
    }

    #[test]
    fn map_features_requires_matrices() {
        let iters = traces(&[(0, vec![vec![0x1, 0]])], 1);
        assert!(map_features(&iters, UnitId::SqAddr, UnitId::SqPc).is_none());
    }

    #[test]
    fn three_classes_pairwise() {
        let iters = traces(
            &[(0, vec![vec![0x1, 0x2]]), (1, vec![vec![0x1, 0x2]]), (2, vec![vec![0x2, 0x1]])],
            3,
        );
        let ord = feature_ordering(&iters, UnitId::SqAddr);
        // Mismatches against class 2 from both class 0 and class 1.
        assert_eq!(ord.mismatches.len(), 2);
        assert!(ord.mismatches.iter().all(|m| m.class_b == 2));
    }
}
