//! MicroSampler: microarchitecture-level leakage detection for
//! constant-time code (DSN 2025).
//!
//! The framework consumes labeled per-iteration microarchitectural traces
//! (produced by [`microsampler_sim`]'s cycle-accurate core, or parsed from
//! a text simulation log) and answers: *does any microarchitectural
//! structure's behavior correlate with the secret data?*
//!
//! The pipeline mirrors the paper's Figure 1:
//!
//! 1. **RTL simulation** — run the kernel under test with markers around
//!    each algorithmic iteration ([`microsampler_sim`]).
//! 2. **Trace pre-processing** — per-iteration snapshot matrices, hashed
//!    with SipHash (done streaming inside the tracer).
//! 3. **Statistical correlation analysis** — contingency tables of hash
//!    frequencies per secret class; Cramér's V + chi-squared p-value per
//!    unit ([`analyze`]).
//! 4. **Feature extraction** — for flagged units, the features
//!    (addresses, PCs, activity words) unique to one class
//!    ([`feature_uniqueness`]) or consistently ordered differently
//!    ([`feature_ordering`]).
//!
//! # Example
//!
//! ```
//! use microsampler_core::{analyze, Analyzer};
//! use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
//! use microsampler_sim::{CoreConfig, TraceConfig};
//!
//! // Run the known-leaky naive square-and-multiply on 2 one-byte keys.
//! let kernel = ModexpKernel::new(ModexpVariant::Naive, 1);
//! let mut iterations = Vec::new();
//! for key in microsampler_kernels::inputs::random_keys(2, 1, 1) {
//!     let run = kernel.run(CoreConfig::small_boom(), &key, TraceConfig::default())?;
//!     iterations.extend(run.iterations);
//! }
//! let report = analyze(&iterations);
//! assert!(report.is_leaky(), "naive SAM must be flagged");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analyzer;
mod crossval;
mod features;
mod report;
mod sequential;

pub use analyzer::{analyze, Analyzer, EscalationOutcome};
pub use crossval::{classify, classify_spec, CrossReport, CrossRow, CrossVerdict, SpecVerdict};
pub use features::{
    feature_ordering, feature_uniqueness, map_features, OrderMismatch, OrderingReport,
    UniquenessReport,
};
pub use report::{association_to_json, AnalysisReport, UnitReport, DEGRADED_DROP_FRACTION};
pub use sequential::{SequentialAnalyzer, StopLook, StopTrace, STOP_SCHEMA};

// Re-exported so downstream users need only this crate for the common path.
pub use microsampler_sim::{parse_text_log, IterationTrace, TraceConfig, UnitId};
pub use microsampler_stats::{Association, SeqConfig, SeqVerdict, StreamingAssociation, Strength};
