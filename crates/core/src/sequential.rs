//! Streaming (anytime) analysis: the batch [`Analyzer`](crate::Analyzer)
//! pipeline restructured around incremental contingency tables so the
//! audit can *peek* at the verdict after every batch of trials and stop
//! as soon as the confidence sequence closes.
//!
//! A [`SequentialAnalyzer`] ingests [`IterationTrace`]s one at a time,
//! maintaining the same 16-unit × {timed, timeless} association state the
//! batch analyzer computes, plus the iteration/class/drop counters and
//! pipeline sums. Its [`report`](SequentialAnalyzer::report) is
//! bit-identical to [`analyze`](crate::analyze) over the same iterations
//! in the same order (property-tested in `crates/stats` and
//! `tests/sequential.rs`); its [`look`](SequentialAnalyzer::look) judges
//! all 32 associations against a [`SeqConfig`] confidence sequence and
//! appends one entry to the run's [`StopTrace`].
//!
//! The stop trace is the audit's statistical receipt: every look's
//! sample size, confidence radius, extreme statistics, and verdict, in
//! the stable `microsampler-stop-v1` JSON schema that run reports,
//! `repro serve` job streams, and the robustness stability curves all
//! embed.

use crate::report::{AnalysisReport, UnitReport};
use microsampler_obs::Value;
use microsampler_sim::{IterationTrace, UnitId};
use microsampler_stats::sequential::association_streaming;
use microsampler_stats::{SeqConfig, SeqVerdict, StreamingAssociation};
use std::collections::BTreeSet;

/// Schema tag on serialized stopping traces.
pub const STOP_SCHEMA: &str = "microsampler-stop-v1";

/// One confidence-sequence check ("look") in a stopping trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopLook {
    /// 1-based look index (the error-spending schedule position).
    pub look: u64,
    /// Trials spent when this look happened (caller's budget unit).
    pub trials: u64,
    /// Iterations (= per-association observations) pooled so far.
    pub n: u64,
    /// Confidence radius around each V estimate at this look.
    pub radius: f64,
    /// Look-corrected p-value threshold for the leaky decision.
    pub p_threshold: f64,
    /// Largest Cramér's V across all monitored associations.
    pub max_v: f64,
    /// Largest bias-corrected Cramér's V across all monitored
    /// associations (the statistic the clean decision bounds).
    pub max_v_corrected: f64,
    /// Smallest p-value across all monitored associations.
    pub min_p: f64,
    /// The anytime verdict at this look.
    pub verdict: SeqVerdict,
}

/// The per-run stopping trace: every look plus the final outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StopTrace {
    /// Confidence-sequence parameters the looks were judged under.
    pub config: SeqConfig,
    /// Every look, in order.
    pub looks: Vec<StopLook>,
    /// The latched verdict (undecided until a look closes the sequence
    /// or [`SequentialAnalyzer::resolve`] falls back to the batch rule).
    pub verdict: SeqVerdict,
    /// True when the verdict came from the fixed-budget batch rule at
    /// budget exhaustion rather than from the confidence sequence.
    pub fallback: bool,
}

impl StopTrace {
    /// Trials spent when the verdict latched (the last recorded look),
    /// or 0 if no look has happened.
    pub fn trials_spent(&self) -> u64 {
        self.looks.last().map_or(0, |l| l.trials)
    }

    /// Renders the trace in the stable `microsampler-stop-v1` schema.
    pub fn to_json(&self, id: &str) -> Value {
        Value::object()
            .field("schema", STOP_SCHEMA)
            .field("id", id)
            .field("alpha", self.config.alpha)
            .field("boundary_scale", self.config.boundary_scale)
            .field("v_strong", self.config.v_strong)
            .field("p_significant", self.config.p_significant)
            .field("min_n", self.config.min_n)
            .field("verdict", self.verdict.name())
            .field("fallback", self.fallback)
            .field("trials_spent", self.trials_spent())
            .field(
                "looks",
                Value::Array(
                    self.looks
                        .iter()
                        .map(|l| {
                            Value::object()
                                .field("look", l.look)
                                .field("trials", l.trials)
                                .field("n", l.n)
                                .field("radius", l.radius)
                                .field("p_threshold", l.p_threshold)
                                .field("max_v", l.max_v)
                                .field("max_v_corrected", l.max_v_corrected)
                                .field("min_p", l.min_p)
                                .field("verdict", l.verdict.name())
                                .build()
                        })
                        .collect(),
                ),
            )
            .build()
    }
}

/// Incremental counterpart of [`Analyzer`](crate::Analyzer): same
/// analysis state, maintained per ingested iteration instead of
/// recomputed from scratch, plus the confidence-sequence bookkeeping.
#[derive(Clone, Debug)]
pub struct SequentialAnalyzer {
    config: SeqConfig,
    // Indexed like UnitId::ALL; .0 is the timed table, .1 timeless.
    tables: Vec<(StreamingAssociation, StreamingAssociation)>,
    classes: BTreeSet<u64>,
    iterations: usize,
    dropped_cycles: u64,
    sampled_cycles: u64,
    pipeline: microsampler_sim::PipelineStats,
    trace: StopTrace,
}

impl Default for SequentialAnalyzer {
    fn default() -> SequentialAnalyzer {
        SequentialAnalyzer::new(SeqConfig::default())
    }
}

impl SequentialAnalyzer {
    /// Creates an analyzer judging against `config`.
    pub fn new(config: SeqConfig) -> SequentialAnalyzer {
        SequentialAnalyzer {
            config,
            tables: UnitId::ALL
                .iter()
                .map(|_| (StreamingAssociation::new(), StreamingAssociation::new()))
                .collect(),
            classes: BTreeSet::new(),
            iterations: 0,
            dropped_cycles: 0,
            sampled_cycles: 0,
            pipeline: microsampler_sim::PipelineStats::default(),
            trace: StopTrace { config, ..StopTrace::default() },
        }
    }

    /// Streams one iteration in — the incremental mirror of what
    /// [`Analyzer::contingency`](crate::Analyzer::contingency) records
    /// for every unit, plus the report counters.
    pub fn ingest(&mut self, it: &IterationTrace) {
        for (i, &unit) in UnitId::ALL.iter().enumerate() {
            let u = it.unit(unit);
            self.tables[i].0.observe(it.label, u.hash);
            self.tables[i].1.observe(it.label, u.hash_timeless);
        }
        self.classes.insert(it.label);
        self.iterations += 1;
        self.dropped_cycles += it.dropped_cycles;
        self.sampled_cycles += it.sampled_cycles();
        self.pipeline.add(&it.pipeline);
    }

    /// Streams a batch in, in order.
    pub fn ingest_all(&mut self, iterations: &[IterationTrace]) {
        for it in iterations {
            self.ingest(it);
        }
    }

    /// Iterations ingested so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The latched verdict (undecided until a look closes the sequence).
    pub fn verdict(&self) -> SeqVerdict {
        self.trace.verdict
    }

    /// The stopping trace accumulated so far.
    pub fn trace(&self) -> &StopTrace {
        &self.trace
    }

    /// Performs one confidence-sequence check over all 32 associations,
    /// records it in the stopping trace, and latches the verdict once
    /// decided. `trials` is the budget spent so far in the caller's
    /// unit (it is recorded, not interpreted). Once latched, further
    /// looks return the latched verdict without recording.
    pub fn look(&mut self, trials: u64) -> SeqVerdict {
        if self.trace.verdict.is_decided() {
            return self.trace.verdict;
        }
        let assocs: Vec<microsampler_stats::Association> = self
            .tables
            .iter_mut()
            .flat_map(|(timed, timeless)| [timed.current(), timeless.current()])
            .collect();
        let n = self.tables[0].0.n();
        let look = self.trace.looks.len() as u64 + 1;
        let verdict = self.config.judge(n, look, assocs.iter());
        self.trace.looks.push(StopLook {
            look,
            trials,
            n,
            radius: self.config.radius(n, look),
            p_threshold: self.config.p_threshold(look),
            max_v: assocs.iter().map(|a| a.cramers_v).fold(0.0, f64::max),
            max_v_corrected: assocs.iter().map(|a| a.cramers_v_corrected).fold(0.0, f64::max),
            min_p: assocs.iter().map(|a| a.p_value).fold(1.0, f64::min),
            verdict,
        });
        self.trace.verdict = verdict;
        verdict
    }

    /// Resolves a still-open sequence at budget exhaustion by falling
    /// back to the paper's fixed-budget rule on everything ingested:
    /// leaky if any unit's association [`is_leak`] fires, clean
    /// otherwise. Marks the trace as a fallback. No-op once decided.
    ///
    /// [`is_leak`]: microsampler_stats::Association::is_leak
    pub fn resolve(&mut self, trials: u64) -> SeqVerdict {
        if self.trace.verdict.is_decided() {
            return self.trace.verdict;
        }
        let leaky = self
            .tables
            .iter_mut()
            .any(|(timed, timeless)| timed.current().is_leak() || timeless.current().is_leak());
        let verdict = if leaky { SeqVerdict::Leaky } else { SeqVerdict::Clean };
        self.trace.verdict = verdict;
        self.trace.fallback = true;
        if let Some(last) = self.trace.looks.last_mut() {
            if last.trials == trials {
                last.verdict = verdict;
                return verdict;
            }
        }
        let n = self.tables[0].0.n();
        let look = self.trace.looks.len() as u64 + 1;
        let assocs: Vec<microsampler_stats::Association> = self
            .tables
            .iter_mut()
            .flat_map(|(timed, timeless)| [timed.current(), timeless.current()])
            .collect();
        self.trace.looks.push(StopLook {
            look,
            trials,
            n,
            radius: self.config.radius(n, look),
            p_threshold: self.config.p_threshold(look),
            max_v: assocs.iter().map(|a| a.cramers_v).fold(0.0, f64::max),
            max_v_corrected: assocs.iter().map(|a| a.cramers_v_corrected).fold(0.0, f64::max),
            min_p: assocs.iter().map(|a| a.p_value).fold(1.0, f64::min),
            verdict,
        });
        verdict
    }

    /// Builds the full [`AnalysisReport`] from the streaming state —
    /// bit-identical to [`analyze`](crate::analyze) over the same
    /// iterations in the same order.
    pub fn report(&mut self) -> AnalysisReport {
        let units = UnitId::ALL
            .iter()
            .enumerate()
            .map(|(i, &unit)| UnitReport {
                unit,
                assoc: association_streaming(self.tables[i].0.table()),
                assoc_timeless: association_streaming(self.tables[i].1.table()),
            })
            .collect();
        AnalysisReport {
            units,
            iterations: self.iterations,
            classes: self.classes.len(),
            dropped_cycles: self.dropped_cycles,
            sampled_cycles: self.sampled_cycles,
            pipeline: self.pipeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_sim::{TraceConfig, Tracer};

    fn synthetic(n_per_class: usize, leak_unit: Option<UnitId>) -> Vec<IterationTrace> {
        let mut tracer = Tracer::new(TraceConfig::default());
        tracer.scr_start(0);
        for i in 0..2 * n_per_class {
            let label = (i % 2) as u64;
            tracer.iter_start(i as u64 * 10, label);
            for c in 0..3u64 {
                tracer.begin_cycle(i as u64 * 10 + c);
                for unit in UnitId::ALL {
                    let row = if Some(unit) == leak_unit {
                        vec![0x1000 + label * 0x10, c]
                    } else {
                        vec![0x1000, c]
                    };
                    tracer.record_row(unit, &row);
                }
            }
            tracer.iter_end(i as u64 * 10 + 3);
        }
        tracer.scr_end(u64::MAX);
        tracer.iterations
    }

    #[test]
    fn streaming_report_is_bit_identical_to_batch() {
        for leak in [None, Some(UnitId::SqAddr)] {
            let iters = synthetic(20, leak);
            let batch = crate::analyze(&iters);
            let mut seq = SequentialAnalyzer::default();
            seq.ingest_all(&iters);
            let streamed = seq.report();
            assert_eq!(streamed, batch);
            assert_eq!(streamed.to_json().render_compact(), batch.to_json().render_compact());
        }
    }

    #[test]
    fn leaky_kernel_closes_early() {
        let iters = synthetic(32, Some(UnitId::SqAddr));
        let mut seq = SequentialAnalyzer::default();
        let mut spent = 0;
        for chunk in iters.chunks(8) {
            seq.ingest_all(chunk);
            spent += chunk.len() as u64;
            if seq.look(spent).is_decided() {
                break;
            }
        }
        assert_eq!(seq.verdict(), SeqVerdict::Leaky);
        assert!(
            seq.iterations() < iters.len(),
            "a perfect split must stop early (used {})",
            seq.iterations()
        );
        let trace = seq.trace();
        assert!(!trace.fallback);
        assert_eq!(trace.trials_spent(), spent);
        assert_eq!(trace.looks.last().unwrap().verdict, SeqVerdict::Leaky);
    }

    #[test]
    fn clean_kernel_closes_clean() {
        let iters = synthetic(32, None);
        let mut seq = SequentialAnalyzer::default();
        let mut spent = 0;
        for chunk in iters.chunks(8) {
            seq.ingest_all(chunk);
            spent += chunk.len() as u64;
            if seq.look(spent).is_decided() {
                break;
            }
        }
        assert_eq!(seq.verdict(), SeqVerdict::Clean);
    }

    #[test]
    fn verdict_latches_and_resolve_is_noop_once_decided() {
        let iters = synthetic(32, Some(UnitId::RobPc));
        let mut seq = SequentialAnalyzer::default();
        seq.ingest_all(&iters);
        let v = seq.look(64);
        assert!(v.is_decided());
        let looks_before = seq.trace().looks.len();
        assert_eq!(seq.look(128), v, "latched verdict must not change");
        assert_eq!(seq.resolve(128), v);
        assert_eq!(seq.trace().looks.len(), looks_before, "no looks recorded after latch");
        assert!(!seq.trace().fallback);
    }

    #[test]
    fn resolve_falls_back_to_batch_rule() {
        // Two iterations: V = 1 but p is weak — the sequence cannot
        // close, and the batch rule says "not a leak".
        let iters = synthetic(1, Some(UnitId::SqPc));
        let mut seq = SequentialAnalyzer::default();
        seq.ingest_all(&iters);
        assert_eq!(seq.look(2), SeqVerdict::Undecided);
        let v = seq.resolve(2);
        assert_eq!(v, SeqVerdict::Clean);
        assert!(seq.trace().fallback);
        assert_eq!(seq.verdict(), SeqVerdict::Clean);
        // The fallback folded into the existing look at the same spend.
        assert_eq!(seq.trace().looks.len(), 1);
    }

    #[test]
    fn stop_trace_json_schema() {
        let iters = synthetic(16, Some(UnitId::SqAddr));
        let mut seq = SequentialAnalyzer::default();
        seq.ingest_all(&iters);
        seq.look(32);
        let v = seq.trace().to_json("table5/test");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(STOP_SCHEMA));
        assert_eq!(v.get("id").unwrap().as_str(), Some("table5/test"));
        for field in
            ["alpha", "boundary_scale", "v_strong", "p_significant", "min_n", "trials_spent"]
        {
            assert!(v.get(field).is_some(), "{field} missing");
        }
        assert!(SeqVerdict::from_name(v.get("verdict").unwrap().as_str().unwrap()).is_some());
        let looks = v.get("looks").unwrap().as_array().unwrap();
        assert_eq!(looks.len(), 1);
        for field in [
            "look",
            "trials",
            "n",
            "radius",
            "p_threshold",
            "max_v",
            "max_v_corrected",
            "min_p",
            "verdict",
        ] {
            assert!(looks[0].get(field).is_some(), "looks[0].{field} missing");
        }
        let text = v.render_compact();
        assert_eq!(microsampler_obs::json::parse(&text).unwrap(), v);
    }
}
