use microsampler_sim::UnitId;
use microsampler_stats::Association;
use std::fmt;

/// Per-unit analysis result: association with and without timing
/// information (the paper's Fig. 9 distinction).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitReport {
    /// The microarchitectural unit.
    pub unit: UnitId,
    /// Association between secret classes and full snapshot hashes.
    pub assoc: Association,
    /// Association with consecutive duplicate rows consolidated
    /// (timing removed).
    pub assoc_timeless: Association,
}

impl UnitReport {
    /// The paper's leak verdict for this unit: strong and statistically
    /// significant association.
    pub fn is_leaky(&self) -> bool {
        self.assoc.is_leak()
    }

    /// Leaky even after removing timing information — the correlation is
    /// in *what* happened, not just *when*.
    pub fn is_leaky_without_timing(&self) -> bool {
        self.assoc_timeless.is_leak()
    }
}

/// The full analysis report: one entry per tracked unit, in canonical
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisReport {
    /// Per-unit results, indexed like [`UnitId::ALL`].
    pub units: Vec<UnitReport>,
    /// Number of iterations analyzed.
    pub iterations: usize,
    /// Number of distinct secret classes observed.
    pub classes: usize,
}

impl AnalysisReport {
    /// The report for one unit.
    pub fn unit(&self, unit: UnitId) -> &UnitReport {
        &self.units[unit.index()]
    }

    /// Units flagged as leaky, most strongly associated first.
    pub fn leaky_units(&self) -> Vec<&UnitReport> {
        let mut v: Vec<&UnitReport> = self.units.iter().filter(|u| u.is_leaky()).collect();
        v.sort_by(|a, b| b.assoc.cramers_v.total_cmp(&a.assoc.cramers_v));
        v
    }

    /// True when any unit is flagged.
    pub fn is_leaky(&self) -> bool {
        self.units.iter().any(|u| u.is_leaky())
    }

    /// True when some unit shows strong association whose significance is
    /// still unconfirmed (p ≥ 0.05) — the analyzer's signal to escalate
    /// the number of inputs (paper §VII-D, "False Positives").
    pub fn needs_more_samples(&self) -> bool {
        self.units.iter().any(|u| {
            u.assoc.cramers_v > microsampler_stats::CRAMERS_V_STRONG && !u.assoc.is_significant()
        })
    }

    /// `(unit name, Cramér's V)` series in canonical unit order — the data
    /// behind the paper's Fig. 3/4/7/9/10 bar charts.
    pub fn v_series(&self) -> Vec<(&'static str, f64)> {
        self.units.iter().map(|u| (u.unit.name(), u.assoc.cramers_v)).collect()
    }

    /// Same series computed on timing-removed snapshots (Fig. 9 orange
    /// bars).
    pub fn v_series_timeless(&self) -> Vec<(&'static str, f64)> {
        self.units.iter().map(|u| (u.unit.name(), u.assoc_timeless.cramers_v)).collect()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MicroSampler analysis: {} iterations, {} classes",
            self.iterations, self.classes
        )?;
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>10} {:>8}  verdict",
            "unit", "V", "p-value", "V(no-t)", "hashes"
        )?;
        for u in &self.units {
            writeln!(
                f,
                "{:<12} {:>8.3} {:>10.2e} {:>10.3} {:>8}  {}",
                u.unit.name(),
                u.assoc.cramers_v,
                u.assoc.p_value,
                u.assoc_timeless.cramers_v,
                u.assoc.categories,
                if u.is_leaky() { "LEAK" } else { "ok" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_stats::Association;

    fn report_with(v: f64, p: f64) -> AnalysisReport {
        let mut units: Vec<UnitReport> = UnitId::ALL
            .iter()
            .map(|&unit| UnitReport {
                unit,
                assoc: Association::none(),
                assoc_timeless: Association::none(),
            })
            .collect();
        units[0].assoc.cramers_v = v;
        units[0].assoc.p_value = p;
        AnalysisReport { units, iterations: 10, classes: 2 }
    }

    #[test]
    fn leak_verdict_combines_v_and_p() {
        assert!(report_with(0.9, 0.001).is_leaky());
        assert!(!report_with(0.9, 0.5).is_leaky());
        assert!(!report_with(0.2, 0.001).is_leaky());
    }

    #[test]
    fn escalation_signal() {
        assert!(report_with(0.9, 0.5).needs_more_samples());
        assert!(!report_with(0.9, 0.001).needs_more_samples());
        assert!(!report_with(0.1, 0.5).needs_more_samples());
    }

    #[test]
    fn leaky_units_sorted_by_strength() {
        let mut r = report_with(0.6, 0.001);
        r.units[3].assoc.cramers_v = 0.9;
        r.units[3].assoc.p_value = 0.001;
        let leaky = r.leaky_units();
        assert_eq!(leaky.len(), 2);
        assert!(leaky[0].assoc.cramers_v >= leaky[1].assoc.cramers_v);
    }

    #[test]
    fn display_lists_all_units() {
        let s = report_with(0.9, 0.001).to_string();
        for u in UnitId::ALL {
            assert!(s.contains(u.name()), "missing {}", u.name());
        }
        assert!(s.contains("LEAK"));
    }

    #[test]
    fn v_series_order_matches_units() {
        let r = report_with(0.4, 0.2);
        let s = r.v_series();
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].0, "SQ-ADDR");
        assert!((s[0].1 - 0.4).abs() < 1e-12);
    }
}
