use microsampler_obs::Value;
use microsampler_sim::{PipelineStats, UnitId};
use microsampler_stats::Association;
use std::fmt;

/// Renders an [`Association`] as a JSON value (stable schema used by both
/// report variants and by `repro --json` for bare contingency tables).
pub fn association_to_json(a: &Association) -> Value {
    Value::object()
        .field("chi2", a.chi2)
        .field("dof", a.dof)
        .field("p_value", a.p_value)
        .field("cramers_v", a.cramers_v)
        .field("cramers_v_corrected", a.cramers_v_corrected)
        .field("n", a.n)
        .field("classes", a.classes)
        .field("categories", a.categories)
        .field("significant", a.is_significant())
        .build()
}

/// Per-unit analysis result: association with and without timing
/// information (the paper's Fig. 9 distinction).
#[derive(Clone, Debug, PartialEq)]
pub struct UnitReport {
    /// The microarchitectural unit.
    pub unit: UnitId,
    /// Association between secret classes and full snapshot hashes.
    pub assoc: Association,
    /// Association with consecutive duplicate rows consolidated
    /// (timing removed).
    pub assoc_timeless: Association,
}

impl UnitReport {
    /// The paper's leak verdict for this unit: strong and statistically
    /// significant association.
    pub fn is_leaky(&self) -> bool {
        self.assoc.is_leak()
    }

    /// Leaky even after removing timing information — the correlation is
    /// in *what* happened, not just *when*.
    pub fn is_leaky_without_timing(&self) -> bool {
        self.assoc_timeless.is_leak()
    }

    /// Renders this unit's result as a JSON value (stable schema: `unit`,
    /// `leaky`, `leaky_without_timing`, `assoc`, `assoc_timeless`).
    pub fn to_json(&self) -> Value {
        Value::object()
            .field("unit", self.unit.name())
            .field("leaky", self.is_leaky())
            .field("leaky_without_timing", self.is_leaky_without_timing())
            .field("assoc", association_to_json(&self.assoc))
            .field("assoc_timeless", association_to_json(&self.assoc_timeless))
            .build()
    }
}

/// Fraction of snapshot cycles lost above which a report is flagged
/// [`AnalysisReport::is_degraded`]: the verdicts are still computed, but
/// the analyzer refuses to present them as a clean classification.
pub const DEGRADED_DROP_FRACTION: f64 = 0.05;

/// The full analysis report: one entry per tracked unit, in canonical
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisReport {
    /// Per-unit results, indexed like [`UnitId::ALL`].
    pub units: Vec<UnitReport>,
    /// Number of iterations analyzed.
    pub iterations: usize,
    /// Number of distinct secret classes observed.
    pub classes: usize,
    /// Snapshot cycles lost to injected sampling faults across all
    /// iterations.
    pub dropped_cycles: u64,
    /// Snapshot cycles actually captured across all iterations.
    pub sampled_cycles: u64,
    /// Pipeline profiling counters summed over the analyzed iterations
    /// (per-EU occupancy, IPC, stall causes).
    pub pipeline: PipelineStats,
}

impl AnalysisReport {
    /// The report for one unit.
    pub fn unit(&self, unit: UnitId) -> &UnitReport {
        &self.units[unit.index()]
    }

    /// Units flagged as leaky, most strongly associated first.
    pub fn leaky_units(&self) -> Vec<&UnitReport> {
        let mut v: Vec<&UnitReport> = self.units.iter().filter(|u| u.is_leaky()).collect();
        v.sort_by(|a, b| b.assoc.cramers_v.total_cmp(&a.assoc.cramers_v));
        v
    }

    /// True when any unit is flagged.
    pub fn is_leaky(&self) -> bool {
        self.units.iter().any(|u| u.is_leaky())
    }

    /// True when enough snapshot cycles were lost (more than
    /// [`DEGRADED_DROP_FRACTION`] of the total) that the verdicts rest on
    /// an incomplete trace. A degraded report must not be read as a clean
    /// constant-time classification — the missing cycles could hide
    /// exactly the rows that differ between classes.
    pub fn is_degraded(&self) -> bool {
        let total = self.dropped_cycles + self.sampled_cycles;
        self.dropped_cycles > 0
            && self.dropped_cycles as f64 > DEGRADED_DROP_FRACTION * total as f64
    }

    /// True when some unit shows strong association whose significance is
    /// still unconfirmed (p ≥ 0.05) — the analyzer's signal to escalate
    /// the number of inputs (paper §VII-D, "False Positives").
    pub fn needs_more_samples(&self) -> bool {
        self.units.iter().any(|u| {
            u.assoc.cramers_v > microsampler_stats::CRAMERS_V_STRONG && !u.assoc.is_significant()
        })
    }

    /// `(unit name, Cramér's V)` series in canonical unit order — the data
    /// behind the paper's Fig. 3/4/7/9/10 bar charts.
    pub fn v_series(&self) -> Vec<(&'static str, f64)> {
        self.units.iter().map(|u| (u.unit.name(), u.assoc.cramers_v)).collect()
    }

    /// Same series computed on timing-removed snapshots (Fig. 9 orange
    /// bars).
    pub fn v_series_timeless(&self) -> Vec<(&'static str, f64)> {
        self.units.iter().map(|u| (u.unit.name(), u.assoc_timeless.cramers_v)).collect()
    }

    /// Renders the report as a JSON value (stable schema: `iterations`,
    /// `classes`, `leaky`, `needs_more_samples`, `degraded`,
    /// `dropped_cycles`, `sampled_cycles`, `pipeline`, `units` in
    /// canonical order).
    pub fn to_json(&self) -> Value {
        Value::object()
            .field("iterations", self.iterations)
            .field("classes", self.classes)
            .field("leaky", self.is_leaky())
            .field("needs_more_samples", self.needs_more_samples())
            .field("degraded", self.is_degraded())
            .field("dropped_cycles", self.dropped_cycles)
            .field("sampled_cycles", self.sampled_cycles)
            .field("pipeline", self.pipeline.to_json())
            .field("units", Value::Array(self.units.iter().map(UnitReport::to_json).collect()))
            .build()
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MicroSampler analysis: {} iterations, {} classes",
            self.iterations, self.classes
        )?;
        if self.is_degraded() {
            writeln!(
                f,
                "DEGRADED: {} of {} snapshot cycles dropped; verdicts below are unreliable",
                self.dropped_cycles,
                self.dropped_cycles + self.sampled_cycles
            )?;
        }
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>10} {:>8}  verdict",
            "unit", "V", "p-value", "V(no-t)", "hashes"
        )?;
        for u in &self.units {
            writeln!(
                f,
                "{:<12} {:>8.3} {:>10.2e} {:>10.3} {:>8}  {}",
                u.unit.name(),
                u.assoc.cramers_v,
                u.assoc.p_value,
                u.assoc_timeless.cramers_v,
                u.assoc.categories,
                if u.is_leaky() { "LEAK" } else { "ok" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_stats::Association;

    fn report_with(v: f64, p: f64) -> AnalysisReport {
        let mut units: Vec<UnitReport> = UnitId::ALL
            .iter()
            .map(|&unit| UnitReport {
                unit,
                assoc: Association::none(),
                assoc_timeless: Association::none(),
            })
            .collect();
        units[0].assoc.cramers_v = v;
        units[0].assoc.p_value = p;
        AnalysisReport {
            units,
            iterations: 10,
            classes: 2,
            dropped_cycles: 0,
            sampled_cycles: 30,
            pipeline: PipelineStats { cycles: 40, committed: 50, ..PipelineStats::default() },
        }
    }

    #[test]
    fn leak_verdict_combines_v_and_p() {
        assert!(report_with(0.9, 0.001).is_leaky());
        assert!(!report_with(0.9, 0.5).is_leaky());
        assert!(!report_with(0.2, 0.001).is_leaky());
    }

    #[test]
    fn escalation_signal() {
        assert!(report_with(0.9, 0.5).needs_more_samples());
        assert!(!report_with(0.9, 0.001).needs_more_samples());
        assert!(!report_with(0.1, 0.5).needs_more_samples());
    }

    #[test]
    fn leaky_units_sorted_by_strength() {
        let mut r = report_with(0.6, 0.001);
        r.units[3].assoc.cramers_v = 0.9;
        r.units[3].assoc.p_value = 0.001;
        let leaky = r.leaky_units();
        assert_eq!(leaky.len(), 2);
        assert!(leaky[0].assoc.cramers_v >= leaky[1].assoc.cramers_v);
    }

    #[test]
    fn degraded_flag_tracks_drop_fraction() {
        let mut r = report_with(0.9, 0.001);
        assert!(!r.is_degraded(), "no drops, no degradation");
        // 1 dropped of 31 total (~3.2%) is under the 5% threshold.
        r.dropped_cycles = 1;
        assert!(!r.is_degraded());
        // 3 dropped of 33 total (~9.1%) crosses it.
        r.dropped_cycles = 3;
        assert!(r.is_degraded());
        assert!(r.to_string().contains("DEGRADED"));
        assert_eq!(r.to_json().get("degraded").unwrap(), &microsampler_obs::Value::Bool(true));
        // Degradation never suppresses the verdicts themselves.
        assert!(r.is_leaky());
    }

    #[test]
    fn display_lists_all_units() {
        let s = report_with(0.9, 0.001).to_string();
        for u in UnitId::ALL {
            assert!(s.contains(u.name()), "missing {}", u.name());
        }
        assert!(s.contains("LEAK"));
    }

    /// Golden schema: downstream tooling reads these exact key paths out
    /// of `repro --json` artifacts; changing them is a breaking change to
    /// the run-report format.
    #[test]
    fn json_schema_is_stable() {
        let r = report_with(0.9, 0.001);
        let v = r.to_json();
        assert_eq!(v.get("iterations").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("classes").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("leaky").unwrap(), &microsampler_obs::Value::Bool(true));
        assert_eq!(v.get("needs_more_samples").unwrap(), &microsampler_obs::Value::Bool(false));
        assert_eq!(v.get("degraded").unwrap(), &microsampler_obs::Value::Bool(false));
        assert_eq!(v.get("dropped_cycles").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("sampled_cycles").unwrap().as_u64(), Some(30));
        let pipeline = v.get("pipeline").unwrap();
        assert_eq!(pipeline.get("cycles").unwrap().as_u64(), Some(40));
        assert_eq!(pipeline.get("committed").unwrap().as_u64(), Some(50));
        assert!(pipeline.get("ipc").unwrap().as_f64().is_some());
        for name in PipelineStats::FIELD_NAMES {
            assert!(pipeline.get(name).is_some(), "pipeline.{name} missing");
        }
        let units = v.get("units").unwrap().as_array().unwrap();
        assert_eq!(units.len(), 16);
        let first = &units[0];
        assert_eq!(first.get("unit").unwrap().as_str(), Some("SQ-ADDR"));
        assert_eq!(first.get("leaky").unwrap(), &microsampler_obs::Value::Bool(true));
        assert!(first.get("leaky_without_timing").is_some());
        for key in ["assoc", "assoc_timeless"] {
            let assoc = first.get(key).unwrap();
            for field in [
                "chi2",
                "dof",
                "p_value",
                "cramers_v",
                "cramers_v_corrected",
                "n",
                "classes",
                "categories",
                "significant",
            ] {
                assert!(assoc.get(field).is_some(), "{key}.{field} missing");
            }
        }
        assert!(
            (first.get("assoc").unwrap().get("cramers_v").unwrap().as_f64().unwrap() - 0.9).abs()
                < 1e-12
        );
        // The rendered document must round-trip through the parser.
        let text = v.render_pretty();
        assert_eq!(microsampler_obs::json::parse(&text).unwrap(), v);
    }

    #[test]
    fn v_series_order_matches_units() {
        let r = report_with(0.4, 0.2);
        let s = r.v_series();
        assert_eq!(s.len(), 16);
        assert_eq!(s[0].0, "SQ-ADDR");
        assert!((s[0].1 - 0.4).abs() < 1e-12);
    }
}
