use crate::report::{AnalysisReport, UnitReport};
use microsampler_sim::{IterationTrace, UnitId};
use microsampler_stats::ContingencyTable;
use std::collections::BTreeSet;

/// The statistical analysis driver (paper §V-C).
///
/// Thresholds default to the paper's: Cramér's V > 0.5 is "strong",
/// p < 0.05 is "significant"; both are required for a leak verdict. The
/// thresholds live on the [`Association`](microsampler_stats::Association)
/// verdict; the analyzer itself is threshold-free and simply computes the
/// per-unit associations.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    _private: (),
}

impl Analyzer {
    /// Creates an analyzer.
    pub fn new() -> Analyzer {
        Analyzer { _private: () }
    }

    /// Builds the contingency table for one unit: classes × snapshot
    /// hashes (paper Table II). `timeless` selects the timing-removed
    /// hashes.
    pub fn contingency(
        &self,
        iterations: &[IterationTrace],
        unit: UnitId,
        timeless: bool,
    ) -> ContingencyTable<u64, u64> {
        let _span = microsampler_obs::span::span("contingency");
        let mut table = ContingencyTable::new();
        for it in iterations {
            let u = it.unit(unit);
            table.record(it.label, if timeless { u.hash_timeless } else { u.hash });
        }
        table
    }

    /// Analyzes all sixteen tracked units.
    ///
    /// The per-unit work (two contingency builds + associations) fans out
    /// across the [`microsampler_par`] worker pool; each unit reads only
    /// its own snapshot hashes, and results are assembled in canonical
    /// unit order, so the report is bit-identical at every thread count.
    pub fn analyze(&self, iterations: &[IterationTrace]) -> AnalysisReport {
        let _span = microsampler_obs::span::span("correlate");
        let classes: BTreeSet<u64> = iterations.iter().map(|i| i.label).collect();
        let units = microsampler_par::map(&UnitId::ALL, |_, &unit| UnitReport {
            unit,
            assoc: self.contingency(iterations, unit, false).association(),
            assoc_timeless: self.contingency(iterations, unit, true).association(),
        });
        let dropped_cycles = iterations.iter().map(|i| i.dropped_cycles).sum();
        let sampled_cycles = iterations.iter().map(|i| i.sampled_cycles()).sum();
        let mut pipeline = microsampler_sim::PipelineStats::default();
        for it in iterations {
            pipeline.add(&it.pipeline);
        }
        AnalysisReport {
            units,
            iterations: iterations.len(),
            classes: classes.len(),
            dropped_cycles,
            sampled_cycles,
            pipeline,
        }
    }

    /// Analyzes with input escalation (paper §VII-D): while some unit
    /// shows strong but not-yet-significant association, request another
    /// batch of iterations from `more` (rounds are 1-indexed; round 0's
    /// iterations are passed in `initial`). Stops after `max_rounds`
    /// escalations or when every strong association is significant.
    pub fn analyze_with_escalation(
        &self,
        initial: Vec<IterationTrace>,
        max_rounds: usize,
        mut more: impl FnMut(usize) -> Vec<IterationTrace>,
    ) -> EscalationOutcome {
        let mut iterations = initial;
        let mut report = self.analyze(&iterations);
        let mut rounds = 0;
        while report.needs_more_samples() && rounds < max_rounds {
            rounds += 1;
            microsampler_obs::diag_info!(
                "escalating: round {rounds}/{max_rounds}, {} iterations so far",
                iterations.len()
            );
            let batch = more(rounds);
            if batch.is_empty() {
                break;
            }
            iterations.extend(batch);
            report = self.analyze(&iterations);
        }
        EscalationOutcome { report, rounds, total_iterations: iterations.len() }
    }
}

/// Result of [`Analyzer::analyze_with_escalation`].
#[derive(Clone, Debug)]
pub struct EscalationOutcome {
    /// The final report.
    pub report: AnalysisReport,
    /// Escalation rounds performed (0 = the initial batch sufficed).
    pub rounds: usize,
    /// Total iterations analyzed.
    pub total_iterations: usize,
}

impl EscalationOutcome {
    /// Renders the outcome as a JSON value (stable schema: `rounds`,
    /// `total_iterations`, `report` as
    /// [`AnalysisReport::to_json`]).
    pub fn to_json(&self) -> microsampler_obs::Value {
        microsampler_obs::Value::object()
            .field("rounds", self.rounds)
            .field("total_iterations", self.total_iterations)
            .field("report", self.report.to_json())
            .build()
    }
}

/// One-call analysis with the default analyzer.
pub fn analyze(iterations: &[IterationTrace]) -> AnalysisReport {
    Analyzer::new().analyze(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_sim::{TraceConfig, Tracer};

    /// Builds synthetic iterations where `unit`'s snapshot is `variant`
    /// per class when `leak` is true, identical otherwise.
    fn synthetic(n_per_class: usize, leak_unit: Option<UnitId>) -> Vec<IterationTrace> {
        let mut tracer = Tracer::new(TraceConfig::default());
        tracer.scr_start(0);
        for i in 0..2 * n_per_class {
            let label = (i % 2) as u64;
            tracer.iter_start(i as u64 * 10, label);
            for c in 0..3u64 {
                tracer.begin_cycle(i as u64 * 10 + c);
                for unit in UnitId::ALL {
                    let row = if Some(unit) == leak_unit {
                        vec![0x1000 + label * 0x10, c]
                    } else {
                        vec![0x1000, c]
                    };
                    tracer.record_row(unit, &row);
                }
            }
            tracer.iter_end(i as u64 * 10 + 3);
        }
        tracer.scr_end(u64::MAX);
        tracer.iterations
    }

    #[test]
    fn flags_exactly_the_leaky_unit() {
        let iters = synthetic(40, Some(UnitId::SqAddr));
        let report = analyze(&iters);
        assert!(report.unit(UnitId::SqAddr).is_leaky());
        for u in &report.units {
            if u.unit != UnitId::SqAddr {
                assert!(!u.is_leaky(), "{} falsely flagged", u.unit);
                assert!(u.assoc.cramers_v < 0.1);
            }
        }
        let leaky = report.leaky_units();
        assert_eq!(leaky.len(), 1);
        assert_eq!(leaky[0].unit, UnitId::SqAddr);
    }

    #[test]
    fn clean_traces_produce_clean_report() {
        let report = analyze(&synthetic(30, None));
        assert!(!report.is_leaky());
        assert!(!report.needs_more_samples());
        assert_eq!(report.classes, 2);
        assert_eq!(report.iterations, 60);
    }

    #[test]
    fn too_few_samples_not_significant() {
        // Two iterations, one per class, different snapshots: V = 1 but
        // the p-value cannot clear 0.05 — no leak verdict (the paper's
        // false-positive guard).
        let iters = synthetic(1, Some(UnitId::RobPc));
        let report = analyze(&iters);
        let u = report.unit(UnitId::RobPc);
        assert!(u.assoc.cramers_v > 0.99);
        assert!(!u.assoc.is_significant());
        assert!(!u.is_leaky());
        assert!(report.needs_more_samples());
    }

    #[test]
    fn escalation_until_significant() {
        let analyzer = Analyzer::new();
        let outcome =
            analyzer.analyze_with_escalation(synthetic(1, Some(UnitId::LqAddr)), 10, |_round| {
                synthetic(4, Some(UnitId::LqAddr))
            });
        assert!(outcome.rounds >= 1, "escalation should have been needed");
        assert!(outcome.report.unit(UnitId::LqAddr).is_leaky());
        assert!(!outcome.report.needs_more_samples());
        assert!(outcome.total_iterations > 2);
    }

    #[test]
    fn escalation_gives_up_after_max_rounds() {
        let analyzer = Analyzer::new();
        // Every batch is 1-per-class: p stays weak; stops at max_rounds.
        let outcome =
            analyzer.analyze_with_escalation(synthetic(1, Some(UnitId::SqPc)), 3, |_round| {
                synthetic(0, Some(UnitId::SqPc))
            });
        assert!(outcome.rounds <= 3);
    }

    #[test]
    fn analysis_identical_at_every_thread_count() {
        let iters = synthetic(25, Some(UnitId::LfbAddr));
        microsampler_par::set_threads(Some(1));
        let serial = analyze(&iters);
        for threads in [2, 7, 16] {
            microsampler_par::set_threads(Some(threads));
            let parallel = analyze(&iters);
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(
                parallel.to_json().render_compact(),
                serial.to_json().render_compact(),
                "threads={threads}"
            );
        }
        microsampler_par::set_threads(None);
    }

    #[test]
    fn faulted_traces_propagate_into_degraded_flag() {
        let faults = microsampler_sim::FaultConfig {
            seed: 11,
            drop_row_per_64k: 30_000,
            ..Default::default()
        };
        let cfg = TraceConfig { faults: Some(faults), ..TraceConfig::default() };
        let mut tracer = Tracer::new(cfg);
        tracer.scr_start(0);
        for i in 0..40u64 {
            tracer.iter_start(i * 100, i % 2);
            for c in 0..8u64 {
                tracer.begin_cycle(i * 100 + c);
                for unit in UnitId::ALL {
                    tracer.record_row(unit, &[0x1000, c]);
                }
            }
            tracer.iter_end(i * 100 + 9);
        }
        tracer.scr_end(u64::MAX);
        let report = analyze(&tracer.iterations);
        assert!(report.dropped_cycles > 0, "the drop rate should have fired");
        assert_eq!(report.dropped_cycles + report.sampled_cycles, 40 * 8);
        assert!(report.is_degraded(), "~46% drop rate must flag degradation");
    }

    #[test]
    fn contingency_matches_paper_shape() {
        let iters = synthetic(10, Some(UnitId::SqAddr));
        let t = Analyzer::new().contingency(&iters, UnitId::SqAddr, false);
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.category_count(), 2); // one hash per class
        assert_eq!(t.total(), 20);
    }

    #[test]
    fn timeless_hash_used_when_requested() {
        // Constant rows within an iteration: the timeless variant collapses
        // them to one row, so the two hash spaces must differ.
        let mut tracer = Tracer::new(TraceConfig::default());
        tracer.scr_start(0);
        for label in [0u64, 1] {
            tracer.iter_start(label * 10, label);
            for c in 0..4 {
                tracer.begin_cycle(label * 10 + c);
                for unit in UnitId::ALL {
                    tracer.record_row(unit, &[7, 7]);
                }
            }
            tracer.iter_end(label * 10 + 5);
        }
        tracer.scr_end(100);
        let iters = tracer.iterations;
        let a = Analyzer::new().contingency(&iters, UnitId::SqAddr, false);
        let b = Analyzer::new().contingency(&iters, UnitId::SqAddr, true);
        assert_eq!(a.category_count(), 1);
        assert_eq!(b.category_count(), 1);
        assert_ne!(a.categories().next().unwrap(), b.categories().next().unwrap());
    }
}
