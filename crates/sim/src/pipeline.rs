//! Pipeline activity and stall-cause accounting.
//!
//! [`PipelineStats`] is the profiling counterpart of [`CoreStats`]: where
//! `CoreStats` counts architectural and cache events, `PipelineStats`
//! answers "where do the cycles go" — per-execution-unit occupancy and a
//! stall-cause taxonomy for the front end, dispatch and the LSU. The core
//! updates it unconditionally in the cycle loop (pure integer counters on
//! simulator state, like `CoreStats`), so the numbers are bit-identical at
//! every thread count and invariant to whether the `obs` telemetry layers
//! are enabled.
//!
//! Per-iteration deltas ride on [`IterationTrace`](crate::IterationTrace)
//! (captured at the `ITER_START`/`ITER_END` markers) and the run-level
//! totals on [`RunResult`](crate::RunResult); `repro profile` aggregates
//! them into the `BENCH_sim.json` throughput baseline.
//!
//! [`CoreStats`]: crate::CoreStats

use microsampler_obs::Value;

/// Commit-drought length (cycles without a commit) at which a
/// [`PipelineStats::watchdog_near_misses`] event is counted — a quarter of
/// the deadlock watchdog's fuse, early enough to flag pipelines that stall
/// hard but recover.
pub const WATCHDOG_NEAR_MISS_CYCLES: u64 = 5_000;

/// Pipeline occupancy and stall-cause counters, accumulated every cycle.
///
/// All fields are monotone counters; subtract snapshots
/// ([`PipelineStats::delta_since`]) for interval figures. Utilization
/// accessors divide busy-slot counts by the cycle count (and the unit
/// count, for the multi-unit ALU/AGU pools).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Cycles accounted (equals `CoreStats::cycles` over a full run).
    pub cycles: u64,
    /// Instructions committed (fused fast-bypass ops included).
    pub committed: u64,
    /// ALU issue slots occupied, summed over cycles (≤ `n_alus` per cycle).
    pub alu_busy: u64,
    /// AGU issue slots occupied, summed over cycles (≤ `n_agus` per cycle).
    pub agu_busy: u64,
    /// Cycles the pipelined multiplier had at least one op in flight.
    pub mul_busy: u64,
    /// Cycles the blocking divider was occupied.
    pub div_busy: u64,
    /// Fetch cycles lost to an L1I miss in progress.
    pub icache_stall_cycles: u64,
    /// Cycles rename found the fetch buffer empty (front-end starvation).
    pub fetch_starved_cycles: u64,
    /// Cycles rename stalled with a full ROB.
    pub rob_full_cycles: u64,
    /// Cycles rename stalled on other back-end structures (issue queue,
    /// LDQ/STQ, free physical registers, or a fence draining stores).
    pub dispatch_stall_cycles: u64,
    /// LSU requests bounced by cache structural backpressure (no free
    /// MSHR/LFB: `Access::Retry` on a load start or a store drain).
    pub lsu_retry_events: u64,
    /// Cycles the LSU was frozen by an injected MSHR-stall window or the
    /// permanent wedge (0 without fault injection).
    pub fault_stall_cycles: u64,
    /// Fetch cycles spent in the post-squash redirect bubble.
    pub squash_recovery_cycles: u64,
    /// Commit droughts that reached [`WATCHDOG_NEAR_MISS_CYCLES`] (counted
    /// once per drought; the deadlock watchdog fires at 4× this length).
    pub watchdog_near_misses: u64,
}

/// `(name, count)` pairs for every stall cause, in canonical order.
pub type StallBreakdown = [(&'static str, u64); 8];

impl PipelineStats {
    /// Number of counters in the fixed serialization order
    /// ([`PipelineStats::to_array`]).
    pub const FIELDS: usize = 14;

    /// The counters in a fixed order (the text-log `P` record and the
    /// JSON schema use this order's names).
    pub fn to_array(&self) -> [u64; Self::FIELDS] {
        [
            self.cycles,
            self.committed,
            self.alu_busy,
            self.agu_busy,
            self.mul_busy,
            self.div_busy,
            self.icache_stall_cycles,
            self.fetch_starved_cycles,
            self.rob_full_cycles,
            self.dispatch_stall_cycles,
            self.lsu_retry_events,
            self.fault_stall_cycles,
            self.squash_recovery_cycles,
            self.watchdog_near_misses,
        ]
    }

    /// Rebuilds the struct from [`PipelineStats::to_array`] order.
    pub fn from_array(a: [u64; Self::FIELDS]) -> PipelineStats {
        PipelineStats {
            cycles: a[0],
            committed: a[1],
            alu_busy: a[2],
            agu_busy: a[3],
            mul_busy: a[4],
            div_busy: a[5],
            icache_stall_cycles: a[6],
            fetch_starved_cycles: a[7],
            rob_full_cycles: a[8],
            dispatch_stall_cycles: a[9],
            lsu_retry_events: a[10],
            fault_stall_cycles: a[11],
            squash_recovery_cycles: a[12],
            watchdog_near_misses: a[13],
        }
    }

    /// Field names matching [`PipelineStats::to_array`] positions.
    pub const FIELD_NAMES: [&'static str; Self::FIELDS] = [
        "cycles",
        "committed",
        "alu_busy",
        "agu_busy",
        "mul_busy",
        "div_busy",
        "icache_stall_cycles",
        "fetch_starved_cycles",
        "rob_full_cycles",
        "dispatch_stall_cycles",
        "lsu_retry_events",
        "fault_stall_cycles",
        "squash_recovery_cycles",
        "watchdog_near_misses",
    ];

    /// Instructions per cycle over the accounted interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// ALU-pool utilization: busy slots over `n_alus × cycles`.
    pub fn alu_utilization(&self, n_alus: usize) -> f64 {
        self.pool_utilization(self.alu_busy, n_alus)
    }

    /// AGU-pool utilization: busy slots over `n_agus × cycles`.
    pub fn agu_utilization(&self, n_agus: usize) -> f64 {
        self.pool_utilization(self.agu_busy, n_agus)
    }

    /// Fraction of cycles the (single, pipelined) multiplier was occupied.
    pub fn mul_utilization(&self) -> f64 {
        self.pool_utilization(self.mul_busy, 1)
    }

    /// Fraction of cycles the (single, blocking) divider was occupied.
    pub fn div_utilization(&self) -> f64 {
        self.pool_utilization(self.div_busy, 1)
    }

    fn pool_utilization(&self, busy: u64, units: usize) -> f64 {
        let slots = self.cycles.saturating_mul(units.max(1) as u64);
        if slots == 0 {
            0.0
        } else {
            busy as f64 / slots as f64
        }
    }

    /// Adds another interval's counters into this one.
    pub fn add(&mut self, other: &PipelineStats) {
        let mut a = self.to_array();
        for (acc, v) in a.iter_mut().zip(other.to_array()) {
            *acc += v;
        }
        *self = PipelineStats::from_array(a);
    }

    /// Counter deltas since `base` (a snapshot taken earlier in the same
    /// run; every field must be ≥ its `base` value).
    pub fn delta_since(&self, base: &PipelineStats) -> PipelineStats {
        let mut a = self.to_array();
        for (v, b) in a.iter_mut().zip(base.to_array()) {
            *v -= b;
        }
        PipelineStats::from_array(a)
    }

    /// Every stall cause with its count, in canonical order.
    pub fn stall_breakdown(&self) -> StallBreakdown {
        [
            ("icache-stall", self.icache_stall_cycles),
            ("fetch-starvation", self.fetch_starved_cycles),
            ("rob-full", self.rob_full_cycles),
            ("dispatch-backpressure", self.dispatch_stall_cycles),
            ("lsu-retry", self.lsu_retry_events),
            ("fault-stall", self.fault_stall_cycles),
            ("squash-recovery", self.squash_recovery_cycles),
            ("watchdog-near-miss", self.watchdog_near_misses),
        ]
    }

    /// The stall cause with the highest count, or `None` when nothing
    /// stalled. Ties resolve to the first cause in canonical order, so the
    /// answer is deterministic.
    pub fn dominant_stall(&self) -> Option<(&'static str, u64)> {
        self.stall_breakdown().into_iter().filter(|&(_, n)| n > 0).max_by(
            // max_by keeps the *last* maximum; invert ties toward the first.
            |a, b| match a.1.cmp(&b.1) {
                std::cmp::Ordering::Equal => std::cmp::Ordering::Greater,
                other => other,
            },
        )
    }

    /// Stable-schema JSON object: one field per counter
    /// ([`PipelineStats::FIELD_NAMES`]) plus derived `ipc`.
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object();
        for (name, v) in Self::FIELD_NAMES.iter().zip(self.to_array()) {
            obj = obj.field(name, v);
        }
        obj.field("ipc", self.ipc()).build()
    }

    /// Rebuilds counters from [`PipelineStats::to_json`] output (missing
    /// fields read as 0, so journals written before profiling existed
    /// still load).
    pub fn from_json(v: &Value) -> PipelineStats {
        let mut a = [0u64; Self::FIELDS];
        for (slot, name) in a.iter_mut().zip(Self::FIELD_NAMES) {
            *slot = v.get(name).and_then(Value::as_u64).unwrap_or(0);
        }
        PipelineStats::from_array(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineStats {
        PipelineStats {
            cycles: 100,
            committed: 150,
            alu_busy: 120,
            agu_busy: 40,
            mul_busy: 30,
            div_busy: 16,
            icache_stall_cycles: 5,
            fetch_starved_cycles: 9,
            rob_full_cycles: 2,
            dispatch_stall_cycles: 7,
            lsu_retry_events: 1,
            fault_stall_cycles: 0,
            squash_recovery_cycles: 4,
            watchdog_near_misses: 0,
        }
    }

    #[test]
    fn array_round_trip_covers_every_field() {
        let s = sample();
        assert_eq!(PipelineStats::from_array(s.to_array()), s);
        assert_eq!(PipelineStats::FIELD_NAMES.len(), PipelineStats::FIELDS);
    }

    #[test]
    fn ipc_and_utilization() {
        let s = sample();
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.alu_utilization(4) - 0.3).abs() < 1e-12);
        assert!((s.agu_utilization(2) - 0.2).abs() < 1e-12);
        assert!((s.mul_utilization() - 0.3).abs() < 1e-12);
        assert!((s.div_utilization() - 0.16).abs() < 1e-12);
        assert_eq!(PipelineStats::default().ipc(), 0.0);
        assert_eq!(PipelineStats::default().alu_utilization(4), 0.0);
    }

    #[test]
    fn delta_and_add_are_inverses() {
        let base = sample();
        let mut later = sample();
        later.add(&sample());
        assert_eq!(later.delta_since(&base), base);
    }

    #[test]
    fn dominant_stall_picks_the_largest_and_breaks_ties_first() {
        let s = sample();
        assert_eq!(s.dominant_stall(), Some(("fetch-starvation", 9)));
        assert_eq!(PipelineStats::default().dominant_stall(), None);
        let tied = PipelineStats {
            icache_stall_cycles: 3,
            squash_recovery_cycles: 3,
            ..PipelineStats::default()
        };
        assert_eq!(tied.dominant_stall(), Some(("icache-stall", 3)));
    }

    #[test]
    fn json_round_trip_and_missing_fields_default() {
        let s = sample();
        let v = s.to_json();
        assert_eq!(PipelineStats::from_json(&v), s);
        assert!((v.get("ipc").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-12);
        // An empty object (pre-profiling journal record) reads as zeros.
        assert_eq!(PipelineStats::from_json(&Value::object().build()), PipelineStats::default());
    }
}
