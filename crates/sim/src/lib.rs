//! Cycle-accurate out-of-order RV64IM core model for MicroSampler.
//!
//! This crate is the reproduction's substitute for the paper's
//! Verilator-simulated RISC-V BOOM RTL: a from-scratch, cycle-accurate
//! out-of-order core with *full microarchitectural state visibility*. Every
//! structure the paper traces (Table IV) exists as explicit state that is
//! sampled each cycle:
//!
//! | Structure | Features |
//! |-----------|----------|
//! | Store queue | addresses, PCs |
//! | Load queue | addresses, PCs |
//! | ROB | occupancy, PCs (including wrong-path entries) |
//! | Line-fill buffers | addresses, data digests |
//! | Execution units | ALU / AGU / MUL / DIV busy-with-PC |
//! | Next-line prefetcher | prefetch addresses |
//! | D-cache | request addresses |
//! | TLB | resident entries |
//! | MSHRs | outstanding miss addresses |
//!
//! The model implements speculative fetch with gshare + BTB + return-address
//! stack prediction, precise squash on misprediction (wrong-path
//! instructions occupy the ROB until killed — required by the paper's
//! `CRYPTO_memcmp` transient-execution case study), register renaming with
//! a unified physical register file, store-to-load forwarding, a
//! write-allocate L1D with MSHRs and line-fill buffers, a next-line
//! prefetcher, a TLB, and the paper's "fast bypass" trivial-computation
//! optimization (§VII-B) as a config flag.
//!
//! Two ready-made configurations mirror the paper's Table III:
//! [`CoreConfig::mega_boom`] and [`CoreConfig::small_boom`].
//!
//! # Example
//!
//! ```
//! use microsampler_isa::asm::assemble;
//! use microsampler_sim::{CoreConfig, Machine};
//!
//! let program = assemble("li a0, 6\nli a1, 7\nmul a0, a0, a1\necall\n")?;
//! let mut machine = Machine::new(CoreConfig::small_boom(), &program);
//! let result = machine.run(100_000)?;
//! assert_eq!(machine.reg(microsampler_isa::Reg::new(10)), 42);
//! assert!(result.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod config;
mod core;
mod fault;
pub mod interp;
mod machine;
mod memory;
mod pipeline;
mod predictor;
mod tlb;
mod trace;

pub use cache::{Cache, CacheConfig, LineFillBuffer, Mshr};
pub use config::{CoreConfig, PrefetcherKind};
pub use fault::{
    FaultConfig, FaultCounts, FaultEvent, FaultKind, FaultPlan, MSHR_STALL_CYCLES, WEDGE_CYCLE,
};
pub use machine::{Machine, RunResult, SimError};
pub use memory::Memory;
pub use pipeline::{PipelineStats, StallBreakdown, WATCHDOG_NEAR_MISS_CYCLES};
pub use predictor::{Btb, Gshare, ReturnAddressStack};
pub use tlb::Tlb;
pub use trace::{
    parse_text_log, IterationTrace, ParseLogError, TraceConfig, Tracer, UnitId, UnitTrace,
};

/// Statistics accumulated over a run, for benches and ablation studies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed instructions (fused fast-bypass ops included).
    pub committed: u64,
    /// Total cycles executed.
    pub cycles: u64,
    /// Conditional-branch mispredictions detected.
    pub branch_mispredicts: u64,
    /// Conditional branches resolved.
    pub branches: u64,
    /// Indirect-jump (jalr) mispredictions.
    pub jalr_mispredicts: u64,
    /// L1D demand hits.
    pub l1d_hits: u64,
    /// L1D demand misses.
    pub l1d_misses: u64,
    /// L1I hits.
    pub l1i_hits: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Store-to-load forwards.
    pub stl_forwards: u64,
    /// Prefetches issued by the next-line prefetcher.
    pub prefetches: u64,
    /// Instructions squashed on misprediction recovery.
    pub squashed: u64,
    /// Fast-bypass eliminations performed (0 unless the optimization is on).
    pub fast_bypasses: u64,
}

impl CoreStats {
    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}
