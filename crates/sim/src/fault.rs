//! Seed-deterministic fault injection (robustness harness).
//!
//! A [`FaultPlan`] perturbs a run with controlled noise — spurious branch
//! squashes, forced cache-line evictions, MSHR-stall windows, dropped
//! snapshot cycles and snapshot bit-flips — so the analysis layer can be
//! exercised against degraded measurements instead of assuming perfect
//! captures (the situation DRsam-style perturbation studies model).
//!
//! Every decision is a *pure function* of `(seed, fault kind, cycle)`:
//! the plan keeps no mutable state, so the schedule is bit-identical no
//! matter how trials are ordered across worker threads, and the trace
//! parser can re-ask the same questions when replaying a faulted log.

/// The splitmix64 output mixer — a cheap, well-distributed 64-bit hash
/// used to derive all per-cycle fault decisions.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fault-injection configuration: per-kind firing rates out of 65536
/// cycles, plus a deterministic seed.
///
/// A rate of `n` means the fault fires on roughly `n / 65536` of cycles
/// (each cycle decides independently from the mixed seed). `Default` is
/// all-zero: no faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct FaultConfig {
    /// Base seed all fault decisions derive from.
    pub seed: u64,
    /// Spurious branch-squash rate per 64Ki cycles: re-squashes an
    /// already-resolved in-flight branch to its *correct* target,
    /// replaying younger work (architecturally pure noise).
    pub squash_per_64k: u32,
    /// Forced L1D line-eviction rate per 64Ki cycles.
    pub evict_per_64k: u32,
    /// MSHR-stall rate per 64Ki cycles: freezes store drains and new
    /// load issue for [`MSHR_STALL_CYCLES`] cycles, modelling a
    /// miss-handling backlog.
    pub mshr_stall_per_64k: u32,
    /// Dropped-snapshot rate per 64Ki cycles: the tracer skips the whole
    /// sampled row set for that cycle (a lost capture).
    pub drop_row_per_64k: u32,
    /// Snapshot bit-flip rate per 64Ki cycles: one bit of one unit's
    /// sampled row is inverted before hashing/logging.
    pub bitflip_per_64k: u32,
    /// When set, the LSU wedges permanently at [`WEDGE_CYCLE`]: no store
    /// drains, no new loads, commits stop, and the machine watchdog
    /// reports [`SimError::Deadlock`](crate::SimError::Deadlock). Used to
    /// exercise quarantine paths with a trial that *always* fails.
    pub wedge: bool,
}

/// Length of one injected MSHR-stall window, in cycles.
pub const MSHR_STALL_CYCLES: u64 = 8;

/// Cycle at which a wedged ([`FaultConfig::wedge`]) run stalls its LSU.
pub const WEDGE_CYCLE: u64 = 64;

impl FaultConfig {
    /// Derives the per-trial plan seed: mixes the trial index and retry
    /// attempt into the base seed so every trial (and every retry of it)
    /// sees an independent but reproducible schedule. The derivation
    /// depends only on `(seed, trial, attempt)` — never on thread count
    /// or scheduling order. `wedge` is preserved as-is, so a wedged
    /// trial keeps failing on retry.
    pub fn for_trial(mut self, trial: u64, attempt: u32) -> FaultConfig {
        self.seed = splitmix64(
            self.seed ^ splitmix64(trial ^ 0x7472_6961_6c5f_6964) ^ (attempt as u64) << 48,
        );
        self
    }

    /// True when any perturbation (including the wedge) is configured.
    pub fn any(&self) -> bool {
        self.wedge
            || self.squash_per_64k != 0
            || self.evict_per_64k != 0
            || self.mshr_stall_per_64k != 0
            || self.drop_row_per_64k != 0
            || self.bitflip_per_64k != 0
    }
}

/// The kinds of injected faults, used for schedule introspection and
/// event reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Spurious squash of a resolved branch.
    SpuriousSquash,
    /// Forced L1D line eviction.
    CacheEviction,
    /// MSHR-stall window start.
    MshrStall,
    /// Dropped snapshot cycle.
    DroppedCycle,
    /// Snapshot bit-flip.
    BitFlip,
}

impl FaultKind {
    /// All kinds, in reporting order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::SpuriousSquash,
        FaultKind::CacheEviction,
        FaultKind::MshrStall,
        FaultKind::DroppedCycle,
        FaultKind::BitFlip,
    ];

    /// Stable lowercase name used in metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SpuriousSquash => "spurious_squash",
            FaultKind::CacheEviction => "cache_eviction",
            FaultKind::MshrStall => "mshr_stall",
            FaultKind::DroppedCycle => "dropped_cycle",
            FaultKind::BitFlip => "bit_flip",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault occurrence (see [`FaultPlan::schedule`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault fires on.
    pub cycle: u64,
    /// What fires.
    pub kind: FaultKind,
}

// Per-kind domain-separation constants mixed into the seed so the five
// fault streams are independent.
const K_SQUASH: u64 = 0x5351_5541_5348_0001;
const K_EVICT: u64 = 0x4556_4943_5400_0002;
const K_MSHR: u64 = 0x4d53_4852_0000_0003;
const K_DROP: u64 = 0x4452_4f50_0000_0004;
const K_FLIP: u64 = 0x464c_4950_0000_0005;

/// A deterministic fault schedule derived from a [`FaultConfig`].
///
/// All query methods are pure: calling `squash_at(c)` twice, or from two
/// different threads, or after a million other queries, always returns
/// the same answer for the same plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds the plan for a configuration.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan { cfg }
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn mix(&self, kind: u64, cycle: u64) -> u64 {
        splitmix64(self.cfg.seed ^ kind ^ splitmix64(cycle))
    }

    fn fires(&self, kind: u64, cycle: u64, rate_per_64k: u32) -> bool {
        rate_per_64k != 0 && (self.mix(kind, cycle) & 0xFFFF) < rate_per_64k as u64
    }

    /// Does a spurious branch squash fire this cycle?
    pub fn squash_at(&self, cycle: u64) -> bool {
        self.fires(K_SQUASH, cycle, self.cfg.squash_per_64k)
    }

    /// Forced-eviction salt for this cycle, when an eviction fires. The
    /// salt selects which valid L1D line is evicted.
    pub fn evict_salt_at(&self, cycle: u64) -> Option<u64> {
        if self.fires(K_EVICT, cycle, self.cfg.evict_per_64k) {
            Some(self.mix(K_EVICT ^ 0xa5a5, cycle))
        } else {
            None
        }
    }

    /// Length of the MSHR-stall window starting this cycle, if one does.
    pub fn mshr_stall_at(&self, cycle: u64) -> Option<u64> {
        if self.fires(K_MSHR, cycle, self.cfg.mshr_stall_per_64k) {
            Some(MSHR_STALL_CYCLES)
        } else {
            None
        }
    }

    /// Is this sampled cycle's snapshot dropped entirely?
    pub fn drop_cycle_at(&self, cycle: u64) -> bool {
        self.fires(K_DROP, cycle, self.cfg.drop_row_per_64k)
    }

    /// Bit-flip salt for `(cycle, unit)`, when a flip fires. The salt
    /// selects which bit of the unit's sampled row is inverted.
    pub fn bitflip_at(&self, cycle: u64, unit_index: usize) -> Option<u64> {
        let kind = K_FLIP ^ (unit_index as u64) << 32;
        if self.fires(kind, cycle, self.cfg.bitflip_per_64k) {
            Some(self.mix(kind ^ 0x5a5a, cycle))
        } else {
            None
        }
    }

    /// Does the permanent LSU wedge engage this cycle?
    pub fn wedge_at(&self, cycle: u64) -> bool {
        self.cfg.wedge && cycle == WEDGE_CYCLE
    }

    /// Enumerates every fault firing in `cycles`, in (cycle, kind) order.
    /// Used by determinism tests and for schedule introspection; the live
    /// injection path queries per cycle instead.
    pub fn schedule(&self, cycles: std::ops::Range<u64>) -> Vec<FaultEvent> {
        let mut events = Vec::new();
        for cycle in cycles {
            if self.squash_at(cycle) {
                events.push(FaultEvent { cycle, kind: FaultKind::SpuriousSquash });
            }
            if self.evict_salt_at(cycle).is_some() {
                events.push(FaultEvent { cycle, kind: FaultKind::CacheEviction });
            }
            if self.mshr_stall_at(cycle).is_some() {
                events.push(FaultEvent { cycle, kind: FaultKind::MshrStall });
            }
            if self.drop_cycle_at(cycle) {
                events.push(FaultEvent { cycle, kind: FaultKind::DroppedCycle });
            }
            if (0..crate::UnitId::COUNT).any(|u| self.bitflip_at(cycle, u).is_some()) {
                events.push(FaultEvent { cycle, kind: FaultKind::BitFlip });
            }
        }
        events
    }
}

/// Counters for faults actually injected during a run, surfaced through
/// [`RunResult`](crate::RunResult) and the `fault.*` metrics batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Spurious branch squashes scheduled.
    pub spurious_squashes: u64,
    /// L1D lines forcibly evicted.
    pub cache_evictions: u64,
    /// MSHR-stall windows injected.
    pub mshr_stalls: u64,
    /// Snapshot cycles dropped by the tracer.
    pub dropped_cycles: u64,
    /// Snapshot bits flipped by the tracer.
    pub bit_flips: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.spurious_squashes
            + self.cache_evictions
            + self.mshr_stalls
            + self.dropped_cycles
            + self.bit_flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy() -> FaultConfig {
        FaultConfig {
            seed: 0xfa17,
            squash_per_64k: 900,
            evict_per_64k: 900,
            mshr_stall_per_64k: 900,
            drop_row_per_64k: 900,
            bitflip_per_64k: 900,
            wedge: false,
        }
    }

    #[test]
    fn default_config_is_inert() {
        let plan = FaultPlan::new(FaultConfig::default());
        assert!(!FaultConfig::default().any());
        assert!(plan.schedule(0..4096).is_empty());
        assert!(!plan.wedge_at(WEDGE_CYCLE));
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(noisy()).schedule(0..8192);
        let b = FaultPlan::new(noisy()).schedule(0..8192);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rates of 900/64k over 8192 cycles should fire");
        let other = FaultPlan::new(FaultConfig { seed: 0xbeef, ..noisy() }).schedule(0..8192);
        assert_ne!(a, other, "different seeds must give different schedules");
    }

    #[test]
    fn queries_are_stateless() {
        // Asking the same question repeatedly, or interleaved with other
        // queries, never changes the answer.
        let plan = FaultPlan::new(noisy());
        for cycle in 0..512 {
            let first = plan.drop_cycle_at(cycle);
            let _ = plan.squash_at(cycle + 7);
            let _ = plan.bitflip_at(cycle, 3);
            assert_eq!(plan.drop_cycle_at(cycle), first);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let cfg = FaultConfig { seed: 1, drop_row_per_64k: 6554, ..FaultConfig::default() };
        let plan = FaultPlan::new(cfg);
        let n = (0..65536).filter(|&c| plan.drop_cycle_at(c)).count();
        // ~10% of cycles; allow wide slack for mixer variance.
        assert!((4000..9000).contains(&n), "fired {n} times");
    }

    #[test]
    fn kinds_are_independent_streams() {
        let plan = FaultPlan::new(noisy());
        let squashes: Vec<u64> = (0..4096).filter(|&c| plan.squash_at(c)).collect();
        let drops: Vec<u64> = (0..4096).filter(|&c| plan.drop_cycle_at(c)).collect();
        assert_ne!(squashes, drops, "streams must be domain-separated");
    }

    #[test]
    fn for_trial_derivation_is_pure() {
        let base = noisy();
        assert_eq!(base.for_trial(3, 0), base.for_trial(3, 0));
        assert_ne!(base.for_trial(3, 0).seed, base.for_trial(4, 0).seed);
        assert_ne!(base.for_trial(3, 0).seed, base.for_trial(3, 1).seed);
        let wedged = FaultConfig { wedge: true, ..base };
        assert!(wedged.for_trial(0, 0).wedge && wedged.for_trial(0, 1).wedge);
    }

    #[test]
    fn wedge_engages_at_fixed_cycle() {
        let plan = FaultPlan::new(FaultConfig { wedge: true, ..FaultConfig::default() });
        assert!(plan.wedge_at(WEDGE_CYCLE));
        assert!(!plan.wedge_at(WEDGE_CYCLE + 1));
        assert!(!plan.wedge_at(0));
    }

    #[test]
    fn fault_counts_total() {
        let c = FaultCounts {
            spurious_squashes: 1,
            cache_evictions: 2,
            mshr_stalls: 3,
            dropped_cycles: 4,
            bit_flips: 5,
        };
        assert_eq!(c.total(), 15);
        assert_eq!(FaultCounts::default().total(), 0);
    }
}
