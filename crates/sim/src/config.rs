use crate::cache::CacheConfig;
use crate::fault::FaultConfig;

/// Data prefetcher selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Next-line prefetcher: every demand miss prefetches the following
    /// cache line (the paper's BOOM configuration, Table III).
    NextLine,
}

/// Full microarchitectural configuration of the simulated core.
///
/// The two presets mirror the paper's Table III. All counts are entries;
/// all latencies are cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Human-readable name, used in reports ("MegaBoom", "SmallBoom").
    pub name: &'static str,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions decoded/renamed per cycle.
    pub decode_width: usize,
    /// Maximum instructions issued to execution units per cycle.
    pub issue_width: usize,
    /// Maximum instructions committed per cycle.
    pub commit_width: usize,
    /// Fetch buffer capacity.
    pub fetch_buffer_entries: usize,
    /// Reorder buffer capacity.
    pub rob_entries: usize,
    /// Unified physical register file size (must exceed 32).
    pub prf_regs: usize,
    /// Issue queue capacity.
    pub iq_entries: usize,
    /// Load queue capacity.
    pub ldq_entries: usize,
    /// Store queue capacity.
    pub stq_entries: usize,
    /// Line-fill buffer capacity.
    pub lfb_entries: usize,
    /// Number of ALUs.
    pub n_alus: usize,
    /// Number of address-generation units.
    pub n_agus: usize,
    /// Pipelined multiplier latency.
    pub mul_latency: u64,
    /// Operand-dependent multiplier early-out: a multiply whose either
    /// operand fits in 16 bits completes in a single cycle instead of
    /// `mul_latency`. Off in both paper presets (BOOM's multiplier is
    /// fully pipelined and data-independent); enabling it makes `mul` a
    /// variable-latency instruction and therefore a timing channel, which
    /// the static analyzer mirrors in its violation-class-3 rule.
    pub mul_early_out: bool,
    /// Iterative (blocking) divider latency.
    pub div_latency: u64,
    /// gshare pattern-history-table entries (power of two).
    pub bpred_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_entries: usize,
    /// Cycles between a mispredicted branch executing and the squash taking
    /// effect (models BOOM's branch-kill propagation latency; during this
    /// window the wrong path keeps fetching and renaming).
    pub branch_kill_delay: u64,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Data TLB entries (fully associative, LRU).
    pub tlb_entries: usize,
    /// Page-walk latency charged on a TLB miss.
    pub tlb_miss_latency: u64,
    /// Data prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Enable the "fast bypass" trivial-computation optimization
    /// (paper §VII-B): an `AND` whose available operand is zero skips
    /// execution, wakes dependents immediately and shares a ROB entry with
    /// the next renamed instruction.
    pub fast_bypass: bool,
    /// When set, the gshare pattern history table starts in a seeded
    /// pseudo-random weak state instead of uniformly weakly-not-taken —
    /// models undefined power-on / residual predictor state.
    pub bpred_random_init: Option<u64>,
    /// When set, the gshare pattern history table starts in a seeded
    /// *strongly* polarized state (counters 0 or 3): an adversarial
    /// residual state that maximizes mispredictions — and therefore
    /// transient wrong-path execution windows — on fresh history
    /// contexts. Used by the speculative cross-validation dimension;
    /// takes precedence over [`CoreConfig::bpred_random_init`].
    pub bpred_adversarial_init: Option<u64>,
    /// When set, a seed-deterministic [`FaultPlan`](crate::FaultPlan)
    /// perturbs the core: spurious branch squashes, forced cache
    /// evictions, MSHR-stall windows, or a permanent LSU wedge. Off in
    /// both paper presets.
    pub faults: Option<FaultConfig>,
}

impl CoreConfig {
    /// The paper's MegaBoom configuration (Table III): 8-wide fetch,
    /// 4-wide decode/issue, 128-entry ROB, 32-entry LDQ/STQ, 64 LFBs,
    /// 64-set 8-way L1 caches, 32-entry TLB, next-line prefetcher.
    pub fn mega_boom() -> CoreConfig {
        CoreConfig {
            name: "MegaBoom",
            fetch_width: 8,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            fetch_buffer_entries: 32,
            rob_entries: 128,
            prf_regs: 128,
            iq_entries: 32,
            ldq_entries: 32,
            stq_entries: 32,
            lfb_entries: 64,
            n_alus: 4,
            n_agus: 2,
            mul_latency: 3,
            mul_early_out: false,
            div_latency: 16,
            bpred_entries: 2048,
            btb_entries: 128,
            ras_entries: 8,
            branch_kill_delay: 5,
            l1d: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                mshrs: 8,
                hit_latency: 3,
                miss_latency: 24,
            },
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                mshrs: 2,
                hit_latency: 1,
                miss_latency: 24,
            },
            tlb_entries: 32,
            tlb_miss_latency: 12,
            prefetcher: PrefetcherKind::NextLine,
            fast_bypass: false,
            bpred_random_init: None,
            bpred_adversarial_init: None,
            faults: None,
        }
    }

    /// The paper's SmallBoom configuration (Table III): 4-wide fetch,
    /// 1-wide decode/issue, 32-entry ROB, 8-entry LDQ/STQ/LFB, 4-way L1D,
    /// 8-entry TLB.
    pub fn small_boom() -> CoreConfig {
        CoreConfig {
            name: "SmallBoom",
            fetch_width: 4,
            decode_width: 1,
            issue_width: 1,
            commit_width: 1,
            fetch_buffer_entries: 8,
            rob_entries: 32,
            prf_regs: 52,
            iq_entries: 8,
            ldq_entries: 8,
            stq_entries: 8,
            lfb_entries: 8,
            n_alus: 1,
            n_agus: 1,
            mul_latency: 3,
            mul_early_out: false,
            div_latency: 16,
            bpred_entries: 2048,
            btb_entries: 64,
            ras_entries: 4,
            branch_kill_delay: 3,
            l1d: CacheConfig {
                sets: 64,
                ways: 4,
                line_bytes: 64,
                mshrs: 4,
                hit_latency: 3,
                miss_latency: 24,
            },
            l1i: CacheConfig {
                sets: 64,
                ways: 8,
                line_bytes: 64,
                mshrs: 2,
                hit_latency: 1,
                miss_latency: 24,
            },
            tlb_entries: 8,
            tlb_miss_latency: 12,
            prefetcher: PrefetcherKind::NextLine,
            fast_bypass: false,
            bpred_random_init: None,
            bpred_adversarial_init: None,
            faults: None,
        }
    }

    /// Same configuration with the fast-bypass optimization enabled.
    pub fn with_fast_bypass(mut self) -> CoreConfig {
        self.fast_bypass = true;
        self
    }

    /// Same configuration with a seeded random predictor initial state.
    pub fn with_random_bpred(mut self, seed: u64) -> CoreConfig {
        self.bpred_random_init = Some(seed);
        self
    }

    /// Same configuration with a seeded adversarial (strongly polarized)
    /// predictor initial state — the misprediction-maximizing residual
    /// state the speculative cross-validation runs under.
    pub fn with_adversarial_bpred(mut self, seed: u64) -> CoreConfig {
        self.bpred_adversarial_init = Some(seed);
        self
    }

    /// Same configuration with the operand-dependent multiplier early-out
    /// enabled (makes `mul` variable-latency).
    pub fn with_early_out_mul(mut self) -> CoreConfig {
        self.mul_early_out = true;
        self
    }

    /// Same configuration with fault injection enabled.
    pub fn with_faults(mut self, faults: FaultConfig) -> CoreConfig {
        self.faults = Some(faults);
        self
    }

    /// A rough "design size" proxy: total architected state entries, used
    /// for the Table VII scalability comparison.
    pub fn state_size(&self) -> usize {
        self.rob_entries
            + self.prf_regs
            + self.iq_entries
            + self.ldq_entries
            + self.stq_entries
            + self.lfb_entries
            + self.fetch_buffer_entries
            + self.l1d.sets * self.l1d.ways
            + self.l1i.sets * self.l1i.ways
            + self.tlb_entries
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero widths, PRF too small to
    /// rename all architectural registers, non-power-of-two predictor).
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.decode_width > 0, "widths must be positive");
        assert!(self.issue_width > 0 && self.commit_width > 0, "widths must be positive");
        assert!(self.prf_regs > 40, "PRF must comfortably exceed 32 architectural registers");
        assert!(self.rob_entries >= self.decode_width, "ROB smaller than decode width");
        assert!(self.bpred_entries.is_power_of_two(), "gshare table must be a power of two");
        assert!(self.l1d.sets.is_power_of_two() && self.l1i.sets.is_power_of_two());
        assert!(self.l1d.line_bytes.is_power_of_two());
        assert!(self.tlb_entries > 0 && self.lfb_entries > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        CoreConfig::mega_boom().validate();
        CoreConfig::small_boom().validate();
    }

    #[test]
    fn mega_is_about_four_times_small() {
        // The paper describes MegaBoom as ~4x SmallBoom in structure size.
        let ratio = CoreConfig::mega_boom().state_size() as f64
            / CoreConfig::small_boom().state_size() as f64;
        assert!((1.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fast_bypass_toggle() {
        assert!(!CoreConfig::mega_boom().fast_bypass);
        assert!(CoreConfig::mega_boom().with_fast_bypass().fast_bypass);
    }

    #[test]
    fn early_out_mul_toggle() {
        // Both paper presets keep the pipelined (constant-latency) multiplier.
        assert!(!CoreConfig::mega_boom().mul_early_out);
        assert!(!CoreConfig::small_boom().mul_early_out);
        assert!(CoreConfig::small_boom().with_early_out_mul().mul_early_out);
    }

    #[test]
    fn faults_toggle() {
        assert!(CoreConfig::mega_boom().faults.is_none());
        let fc = FaultConfig { seed: 7, wedge: true, ..FaultConfig::default() };
        assert_eq!(CoreConfig::small_boom().with_faults(fc).faults, Some(fc));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_predictor_size_panics() {
        let mut c = CoreConfig::small_boom();
        c.bpred_entries = 1000;
        c.validate();
    }
}
