//! Fully-associative data TLB with LRU replacement.
//!
//! Address translation in this machine is identity (no page tables), but
//! the TLB is modeled faithfully for two reasons: a miss costs a
//! page-walk latency, and the set of resident entries is a traced
//! microarchitectural feature (TLB-ADDR, paper Table IV) — the TLBleed-style
//! channel the paper cites arises purely from *which* pages are resident.

const PAGE_SHIFT: u64 = 12;

/// The data TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    /// `(virtual page number, last-use stamp)` pairs.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    stamp: u64,
    /// Hits accumulated (for stats).
    pub hits: u64,
    /// Misses accumulated.
    pub misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb { entries: Vec::with_capacity(capacity), capacity, stamp: 0, hits: 0, misses: 0 }
    }

    /// Translates the page of `addr`. Returns `true` on a hit; on a miss the
    /// entry is filled (evicting LRU) and `false` is returned so the caller
    /// can charge the walk latency.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = addr >> PAGE_SHIFT;
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == vpn) {
            e.1 = self.stamp;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(_, s))| s)
                .expect("capacity > 0");
            self.entries.swap_remove(idx);
        }
        self.entries.push((vpn, self.stamp));
        false
    }

    /// Whether the page of `addr` is resident (no LRU update, no fill).
    pub fn probe(&self, addr: u64) -> bool {
        let vpn = addr >> PAGE_SHIFT;
        self.entries.iter().any(|(p, _)| *p == vpn)
    }

    /// Resident virtual page numbers in insertion order (the TLB-ADDR trace
    /// feature).
    pub fn resident_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|(p, _)| *p)
    }

    /// Drops every entry.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.access(0x8000_0123));
        assert!(t.access(0x8000_0FFF)); // same page
        assert!(!t.access(0x8000_1000)); // next page
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0x0000);
        t.access(0x1000);
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.probe(0x0000));
        assert!(!t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn flush_clears() {
        let mut t = Tlb::new(2);
        t.access(0x5000);
        t.flush();
        assert!(!t.probe(0x5000));
        assert_eq!(t.resident_pages().count(), 0);
    }

    #[test]
    fn resident_pages_listed() {
        let mut t = Tlb::new(4);
        t.access(0x3000);
        t.access(0x7000);
        let pages: Vec<u64> = t.resident_pages().collect();
        assert_eq!(pages, vec![3, 7]);
    }
}
