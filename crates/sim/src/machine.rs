//! Public top-level API: load a program, run it, collect traces.

use crate::config::CoreConfig;
use crate::core::{Core, CoreExit};
use crate::fault::FaultCounts;
use crate::pipeline::PipelineStats;
use crate::trace::{IterationTrace, TraceConfig};
use crate::CoreStats;
use microsampler_isa::{Program, Reg};
use std::fmt;

/// Why a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The cycle budget was exhausted before the program exited.
    OutOfCycles {
        /// Budget that was exceeded.
        limit: u64,
    },
    /// No instruction committed for a long time — the pipeline wedged
    /// (usually a program that wandered off its text section on the
    /// committed path).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
}

impl SimError {
    /// Stable machine-readable class name, used by job-level failure
    /// classification (trial journals, `repro serve` verdicts). Unlike
    /// the [`Display`](fmt::Display) text, these identifiers are part of
    /// the JSONL schema contract and must not change.
    pub fn class(&self) -> &'static str {
        match self {
            SimError::OutOfCycles { .. } => "out-of-cycles",
            SimError::Deadlock { .. } => "deadlock",
        }
    }

    /// Whether a retry with a different fault schedule could plausibly
    /// succeed. Both current classes qualify: fault injection (spurious
    /// squashes, MSHR stalls) can push a run over its cycle budget or
    /// wedge the pipeline, and retries are re-seeded per attempt.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SimError::OutOfCycles { .. } | SimError::Deadlock { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfCycles { limit } => {
                write!(f, "[{}] simulation exceeded the cycle budget of {limit}", self.class())
            }
            SimError::Deadlock { cycle } => {
                write!(
                    f,
                    "[{}] pipeline made no progress (deadlock detected at cycle {cycle})",
                    self.class()
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Exit code: `a0` for `ecall`, or the value written to the exit CSR.
    pub exit_code: u64,
    /// Labeled per-iteration microarchitectural traces collected inside the
    /// security-critical region.
    pub iterations: Vec<IterationTrace>,
    /// Microarchitectural statistics.
    pub stats: CoreStats,
    /// Pipeline occupancy/stall profiling counters over the whole run.
    pub pipeline: PipelineStats,
    /// Faults injected during the run (all zero without fault injection).
    pub fault_counts: FaultCounts,
}

/// A loaded machine: one core plus memory, ready to run.
pub struct Machine {
    core: Core,
}

impl Machine {
    /// Enables a per-cycle state dump through the diagnostic sink
    /// (debugging aid). Raises the sink to `Debug` verbosity if it is
    /// quieter, so the dump is visible without setting `MICROSAMPLER_LOG`.
    pub fn set_debug(&mut self, on: bool) {
        self.core.debug = on;
        if on && !microsampler_obs::diag::enabled(microsampler_obs::Level::Debug) {
            microsampler_obs::diag::set_max_level(Some(microsampler_obs::Level::Debug));
        }
    }
}

/// Cycles without a commit after which the watchdog declares deadlock.
const WATCHDOG_CYCLES: u64 = 20_000;

impl Machine {
    /// Creates a machine with default tracing (summaries only, no raw
    /// matrices).
    pub fn new(config: CoreConfig, program: &Program) -> Machine {
        Machine::with_trace_config(config, program, TraceConfig::default())
    }

    /// Creates a machine with explicit tracing configuration.
    pub fn with_trace_config(config: CoreConfig, program: &Program, trace: TraceConfig) -> Machine {
        Machine { core: Core::new(config, program, trace) }
    }

    /// Enables text-log emission (the paper's simulator-log pipeline);
    /// retrieve it with [`Machine::log_text`] after the run.
    pub fn enable_log(&mut self) {
        self.core.tracer.enable_log();
    }

    /// The accumulated text log, if enabled.
    pub fn log_text(&self) -> Option<&str> {
        self.core.tracer.log_text()
    }

    /// Runs until the program exits or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfCycles`] if the budget runs out,
    /// [`SimError::Deadlock`] if the pipeline stops committing.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        let _span = microsampler_obs::span::span("simulate");
        while self.core.exit.is_none() {
            if self.core.cycle >= max_cycles {
                return Err(SimError::OutOfCycles { limit: max_cycles });
            }
            if self.core.cycles_since_commit() > WATCHDOG_CYCLES {
                return Err(SimError::Deadlock { cycle: self.core.cycle });
            }
            self.core.tick();
        }
        let exit_code = match self.core.exit {
            Some(CoreExit::Ecall) => self.reg(Reg::new(10)),
            Some(CoreExit::ExitCsr(code)) => code,
            None => unreachable!("loop exits only when core.exit is set"),
        };
        let mut stats = self.core.stats.clone();
        stats.cycles = self.core.cycle;
        // A program can exit without committing SCR_END; fold any sharded
        // hashing work still deferred before handing the traces out.
        self.core.tracer.finalize();
        let iterations = std::mem::take(&mut self.core.tracer.iterations);
        let fault_counts = self.fault_counts();
        let pipeline = self.core.pipeline;
        self.export_metrics(&stats, iterations.len(), &fault_counts);
        Ok(RunResult {
            cycles: self.core.cycle,
            exit_code,
            iterations,
            stats,
            pipeline,
            fault_counts,
        })
    }

    /// Combined fault counters: the core's pipeline perturbations plus the
    /// tracer's capture faults.
    fn fault_counts(&self) -> FaultCounts {
        let mut counts = self.core.fault_counts;
        counts.dropped_cycles = self.core.tracer.dropped_cycles;
        counts.bit_flips = self.core.tracer.bit_flips;
        counts
    }

    /// Records the run's `CoreStats` counters and tracer volumes into the
    /// process metrics registry (`sim.*` / `trace.*`; no-op while the
    /// registry is disabled).
    fn export_metrics(&self, stats: &CoreStats, iterations: usize, faults: &FaultCounts) {
        if !microsampler_obs::metrics::enabled() {
            return;
        }
        microsampler_obs::metrics::record_batch(
            "sim",
            &[
                ("cycles", stats.cycles as f64),
                ("committed", stats.committed as f64),
                ("ipc", stats.ipc()),
                ("branches", stats.branches as f64),
                ("branch_mispredicts", stats.branch_mispredicts as f64),
                ("jalr_mispredicts", stats.jalr_mispredicts as f64),
                ("squashed", stats.squashed as f64),
                ("l1d_hits", stats.l1d_hits as f64),
                ("l1d_misses", stats.l1d_misses as f64),
                ("l1i_hits", stats.l1i_hits as f64),
                ("l1i_misses", stats.l1i_misses as f64),
                ("tlb_hits", stats.tlb_hits as f64),
                ("tlb_misses", stats.tlb_misses as f64),
                ("stl_forwards", stats.stl_forwards as f64),
                ("prefetches", stats.prefetches as f64),
                ("fast_bypasses", stats.fast_bypasses as f64),
            ],
        );
        let p = &self.core.pipeline;
        microsampler_obs::metrics::record_batch(
            "sim.pipeline",
            &[
                ("ipc", p.ipc()),
                ("alu_busy", p.alu_busy as f64),
                ("agu_busy", p.agu_busy as f64),
                ("mul_busy", p.mul_busy as f64),
                ("div_busy", p.div_busy as f64),
                ("icache_stall_cycles", p.icache_stall_cycles as f64),
                ("fetch_starved_cycles", p.fetch_starved_cycles as f64),
                ("rob_full_cycles", p.rob_full_cycles as f64),
                ("dispatch_stall_cycles", p.dispatch_stall_cycles as f64),
                ("lsu_retry_events", p.lsu_retry_events as f64),
                ("fault_stall_cycles", p.fault_stall_cycles as f64),
                ("squash_recovery_cycles", p.squash_recovery_cycles as f64),
                ("watchdog_near_misses", p.watchdog_near_misses as f64),
            ],
        );
        let tracer = &self.core.tracer;
        microsampler_obs::metrics::record_batch(
            "trace",
            &[
                ("iterations", iterations as f64),
                ("rows_sampled", tracer.rows_sampled as f64),
                ("hash_bytes", tracer.hash_bytes as f64),
                ("matrix_cells", tracer.matrix_cells as f64),
            ],
        );
        if faults.total() > 0 {
            microsampler_obs::metrics::record("fault.injected", faults.total() as f64);
            microsampler_obs::metrics::record_batch(
                "fault",
                &[
                    ("spurious_squashes", faults.spurious_squashes as f64),
                    ("cache_evictions", faults.cache_evictions as f64),
                    ("mshr_stalls", faults.mshr_stalls as f64),
                    ("dropped_cycles", faults.dropped_cycles as f64),
                    ("bit_flips", faults.bit_flips as f64),
                ],
            );
        }
    }

    /// Committed (architectural) value of a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.core.arch_regs[r.index()]
    }

    /// Reads committed memory.
    pub fn read_mem(&self, addr: u64, len: usize) -> Vec<u8> {
        self.core.mem.read_bytes(addr, len)
    }

    /// Writes memory directly (harness-level initialization).
    pub fn write_mem(&mut self, addr: u64, bytes: &[u8]) {
        self.core.mem.write_bytes(addr, bytes);
    }

    /// Flushes the L1D line containing `addr` (attacker model).
    pub fn flush_dcache_line(&mut self, addr: u64) {
        self.core.flush_dcache_line(addr);
    }

    /// Pre-installs the L1D lines covering `addr .. addr+len` (models data
    /// that was recently touched, e.g. an initialized buffer).
    pub fn warm_dcache(&mut self, addr: u64, len: u64) {
        self.core.warm_dcache(addr, len);
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.core.cycle
    }

    /// Queues words for the program to read via `csrr rd, 0x8c8`
    /// ([`microsampler_isa::CSR_INPUT`]).
    pub fn push_inputs(&mut self, words: impl IntoIterator<Item = u64>) {
        self.core.input_queue.extend(words);
    }

    /// Takes the words the program wrote via `csrw 0x8c9, rs`
    /// ([`microsampler_isa::CSR_OUTPUT`]).
    pub fn take_outputs(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.core.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_isa::asm::assemble;

    fn run_on(config: CoreConfig, src: &str) -> (Machine, RunResult) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(config, &p);
        let r = m.run(2_000_000).expect("run completes");
        (m, r)
    }

    #[test]
    fn straight_line_arithmetic() {
        for cfg in [CoreConfig::small_boom(), CoreConfig::mega_boom()] {
            let (m, r) =
                run_on(cfg, "li a0, 21\nslli a1, a0, 1\nsub a2, a1, a0\nadd a0, a1, a2\necall\n");
            assert_eq!(m.reg(Reg::new(10)), 63);
            assert!(r.cycles > 0);
            assert!(r.stats.ipc() > 0.0);
            // Pipeline profiling mirrors the architectural counters exactly.
            assert_eq!(r.pipeline.cycles, r.stats.cycles);
            assert_eq!(r.pipeline.committed, r.stats.committed);
            assert!(r.pipeline.alu_busy > 0);
            assert!((r.pipeline.ipc() - r.stats.ipc()).abs() < 1e-12);
        }
    }

    #[test]
    fn loop_with_branches() {
        let (m, _) = run_on(
            CoreConfig::small_boom(),
            "li a0, 0\nli t0, 100\nloop: add a0, a0, t0\naddi t0, t0, -1\nbgtz t0, loop\necall\n",
        );
        assert_eq!(m.reg(Reg::new(10)), 5050);
    }

    #[test]
    fn memory_and_forwarding() {
        let (m, r) = run_on(
            CoreConfig::mega_boom(),
            r#"
            .data
            buf: .zero 64
            .text
            la t0, buf
            li t1, 0x1234
            sd t1, 0(t0)
            ld a0, 0(t0)      # should forward from the store queue
            sb a0, 17(t0)
            lbu a1, 17(t0)
            ecall
            "#,
        );
        assert_eq!(m.reg(Reg::new(10)), 0x1234);
        assert_eq!(m.reg(Reg::new(11)), 0x34);
        assert!(r.stats.stl_forwards > 0, "expected store-to-load forwarding");
    }

    #[test]
    fn call_return_uses_ras() {
        let (m, r) = run_on(
            CoreConfig::mega_boom(),
            r#"
            _start:
                li a0, 1
                li t2, 8
            again:
                call bump
                addi t2, t2, -1
                bgtz t2, again
                ecall
            bump:
                slli a0, a0, 1
                ret
            "#,
        );
        assert_eq!(m.reg(Reg::new(10)), 256);
        // After warmup the RAS should make returns predictable.
        assert!(r.stats.jalr_mispredicts <= 3, "{}", r.stats.jalr_mispredicts);
    }

    #[test]
    fn misprediction_recovers_correctly() {
        // A data-dependent unpredictable branch pattern; architectural
        // results must still be exact.
        let (m, r) = run_on(
            CoreConfig::mega_boom(),
            r#"
            li s0, 0          # accumulator
            li s1, 1          # lcg state
            li t3, 200        # iterations
            li t4, 1103515245
            li t5, 12345
            loop:
                mul s1, s1, t4
                add s1, s1, t5
                srli t0, s1, 16
                andi t0, t0, 1
                beqz t0, skip
                addi s0, s0, 1
            skip:
                addi t3, t3, -1
                bgtz t3, loop
            mv a0, s0
            ecall
            "#,
        );
        // Cross-checked with the golden interpreter in differential tests;
        // here just require progress and some mispredictions happened.
        assert!(r.stats.branch_mispredicts > 0);
        assert!(m.reg(Reg::new(10)) <= 200);
        assert!(r.stats.squashed > 0);
    }

    #[test]
    fn caches_and_prefetcher_fire() {
        let (_, r) = run_on(
            CoreConfig::mega_boom(),
            r#"
            .data
            arr: .zero 4096
            .text
            la t0, arr
            li t1, 64         # walk 64 lines
            loop:
                ld t2, 0(t0)
                addi t0, t0, 64
                addi t1, t1, -1
                bgtz t1, loop
            la t0, arr        # second pass: must hit in the cache
            li t1, 64
            loop2:
                ld t2, 0(t0)
                addi t0, t0, 64
                addi t1, t1, -1
                bgtz t1, loop2
            ecall
            "#,
        );
        assert!(r.stats.l1d_misses > 0);
        assert!(r.stats.prefetches > 0);
        assert!(r.stats.l1d_hits >= 32, "second pass should hit ({} hits)", r.stats.l1d_hits);
        assert!(r.stats.tlb_misses >= 1);
    }

    #[test]
    fn iteration_traces_collected() {
        let (_, r) = run_on(
            CoreConfig::small_boom(),
            r#"
            csrw 0x8c0, zero       # SCR start
            li s0, 2               # two iterations
            li s1, 0
            loop:
                csrw 0x8c2, s1     # iter start, label = s1
                li t0, 5
                inner:
                    addi t0, t0, -1
                    bgtz t0, inner
                csrw 0x8c3, zero   # iter end
                addi s1, s1, 1
                addi s0, s0, -1
                bgtz s0, loop
            csrw 0x8c1, zero       # SCR end
            ecall
            "#,
        );
        assert_eq!(r.iterations.len(), 2);
        assert_eq!(r.iterations[0].label, 0);
        assert_eq!(r.iterations[1].label, 1);
        assert!(r.iterations[0].cycles() > 0);
        // ROB-PC must have sampled something.
        assert!(r.iterations[0].unit(crate::UnitId::RobPc).cycle_rows > 0);
        // Each iteration carries its own pipeline delta, and the deltas
        // cannot exceed the run-level totals.
        for it in &r.iterations {
            assert!(it.pipeline.cycles > 0);
            assert!(it.pipeline.committed > 0);
            assert!(it.pipeline.cycles <= r.pipeline.cycles);
        }
        let iter_cycles: u64 = r.iterations.iter().map(|i| i.pipeline.cycles).sum();
        assert!(iter_cycles <= r.pipeline.cycles);
    }

    #[test]
    fn exit_csr_code_returned() {
        let (_, r) = run_on(CoreConfig::small_boom(), "li a0, 7\ncsrw 0x8c4, a0\nnop\necall\n");
        assert_eq!(r.exit_code, 7);
    }

    #[test]
    fn out_of_cycles_reported() {
        let p = assemble("spin: j spin\n").unwrap();
        let mut m = Machine::new(CoreConfig::small_boom(), &p);
        match m.run(500) {
            Err(SimError::OutOfCycles { limit }) => assert_eq!(limit, 500),
            other => panic!("expected OutOfCycles, got {other:?}"),
        }
    }

    #[test]
    fn sim_error_class_names_are_stable_and_embedded_in_display() {
        let out = SimError::OutOfCycles { limit: 9 };
        let dead = SimError::Deadlock { cycle: 3 };
        assert_eq!(out.class(), "out-of-cycles");
        assert_eq!(dead.class(), "deadlock");
        // The bracketed class prefix is what serve-side job classification
        // greps out of stringified trial errors.
        assert!(out.to_string().starts_with("[out-of-cycles]"), "{out}");
        assert!(dead.to_string().starts_with("[deadlock]"), "{dead}");
        assert!(out.is_retryable() && dead.is_retryable());
    }

    #[test]
    fn division_timing_and_value() {
        let (m, r) = run_on(
            CoreConfig::small_boom(),
            "li a0, 1000\nli a1, 7\ndivu a2, a0, a1\nremu a3, a0, a1\nmv a0, a2\necall\n",
        );
        assert_eq!(m.reg(Reg::new(10)), 142);
        assert_eq!(m.reg(Reg::new(13)), 6);
        assert!(r.cycles >= CoreConfig::small_boom().div_latency);
    }
}
