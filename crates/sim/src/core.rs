//! The out-of-order pipeline.
//!
//! One [`Core::tick`] call advances the machine by one cycle. Stages run in
//! reverse pipeline order (commit → memory → issue/execute → rename →
//! fetch) so same-cycle structural effects propagate conservatively, then
//! the tracer samples the post-cycle state of every tracked structure.

use crate::cache::{Access, Cache};
use crate::config::{CoreConfig, PrefetcherKind};
use crate::fault::{FaultCounts, FaultPlan};
use crate::interp;
use crate::memory::Memory;
use crate::pipeline::{PipelineStats, WATCHDOG_NEAR_MISS_CYCLES};
use crate::predictor::{Btb, Gshare, ReturnAddressStack};
use crate::tlb::Tlb;
use crate::trace::{TraceConfig, Tracer, UnitId};
use crate::CoreStats;
use microsampler_isa::{
    CsrOp, Inst, Program, Reg, CSR_CYCLE, CSR_EXIT, CSR_FLUSH_DCACHE, CSR_FLUSH_LINE,
    CSR_FLUSH_TLB, CSR_INPUT, CSR_ITER_END, CSR_ITER_START, CSR_OUTPUT, CSR_SCR_END, CSR_SCR_START,
    STACK_TOP,
};
use std::collections::VecDeque;

type PReg = u16;

/// A fast-bypassed operation riding on another instruction's ROB entry.
#[derive(Clone, Debug)]
struct FusedOp {
    pc: u64,
    stale_prd: Option<PReg>,
    arch_rd: Option<Reg>,
    prd: Option<PReg>,
}

/// A rename-map checkpoint taken at a branch or indirect jump.
#[derive(Clone, Debug)]
struct Checkpoint {
    map: [PReg; 32],
    ras: (usize, usize),
}

#[derive(Clone, Debug)]
struct Uop {
    seq: u64,
    pc: u64,
    inst: Inst,
    prd: Option<PReg>,
    stale_prd: Option<PReg>,
    ps1: Option<PReg>,
    ps2: Option<PReg>,
    issued: bool,
    completed: bool,
    result: u64,
    // Branch/jump prediction state.
    pred_taken: bool,
    pred_target: u64,
    hist_before: u64,
    checkpoint: Option<Checkpoint>,
    // Fused fast-bypass ops (in program order, all *older* than this uop).
    fused: Vec<FusedOp>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LdState {
    WaitAddr,
    Ready,
    Pending,
    Done,
}

#[derive(Clone, Debug)]
struct LdqEntry {
    seq: u64,
    pc: u64,
    addr: Option<u64>,
    size: u64,
    state: LdState,
    done_cycle: u64,
    extra_delay: u64,
    tlb_done: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StState {
    WaitAddr,
    WaitData,
    Ready,
    Draining,
    Drained,
}

#[derive(Clone, Debug)]
struct StqEntry {
    seq: u64,
    pc: u64,
    addr: Option<u64>,
    size: u64,
    data: Option<u64>,
    state: StState,
    drain_done: u64,
    tlb_done: bool,
    committed: bool,
}

#[derive(Clone, Debug)]
struct FetchEntry {
    pc: u64,
    inst: Inst,
    pred_taken: bool,
    pred_target: u64,
    hist_before: u64,
    ras_cp: (usize, usize),
}

/// A multiply or divide executing in a long-latency unit.
#[derive(Clone, Copy, Debug)]
struct LongOp {
    seq: u64,
    pc: u64,
    done_cycle: u64,
    value: u64,
}

#[derive(Clone, Debug)]
struct PendingSquash {
    branch_seq: u64,
    apply_at: u64,
    redirect_to: u64,
    actual_taken: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CoreExit {
    Ecall,
    ExitCsr(u64),
}

pub(crate) struct Core {
    pub cfg: CoreConfig,
    pub mem: Memory,
    pub cycle: u64,
    pub stats: CoreStats,
    /// Pipeline occupancy/stall profiling counters (always on — pure
    /// integer counters, so they stay bit-identical regardless of `obs`
    /// enablement or thread count).
    pub pipeline: PipelineStats,
    /// Snapshot of `pipeline` at the last `ITER_START`/`ITER_END` marker;
    /// per-iteration deltas are measured against it.
    iter_pipeline_base: PipelineStats,
    pub tracer: Tracer,
    pub arch_regs: [u64; 32],
    // Front end.
    fetch_pc: u64,
    fetch_buffer: VecDeque<FetchEntry>,
    gshare: Gshare,
    btb: Btb,
    ras: ReturnAddressStack,
    redirect_bubble: u64,
    icache_stall_until: u64,
    l1i: Cache,
    // Rename.
    map: [PReg; 32],
    free_pregs: Vec<PReg>,
    prf: Vec<u64>,
    prf_ready: Vec<bool>,
    /// Cycle at which each physical register's value becomes usable by
    /// consumers (models the one-cycle producer→consumer bypass).
    prf_ready_at: Vec<u64>,
    pending_fusion: Vec<FusedOp>,
    // Back end.
    rob: VecDeque<Uop>,
    rob_base_seq: u64,
    next_seq: u64,
    iq: Vec<u64>,
    ldq: VecDeque<LdqEntry>,
    stq: VecDeque<StqEntry>,
    l1d: Cache,
    tlb: Tlb,
    pending_squashes: Vec<PendingSquash>,
    // Execution unit occupancy for the current cycle (EUU traces).
    alu_busy: Vec<u64>,
    agu_busy: Vec<u64>,
    mul_inflight: Vec<LongOp>,
    div_busy: Option<LongOp>,
    // Per-cycle trace scratch.
    nlp_issued: Vec<u64>,
    dcache_reqs: Vec<u64>,
    // Fault injection (None unless `cfg.faults` is set).
    fault_plan: Option<FaultPlan>,
    /// The LSU neither drains stores nor starts new loads while
    /// `cycle < lsu_stall_until` (injected MSHR-stall windows; `u64::MAX`
    /// is the permanent wedge).
    lsu_stall_until: u64,
    /// Faults actually injected so far.
    pub fault_counts: FaultCounts,
    // Progress watchdog.
    last_commit_cycle: u64,
    text_base: u64,
    text_len: u64,
    pub exit: Option<CoreExit>,
    /// Words served to non-speculative `csrr` reads of [`CSR_INPUT`].
    pub input_queue: VecDeque<u64>,
    /// Words written via [`CSR_OUTPUT`] (pushed at commit).
    pub outputs: Vec<u64>,
    /// Per-cycle state dump to stderr (debugging aid).
    pub debug: bool,
}

impl Core {
    pub fn new(cfg: CoreConfig, program: &Program, trace_cfg: TraceConfig) -> Core {
        cfg.validate();
        let mut mem = Memory::new();
        mem.write_bytes(program.text_base, &program.text);
        mem.write_bytes(program.data_base, &program.data);
        let mut map = [0 as PReg; 32];
        let mut prf = vec![0u64; cfg.prf_regs];
        let prf_ready_at = vec![0u64; cfg.prf_regs];
        let mut prf_ready = vec![false; cfg.prf_regs];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PReg;
            prf_ready[i] = true;
        }
        prf[Reg::SP.index()] = STACK_TOP;
        let free_pregs: Vec<PReg> = (32..cfg.prf_regs as PReg).rev().collect();
        let mut arch_regs = [0u64; 32];
        arch_regs[Reg::SP.index()] = STACK_TOP;
        Core {
            fetch_pc: program.entry,
            fetch_buffer: VecDeque::new(),
            gshare: match (cfg.bpred_adversarial_init, cfg.bpred_random_init) {
                (Some(seed), _) => Gshare::new_adversarial(cfg.bpred_entries, seed),
                (None, Some(seed)) => Gshare::new_randomized(cfg.bpred_entries, seed),
                (None, None) => Gshare::new(cfg.bpred_entries),
            },
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnAddressStack::new(cfg.ras_entries),
            redirect_bubble: 0,
            icache_stall_until: 0,
            l1i: Cache::new(cfg.l1i, cfg.l1i.mshrs),
            map,
            free_pregs,
            prf,
            prf_ready,
            prf_ready_at,
            pending_fusion: Vec::new(),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            rob_base_seq: 0,
            next_seq: 0,
            iq: Vec::with_capacity(cfg.iq_entries),
            ldq: VecDeque::with_capacity(cfg.ldq_entries),
            stq: VecDeque::with_capacity(cfg.stq_entries),
            l1d: Cache::new(cfg.l1d, cfg.lfb_entries),
            tlb: Tlb::new(cfg.tlb_entries),
            pending_squashes: Vec::new(),
            alu_busy: vec![0; cfg.n_alus],
            agu_busy: vec![0; cfg.n_agus],
            mul_inflight: Vec::new(),
            div_busy: None,
            nlp_issued: Vec::new(),
            dcache_reqs: Vec::new(),
            fault_plan: cfg.faults.map(FaultPlan::new),
            lsu_stall_until: 0,
            fault_counts: FaultCounts::default(),
            last_commit_cycle: 0,
            text_base: program.text_base,
            text_len: program.text.len() as u64,
            arch_regs,
            mem,
            cycle: 0,
            stats: CoreStats::default(),
            pipeline: PipelineStats::default(),
            iter_pipeline_base: PipelineStats::default(),
            tracer: Tracer::new(trace_cfg),
            cfg,
            exit: None,
            input_queue: VecDeque::new(),
            outputs: Vec::new(),
            debug: false,
        }
    }

    fn debug_dump(&self) {
        microsampler_obs::diag_debug!(
            "c{} fpc={:#x} bub={} fb={} iq={:?} squash={:?}",
            self.cycle,
            self.fetch_pc,
            self.redirect_bubble,
            self.fetch_buffer.len(),
            self.iq,
            self.pending_squashes.iter().map(|p| (p.branch_seq, p.apply_at)).collect::<Vec<_>>(),
        );
        for u in &self.rob {
            microsampler_obs::diag_debug!(
                "  rob seq={} pc={:#x} {:?} issued={} done={}",
                u.seq,
                u.pc,
                u.inst,
                u.issued,
                u.completed
            );
        }
        for e in &self.stq {
            microsampler_obs::diag_debug!(
                "  stq seq={} addr={:?} state={:?}",
                e.seq,
                e.addr,
                e.state
            );
        }
        for e in &self.ldq {
            microsampler_obs::diag_debug!(
                "  ldq seq={} addr={:?} state={:?}",
                e.seq,
                e.addr,
                e.state
            );
        }
    }

    fn rob_index(&self, seq: u64) -> Option<usize> {
        let idx = seq.checked_sub(self.rob_base_seq)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    fn uop(&self, seq: u64) -> &Uop {
        &self.rob[self.rob_index(seq).expect("live uop")]
    }

    fn uop_mut(&mut self, seq: u64) -> &mut Uop {
        let idx = self.rob_index(seq).expect("live uop");
        &mut self.rob[idx]
    }

    fn preg_of(&self, r: Reg) -> PReg {
        if r.is_zero() {
            0
        } else {
            self.map[r.index()]
        }
    }

    fn read_preg(&self, p: PReg) -> u64 {
        if p == 0 {
            0
        } else {
            self.prf[p as usize]
        }
    }

    fn preg_ready(&self, p: Option<PReg>) -> bool {
        match p {
            None => true,
            Some(0) => true,
            Some(p) => self.prf_ready[p as usize] && self.prf_ready_at[p as usize] <= self.cycle,
        }
    }

    /// Advances one cycle. Sets `self.exit` when the program stops.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.pipeline.cycles += 1;
        if self.cycle - self.last_commit_cycle == WATCHDOG_NEAR_MISS_CYCLES {
            self.pipeline.watchdog_near_misses += 1;
        }
        self.alu_busy.iter_mut().for_each(|b| *b = 0);
        self.agu_busy.iter_mut().for_each(|b| *b = 0);
        self.nlp_issued.clear();
        self.dcache_reqs.clear();

        self.l1d.tick(self.cycle);
        self.l1i.tick(self.cycle);
        self.inject_faults();
        self.apply_squash();
        self.commit();
        if self.exit.is_some() {
            return;
        }
        self.complete_long_ops();
        self.lsu_tick();
        self.issue();
        self.pipeline.mul_busy += !self.mul_inflight.is_empty() as u64;
        self.pipeline.div_busy += self.div_busy.is_some() as u64;
        self.rename();
        self.fetch();
        self.sample_trace();
        if self.debug {
            self.debug_dump();
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Applies this cycle's scheduled fault perturbations (no-op without
    /// `cfg.faults`). Runs before squash/commit so injected squashes obey
    /// the normal `branch_kill_delay` pipeline timing.
    fn inject_faults(&mut self) {
        let Some(plan) = self.fault_plan else { return };
        let cycle = self.cycle;
        if plan.wedge_at(cycle) {
            self.lsu_stall_until = u64::MAX;
        }
        if let Some(len) = plan.mshr_stall_at(cycle) {
            self.lsu_stall_until = self.lsu_stall_until.max(cycle + len);
            self.fault_counts.mshr_stalls += 1;
        }
        if let Some(salt) = plan.evict_salt_at(cycle) {
            if self.l1d.evict_any(salt).is_some() {
                self.fault_counts.cache_evictions += 1;
            }
        }
        if plan.squash_at(cycle) {
            self.inject_spurious_squash();
        }
    }

    /// Re-squashes the oldest resolved in-flight conditional branch to
    /// its *correct* target: younger work is killed and replayed down the
    /// path it was already on, so the perturbation is architecturally
    /// invisible — only the microarchitectural trace changes.
    fn inject_spurious_squash(&mut self) {
        let victim = self.rob.iter().find_map(|u| {
            if !u.completed || u.checkpoint.is_none() {
                return None;
            }
            let Inst::Branch { offset, .. } = u.inst else { return None };
            if self.pending_squashes.iter().any(|ps| ps.branch_seq == u.seq) {
                return None;
            }
            let taken = u.result & 1 == 1;
            let target = if taken { u.pc.wrapping_add(offset as u64) } else { u.pc + 4 };
            Some((u.seq, target, taken))
        });
        if let Some((seq, target, taken)) = victim {
            self.schedule_squash(seq, target, taken);
            self.fault_counts.spurious_squashes += 1;
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed {
                break;
            }
            // A mispredicted branch stalls at commit until its squash has
            // been applied — the checkpoint it carries is needed for
            // recovery.
            if self.pending_squashes.iter().any(|ps| ps.branch_seq == head.seq) {
                break;
            }
            // Stores must have drained their STQ slot requirements met at
            // commit time; the drain itself continues in the background.
            let head = self.rob.pop_front().expect("head exists");
            self.rob_base_seq = head.seq + 1;
            self.last_commit_cycle = self.cycle;
            self.stats.committed += 1 + head.fused.len() as u64;
            self.pipeline.committed += 1 + head.fused.len() as u64;
            // Free stale physical registers.
            for f in &head.fused {
                if let Some(stale) = f.stale_prd {
                    self.free_pregs.push(stale);
                }
                if let (Some(rd), Some(prd)) = (f.arch_rd, f.prd) {
                    self.arch_regs[rd.index()] = self.read_preg(prd);
                }
            }
            if let Some(stale) = head.stale_prd {
                self.free_pregs.push(stale);
            }
            if let (Some(rd), Some(prd)) = (head.inst.rd(), head.prd) {
                self.arch_regs[rd.index()] = self.read_preg(prd);
            }
            match head.inst {
                Inst::Branch { .. } => {
                    self.stats.branches += 1;
                    let taken = head.result & 1 == 1;
                    self.gshare.train(head.pc, head.hist_before, taken);
                }
                Inst::Jalr { .. } => {
                    self.btb.update(head.pc, head.result);
                }
                Inst::Load { .. } if self.ldq.front().map(|e| e.seq) == Some(head.seq) => {
                    self.ldq.pop_front();
                }
                Inst::Store { .. } => {
                    self.commit_store(head.seq);
                }
                Inst::Csr { op: CsrOp::Rw, csr, .. } => {
                    self.commit_marker(csr, head.result);
                }
                Inst::Ecall => {
                    self.exit = Some(CoreExit::Ecall);
                    return;
                }
                _ => {}
            }
            if self.exit.is_some() {
                return;
            }
        }
    }

    fn commit_store(&mut self, seq: u64) {
        let Some(entry) = self.stq.iter_mut().find(|e| e.seq == seq) else { return };
        let addr = entry.addr.expect("committed store has an address");
        let data = entry.data.expect("committed store has data");
        let size = entry.size;
        entry.committed = true;
        entry.state = StState::Draining;
        self.mem.write_le(addr, size, data);
    }

    fn commit_marker(&mut self, csr: u16, value: u64) {
        match csr {
            CSR_SCR_START => self.tracer.scr_start(self.cycle),
            CSR_SCR_END => self.tracer.scr_end(self.cycle),
            CSR_ITER_START => {
                let delta = self.pipeline.delta_since(&self.iter_pipeline_base);
                self.tracer.set_pipeline(delta);
                self.tracer.iter_start(self.cycle, value);
                self.iter_pipeline_base = self.pipeline;
            }
            CSR_ITER_END => {
                let delta = self.pipeline.delta_since(&self.iter_pipeline_base);
                self.tracer.set_pipeline(delta);
                self.tracer.iter_end(self.cycle);
                self.iter_pipeline_base = self.pipeline;
            }
            CSR_EXIT => self.exit = Some(CoreExit::ExitCsr(value)),
            CSR_FLUSH_LINE => self.l1d.flush_line(value),
            CSR_FLUSH_DCACHE => self.l1d.flush_all(),
            CSR_FLUSH_TLB => self.tlb.flush(),
            CSR_OUTPUT => self.outputs.push(value),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Squash
    // ------------------------------------------------------------------

    fn apply_squash(&mut self) {
        // Per-branch kill: of the squashes whose kill latency has elapsed,
        // apply the oldest. Pending squashes belonging to branches that the
        // applied squash removes are dropped; an *older* branch's pending
        // squash survives and will re-squash later (its instruction is
        // older than everything this squash killed).
        let now = self.cycle;
        let ready = self
            .pending_squashes
            .iter()
            .filter(|ps| ps.apply_at <= now)
            .min_by_key(|ps| ps.branch_seq)
            .cloned();
        let Some(ps) = ready else { return };
        self.pending_squashes.retain(|p| p.branch_seq < ps.branch_seq);
        let Some(branch_idx) = self.rob_index(ps.branch_seq) else {
            // The branch is gone (killed by an even older squash earlier).
            return;
        };
        // Restore rename state from the branch's checkpoint.
        let branch = &self.rob[branch_idx];
        let cp = branch.checkpoint.clone().expect("branch carries a checkpoint");
        let hist_before = branch.hist_before;
        self.map = cp.map;
        self.ras.restore(cp.ras);
        self.gshare.repair(hist_before, ps.actual_taken);
        // Drop younger uops, freeing their physical registers.
        while self.rob.len() > branch_idx + 1 {
            let u = self.rob.pop_back().expect("len checked");
            self.stats.squashed += 1 + u.fused.len() as u64;
            if let Some(p) = u.prd {
                self.free_pregs.push(p);
            }
            for f in &u.fused {
                if let Some(p) = f.prd {
                    self.free_pregs.push(p);
                }
            }
        }
        for f in self.pending_fusion.drain(..) {
            if let Some(p) = f.prd {
                self.free_pregs.push(p);
            }
        }
        // Sequence numbers continue contiguously after the branch so the
        // seq ↔ ROB-index invariant holds for the correct path.
        self.next_seq = ps.branch_seq + 1;
        let cutoff = ps.branch_seq;
        self.iq.retain(|&s| s <= cutoff);
        self.ldq.retain(|e| e.seq <= cutoff);
        self.stq.retain(|e| e.seq <= cutoff || e.committed);
        self.mul_inflight.retain(|op| op.seq <= cutoff);
        if self.div_busy.map(|op| op.seq > cutoff).unwrap_or(false) {
            self.div_busy = None;
        }
        // Redirect the front end.
        self.fetch_buffer.clear();
        self.fetch_pc = ps.redirect_to;
        self.redirect_bubble = 2;
    }

    fn schedule_squash(&mut self, branch_seq: u64, redirect_to: u64, actual_taken: bool) {
        let apply_at = self.cycle + self.cfg.branch_kill_delay;
        if self.pending_squashes.iter().any(|ps| ps.branch_seq == branch_seq) {
            return;
        }
        self.pending_squashes.push(PendingSquash {
            branch_seq,
            apply_at,
            redirect_to,
            actual_taken,
        });
    }

    // ------------------------------------------------------------------
    // Execute / writeback
    // ------------------------------------------------------------------

    fn complete_long_ops(&mut self) {
        let now = self.cycle;
        let mut done: Vec<LongOp> = Vec::new();
        self.mul_inflight.retain(|op| {
            if op.done_cycle <= now {
                done.push(*op);
                false
            } else {
                true
            }
        });
        if let Some(op) = self.div_busy {
            if op.done_cycle <= now {
                done.push(op);
                self.div_busy = None;
            }
        }
        for op in done {
            if self.rob_index(op.seq).is_none() {
                continue; // squashed while executing
            }
            let prd = self.uop(op.seq).prd;
            if let Some(prd) = prd {
                self.write_preg(prd, op.value);
            }
            self.uop_mut(op.seq).completed = true;
        }
    }

    /// Writes a physical register whose value is usable immediately
    /// (completed fills and long-latency results — the latency has already
    /// been charged).
    fn write_preg(&mut self, prd: PReg, value: u64) {
        self.write_preg_at(prd, value, self.cycle);
    }

    /// Writes a physical register usable from the *next* cycle (single-
    /// cycle ALU results produced during this cycle's issue).
    fn write_preg_next_cycle(&mut self, prd: PReg, value: u64) {
        self.write_preg_at(prd, value, self.cycle + 1);
    }

    fn write_preg_at(&mut self, prd: PReg, value: u64, ready_at: u64) {
        if prd != 0 {
            self.prf[prd as usize] = value;
            self.prf_ready[prd as usize] = true;
            self.prf_ready_at[prd as usize] = ready_at;
        }
    }

    // ------------------------------------------------------------------
    // Load/store unit
    // ------------------------------------------------------------------

    fn lsu_tick(&mut self) {
        // Complete pending loads.
        let now = self.cycle;
        let mut completed_loads: Vec<(u64, u64)> = Vec::new(); // (seq, value_raw_addr)
        for e in self.ldq.iter_mut() {
            if e.state == LdState::Pending && e.done_cycle <= now {
                e.state = LdState::Done;
                completed_loads.push((e.seq, e.addr.expect("pending load has addr")));
            }
        }
        for (seq, addr) in completed_loads {
            self.finish_load(seq, addr);
        }
        // An injected MSHR-stall window (or the permanent wedge) freezes
        // new LSU work: no store drains, no new load issues. Completions
        // already in flight and store-data capture still proceed.
        let stalled = self.cycle < self.lsu_stall_until;
        if stalled {
            self.pipeline.fault_stall_cycles += 1;
        }
        // Drain committed stores.
        let mut drain_reqs: Vec<(u64, u64)> = Vec::new();
        if !stalled {
            for e in self.stq.iter_mut() {
                if e.state == StState::Draining {
                    let addr = e.addr.expect("draining store has addr");
                    drain_reqs.push((e.seq, addr));
                }
            }
        }
        for (seq, addr) in drain_reqs {
            // First drain attempt translates through the TLB.
            let mut extra = 0;
            let tlb_pending = {
                let e = self.stq.iter().find(|e| e.seq == seq).expect("draining store");
                !e.tlb_done
            };
            if tlb_pending {
                if self.tlb.access(addr) {
                    self.stats.tlb_hits += 1;
                } else {
                    self.stats.tlb_misses += 1;
                    extra = self.cfg.tlb_miss_latency;
                }
                if let Some(e) = self.stq.iter_mut().find(|e| e.seq == seq) {
                    e.tlb_done = true;
                }
            }
            self.dcache_reqs.push(addr);
            let access = self.l1d.access(addr, now + extra, &self.mem);
            let (state, done) = match access {
                Access::Hit(c) => {
                    self.stats.l1d_hits += 1;
                    (StState::Drained, c)
                }
                Access::Miss(c) => {
                    self.stats.l1d_misses += 1;
                    self.maybe_prefetch(addr);
                    (StState::Drained, c)
                }
                Access::Retry => {
                    self.pipeline.lsu_retry_events += 1;
                    (StState::Draining, 0)
                }
            };
            if let Some(e) = self.stq.iter_mut().find(|e| e.seq == seq) {
                if state == StState::Drained {
                    e.state = StState::Drained;
                    e.drain_done = done + extra;
                }
            }
        }
        self.stq.retain(|e| !(e.state == StState::Drained && e.drain_done <= now));
        // Mark stores ready when address and data are both known.
        let mut data_updates: Vec<(u64, u64)> = Vec::new();
        for e in self.stq.iter() {
            if e.state == StState::WaitData {
                let u = &self.rob[self.rob_index(e.seq).expect("live store")];
                if self.preg_ready(u.ps2) {
                    data_updates.push((e.seq, self.read_preg(u.ps2.unwrap_or(0))));
                }
            }
        }
        for (seq, data) in data_updates {
            if let Some(e) = self.stq.iter_mut().find(|e| e.seq == seq) {
                e.data = Some(data);
                e.state = StState::Ready;
            }
            self.uop_mut(seq).completed = true;
        }
        // Start memory accesses for ready loads (up to 2 per cycle).
        let mut started = 0;
        let ready: Vec<u64> = if stalled {
            Vec::new()
        } else {
            self.ldq.iter().filter(|e| e.state == LdState::Ready).map(|e| e.seq).collect()
        };
        for seq in ready {
            if started >= 2 {
                break;
            }
            if self.try_start_load(seq) {
                started += 1;
            }
        }
    }

    /// Attempts to start the memory access of a load whose address is known.
    fn try_start_load(&mut self, seq: u64) -> bool {
        let (addr, size) = {
            let e = self.ldq.iter().find(|e| e.seq == seq).expect("load in LDQ");
            (e.addr.expect("ready load has addr"), e.size)
        };
        // Memory disambiguation against older stores.
        let mut forward: Option<u64> = None;
        for s in self.stq.iter().rev() {
            if s.seq >= seq {
                continue;
            }
            match s.addr {
                None => return false, // unknown older store address: wait
                Some(saddr) => {
                    let overlap = saddr < addr + size && addr < saddr + s.size;
                    if !overlap {
                        continue;
                    }
                    let covers = saddr <= addr && saddr + s.size >= addr + size;
                    if covers {
                        match s.data {
                            Some(data) => {
                                forward = Some((data >> (8 * (addr - saddr))) & mask(size));
                                break;
                            }
                            None => return false, // data not ready yet
                        }
                    } else {
                        return false; // partial overlap: wait for drain
                    }
                }
            }
        }
        let now = self.cycle;
        if let Some(value) = forward {
            // Store-to-load forwarding: the value never touches the cache.
            self.stats.stl_forwards += 1;
            self.finish_load_with_value(seq, value);
            return true;
        }
        // TLB.
        let entry = self.ldq.iter().find(|e| e.seq == seq).expect("load");
        let mut extra = entry.extra_delay;
        if !entry.tlb_done {
            if self.tlb.access(addr) {
                self.stats.tlb_hits += 1;
            } else {
                self.stats.tlb_misses += 1;
                extra = self.cfg.tlb_miss_latency;
            }
        }
        self.dcache_reqs.push(addr);
        let access = self.l1d.access(addr, now + extra, &self.mem);
        match access {
            Access::Hit(c) => {
                self.stats.l1d_hits += 1;
                let e = self.ldq.iter_mut().find(|e| e.seq == seq).expect("load");
                e.tlb_done = true;
                e.state = LdState::Pending;
                e.done_cycle = c + extra;
                true
            }
            Access::Miss(c) => {
                self.stats.l1d_misses += 1;
                self.maybe_prefetch(addr);
                let e = self.ldq.iter_mut().find(|e| e.seq == seq).expect("load");
                e.tlb_done = true;
                e.state = LdState::Pending;
                e.done_cycle = c + extra;
                true
            }
            Access::Retry => {
                self.pipeline.lsu_retry_events += 1;
                let e = self.ldq.iter_mut().find(|e| e.seq == seq).expect("load");
                e.tlb_done = true;
                e.extra_delay = extra;
                false
            }
        }
    }

    fn maybe_prefetch(&mut self, addr: u64) {
        if self.cfg.prefetcher == PrefetcherKind::NextLine {
            let next = self.l1d.line_addr(addr) + self.cfg.l1d.line_bytes;
            if self.l1d.prefetch(next, self.cycle, &self.mem) {
                self.stats.prefetches += 1;
                self.nlp_issued.push(next);
            }
        }
    }

    fn finish_load(&mut self, seq: u64, addr: u64) {
        let size = self.ldq.iter().find(|e| e.seq == seq).expect("load").size;
        let raw = self.mem.read_le(addr, size);
        self.finish_load_with_value(seq, raw & mask(size));
    }

    fn finish_load_with_value(&mut self, seq: u64, raw: u64) {
        if let Some(e) = self.ldq.iter_mut().find(|e| e.seq == seq) {
            e.state = LdState::Done;
        }
        let (op, prd) = {
            let u = self.uop(seq);
            match u.inst {
                Inst::Load { op, .. } => (op, u.prd),
                _ => unreachable!("LDQ entry refers to a load"),
            }
        };
        let value = interp::extend_load(op, raw);
        if let Some(prd) = prd {
            self.write_preg(prd, value);
        }
        let u = self.uop_mut(seq);
        u.result = value;
        u.completed = true;
    }

    // ------------------------------------------------------------------
    // Issue / execute (single-cycle and unit dispatch)
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        let mut issued = 0;
        let mut alus_used = 0;
        let mut agus_used = 0;
        let mut mul_issued = false;
        self.iq.sort_unstable();
        let candidates: Vec<u64> = self.iq.clone();
        let mut remove: Vec<u64> = Vec::new();
        for seq in candidates {
            if issued >= self.cfg.issue_width {
                break;
            }
            let Some(idx) = self.rob_index(seq) else {
                remove.push(seq);
                continue;
            };
            let (ps1, ps2, inst) = {
                let u = &self.rob[idx];
                (u.ps1, u.ps2, u.inst)
            };
            // Stores only need the address operand to issue to the AGU;
            // the data operand is picked up by the LSU when it is ready.
            let needs_ps2 = !inst.is_store();
            if !self.preg_ready(ps1) || (needs_ps2 && !self.preg_ready(ps2)) {
                continue;
            }
            let a = self.read_preg(ps1.unwrap_or(0));
            let b = self.read_preg(ps2.unwrap_or(0));
            match inst {
                Inst::MulDiv { op, .. } if !op.is_div() => {
                    if mul_issued {
                        continue;
                    }
                    mul_issued = true;
                    let value = interp::muldiv(op, a, b);
                    let pc = self.rob[idx].pc;
                    // Operand-dependent early-out (off in the paper presets):
                    // narrow operands complete in one cycle, making `mul`
                    // latency secret-dependent.
                    let latency = if self.cfg.mul_early_out && (a < (1 << 16) || b < (1 << 16)) {
                        1
                    } else {
                        self.cfg.mul_latency
                    };
                    self.mul_inflight.push(LongOp {
                        seq,
                        pc,
                        done_cycle: self.cycle + latency,
                        value,
                    });
                    self.rob[idx].issued = true;
                }
                Inst::MulDiv { op, .. } => {
                    if self.div_busy.is_some() {
                        continue;
                    }
                    let value = interp::muldiv(op, a, b);
                    let pc = self.rob[idx].pc;
                    self.div_busy = Some(LongOp {
                        seq,
                        pc,
                        done_cycle: self.cycle + self.cfg.div_latency,
                        value,
                    });
                    self.rob[idx].issued = true;
                }
                Inst::Load { .. } | Inst::Store { .. } => {
                    if agus_used >= self.cfg.n_agus {
                        continue;
                    }
                    let (_, offset) = inst.mem_base().expect("memory shape");
                    let addr = a.wrapping_add(offset as u64);
                    let pc = self.rob[idx].pc;
                    self.agu_busy[agus_used] = pc;
                    agus_used += 1;
                    self.rob[idx].issued = true;
                    if matches!(inst, Inst::Load { .. }) {
                        if let Some(e) = self.ldq.iter_mut().find(|e| e.seq == seq) {
                            e.addr = Some(addr);
                            e.state = LdState::Ready;
                        }
                    } else if let Some(e) = self.stq.iter_mut().find(|e| e.seq == seq) {
                        e.addr = Some(addr);
                        e.state = StState::WaitData;
                    }
                }
                _ => {
                    if alus_used >= self.cfg.n_alus {
                        continue;
                    }
                    // Input and cycle CSR reads are non-speculative: only
                    // execute at the head of the ROB (all older
                    // instructions committed, so this instruction cannot
                    // be squashed and the cycle read is serialized).
                    if matches!(inst, Inst::Csr { csr: CSR_INPUT | CSR_CYCLE, .. })
                        && seq != self.rob_base_seq
                    {
                        continue;
                    }
                    let pc = self.rob[idx].pc;
                    self.alu_busy[alus_used] = pc;
                    alus_used += 1;
                    self.rob[idx].issued = true;
                    self.execute_alu(seq, a, b);
                }
            }
            remove.push(seq);
            issued += 1;
        }
        self.iq.retain(|s| !remove.contains(s));
        self.pipeline.alu_busy += alus_used as u64;
        self.pipeline.agu_busy += agus_used as u64;
    }

    fn execute_alu(&mut self, seq: u64, a: u64, b: u64) {
        let idx = self.rob_index(seq).expect("live uop");
        let (pc, inst, prd, pred_taken, pred_target) = {
            let u = &self.rob[idx];
            (u.pc, u.inst, u.prd, u.pred_taken, u.pred_target)
        };
        let mut result = 0u64;
        match inst {
            Inst::Lui { imm, .. } => result = imm as u64,
            Inst::Auipc { imm, .. } => result = pc.wrapping_add(imm as u64),
            Inst::OpImm { op, imm, .. } => result = interp::alu(op, a, imm as u64),
            Inst::Op { op, .. } => result = interp::alu(op, a, b),
            Inst::Jal { .. } => result = pc.wrapping_add(4),
            Inst::Jalr { offset, .. } => {
                let target = a.wrapping_add(offset as u64) & !1;
                if target != pred_target {
                    self.stats.jalr_mispredicts += 1;
                    self.schedule_squash(seq, target, true);
                }
                if let Some(prd) = prd {
                    self.write_preg_next_cycle(prd, pc.wrapping_add(4));
                }
                let u = &mut self.rob[idx];
                u.result = target;
                u.completed = true;
                return;
            }
            Inst::Branch { op, offset, .. } => {
                let taken = interp::branch_taken(op, a, b);
                result = taken as u64;
                if taken != pred_taken {
                    self.stats.branch_mispredicts += 1;
                    let target = if taken { pc.wrapping_add(offset as u64) } else { pc + 4 };
                    self.schedule_squash(seq, target, taken);
                }
            }
            Inst::Csr { csr, .. } => {
                result = match csr {
                    CSR_INPUT => self.input_queue.pop_front().unwrap_or(0),
                    CSR_CYCLE => self.cycle,
                    _ => a,
                };
            }
            Inst::Ecall | Inst::Ebreak | Inst::Fence => {}
            Inst::Load { .. } | Inst::Store { .. } | Inst::MulDiv { .. } => {
                unreachable!("handled by dedicated units")
            }
        }
        if let Some(prd) = prd {
            self.write_preg_next_cycle(prd, result);
        }
        let u = &mut self.rob[idx];
        u.result = result;
        u.completed = true;
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn rename(&mut self) {
        // Stall-cause attribution: when *zero* instructions rename this
        // cycle, charge the cycle to whatever blocked the first slot (any
        // later slot only runs because every earlier one renamed).
        for slot in 0..self.cfg.decode_width {
            let Some(fe) = self.fetch_buffer.front() else {
                if slot == 0 {
                    self.pipeline.fetch_starved_cycles += 1;
                }
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries {
                if slot == 0 {
                    self.pipeline.rob_full_cycles += 1;
                }
                break;
            }
            // A fence drains the store queue: it does not rename until
            // every older store (including background drains) has left.
            if matches!(fe.inst, Inst::Fence) && !self.stq.is_empty() {
                if slot == 0 {
                    self.pipeline.dispatch_stall_cycles += 1;
                }
                break;
            }
            let needs_iq = !matches!(fe.inst, Inst::Ecall | Inst::Ebreak | Inst::Fence);
            if needs_iq && self.iq.len() >= self.cfg.iq_entries {
                if slot == 0 {
                    self.pipeline.dispatch_stall_cycles += 1;
                }
                break;
            }
            if fe.inst.is_load() && self.ldq.len() >= self.cfg.ldq_entries {
                if slot == 0 {
                    self.pipeline.dispatch_stall_cycles += 1;
                }
                break;
            }
            if fe.inst.is_store() && self.stq.len() >= self.cfg.stq_entries {
                if slot == 0 {
                    self.pipeline.dispatch_stall_cycles += 1;
                }
                break;
            }
            let needs_preg = fe.inst.rd().is_some();
            if needs_preg && self.free_pregs.is_empty() {
                if slot == 0 {
                    self.pipeline.dispatch_stall_cycles += 1;
                }
                break;
            }
            let fe = self.fetch_buffer.pop_front().expect("checked above");
            // Fast-bypass check (paper §VII-B): a register-register AND with
            // an available zero operand skips execution entirely.
            if self.cfg.fast_bypass {
                if let Inst::Op { op: microsampler_isa::AluOp::And, rd, rs1, rs2 } = fe.inst {
                    let p1 = self.preg_of(rs1);
                    let p2 = self.preg_of(rs2);
                    let zero_operand = (self.preg_ready(Some(p1)) && self.read_preg(p1) == 0)
                        || (self.preg_ready(Some(p2)) && self.read_preg(p2) == 0);
                    if zero_operand {
                        self.stats.fast_bypasses += 1;
                        let (prd, stale) = if rd.is_zero() {
                            (None, None)
                        } else {
                            let p = self.free_pregs.pop().expect("checked above");
                            let stale = self.map[rd.index()];
                            self.map[rd.index()] = p;
                            self.prf[p as usize] = 0;
                            self.prf_ready[p as usize] = true;
                            self.prf_ready_at[p as usize] = self.cycle;
                            (Some(p), Some(stale))
                        };
                        self.pending_fusion.push(FusedOp {
                            pc: fe.pc,
                            stale_prd: stale,
                            arch_rd: (!rd.is_zero()).then_some(rd),
                            prd,
                        });
                        continue;
                    }
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let (rs1, rs2) = fe.inst.sources();
            let ps1 = rs1.map(|r| self.preg_of(r));
            let ps2 = rs2.map(|r| self.preg_of(r));
            let (prd, stale_prd) = match fe.inst.rd() {
                Some(rd) => {
                    let p = self.free_pregs.pop().expect("checked above");
                    let stale = self.map[rd.index()];
                    self.map[rd.index()] = p;
                    self.prf_ready[p as usize] = false;
                    (Some(p), Some(stale))
                }
                None => (None, None),
            };
            let checkpoint = if matches!(fe.inst, Inst::Branch { .. } | Inst::Jalr { .. }) {
                Some(Checkpoint { map: self.map, ras: fe.ras_cp })
            } else {
                None
            };
            let completed = matches!(fe.inst, Inst::Ecall | Inst::Ebreak | Inst::Fence);
            let uop = Uop {
                seq,
                pc: fe.pc,
                inst: fe.inst,
                prd,
                stale_prd,
                ps1,
                ps2,
                issued: false,
                completed,
                result: 0,
                pred_taken: fe.pred_taken,
                pred_target: fe.pred_target,
                hist_before: fe.hist_before,
                checkpoint,
                fused: std::mem::take(&mut self.pending_fusion),
            };
            if fe.inst.is_load() {
                self.ldq.push_back(LdqEntry {
                    seq,
                    pc: fe.pc,
                    addr: None,
                    size: fe.inst.mem_size().expect("load shape"),
                    state: LdState::WaitAddr,
                    done_cycle: 0,
                    extra_delay: 0,
                    tlb_done: false,
                });
            }
            if fe.inst.is_store() {
                self.stq.push_back(StqEntry {
                    seq,
                    pc: fe.pc,
                    addr: None,
                    size: fe.inst.mem_size().expect("store shape"),
                    data: None,
                    state: StState::WaitAddr,
                    drain_done: 0,
                    tlb_done: false,
                    committed: false,
                });
            }
            if needs_iq {
                self.iq.push(seq);
            }
            self.rob.push_back(uop);
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.redirect_bubble > 0 {
            self.redirect_bubble -= 1;
            self.pipeline.squash_recovery_cycles += 1;
            return;
        }
        if self.icache_stall_until > self.cycle {
            self.pipeline.icache_stall_cycles += 1;
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width
            && self.fetch_buffer.len() < self.cfg.fetch_buffer_entries
        {
            let pc = self.fetch_pc;
            if pc < self.text_base || pc >= self.text_base + self.text_len || !pc.is_multiple_of(4)
            {
                // Off the map (almost always a wrong path): stall until a
                // squash redirects us.
                return;
            }
            match self.l1i.access(pc, self.cycle, &self.mem) {
                Access::Hit(_) => self.stats.l1i_hits += 1,
                Access::Miss(ready) => {
                    self.stats.l1i_misses += 1;
                    self.icache_stall_until = ready;
                    self.pipeline.icache_stall_cycles += 1;
                    return;
                }
                Access::Retry => return,
            }
            let word = self.mem.read_u32(pc);
            let Ok(inst) = microsampler_isa::decode(word) else {
                // Undecodable word on a (wrong) path: stall.
                return;
            };
            let ras_cp = self.ras.checkpoint();
            let hist_before = self.gshare.history();
            let mut pred_taken = false;
            let mut pred_target = pc + 4;
            match inst {
                Inst::Jal { rd, offset } => {
                    pred_taken = true;
                    pred_target = pc.wrapping_add(offset as u64);
                    if rd == Reg::RA {
                        self.ras.push(pc + 4);
                    }
                }
                Inst::Jalr { rd, rs1, .. } => {
                    pred_taken = true;
                    pred_target = if rd.is_zero() && rs1 == Reg::RA {
                        self.ras.pop().or_else(|| self.btb.lookup(pc)).unwrap_or(pc + 4)
                    } else {
                        self.btb.lookup(pc).unwrap_or(pc + 4)
                    };
                    if rd == Reg::RA {
                        self.ras.push(pc + 4);
                    }
                }
                Inst::Branch { offset, .. } => {
                    pred_taken = self.gshare.predict_and_update_history(pc);
                    if pred_taken {
                        pred_target = pc.wrapping_add(offset as u64);
                    }
                }
                _ => {}
            }
            self.fetch_buffer.push_back(FetchEntry {
                pc,
                inst,
                pred_taken,
                pred_target,
                hist_before,
                ras_cp,
            });
            fetched += 1;
            self.fetch_pc = pred_target;
            if pred_taken {
                // Taken control flow ends the fetch group (one-bubble
                // redirect within the front end).
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    fn sample_trace(&mut self) {
        if !self.tracer.active() {
            return;
        }
        self.tracer.begin_cycle(self.cycle);
        let mut row: Vec<u64>;

        row = vec![0; self.cfg.stq_entries];
        for (i, e) in self.stq.iter().enumerate().take(self.cfg.stq_entries) {
            row[i] = e.addr.unwrap_or(0);
        }
        self.tracer.record_row(UnitId::SqAddr, &row);

        row = vec![0; self.cfg.stq_entries];
        for (i, e) in self.stq.iter().enumerate().take(self.cfg.stq_entries) {
            row[i] = e.pc;
        }
        self.tracer.record_row(UnitId::SqPc, &row);

        row = vec![0; self.cfg.ldq_entries];
        for (i, e) in self.ldq.iter().enumerate().take(self.cfg.ldq_entries) {
            row[i] = e.addr.unwrap_or(0);
        }
        self.tracer.record_row(UnitId::LqAddr, &row);

        row = vec![0; self.cfg.ldq_entries];
        for (i, e) in self.ldq.iter().enumerate().take(self.cfg.ldq_entries) {
            row[i] = e.pc;
        }
        self.tracer.record_row(UnitId::LqPc, &row);

        self.tracer.record_row(UnitId::RobOccupancy, &[self.rob.len() as u64]);

        let mut rob_pcs = Vec::with_capacity(self.cfg.rob_entries);
        for u in &self.rob {
            for f in &u.fused {
                rob_pcs.push(f.pc);
            }
            rob_pcs.push(u.pc);
        }
        rob_pcs.resize(self.cfg.rob_entries.max(rob_pcs.len()), 0);
        self.tracer.record_row(UnitId::RobPc, &rob_pcs);

        row = vec![0; self.cfg.lfb_entries];
        for (i, l) in self.l1d.lfb_entries().enumerate().take(self.cfg.lfb_entries) {
            row[i] = l.data_digest;
        }
        self.tracer.record_row(UnitId::LfbData, &row);

        row = vec![0; self.cfg.lfb_entries];
        for (i, l) in self.l1d.lfb_entries().enumerate().take(self.cfg.lfb_entries) {
            row[i] = l.line_addr;
        }
        self.tracer.record_row(UnitId::LfbAddr, &row);

        let alu_row = self.alu_busy.clone();
        self.tracer.record_row(UnitId::EuuAlu, &alu_row);
        let agu_row = self.agu_busy.clone();
        self.tracer.record_row(UnitId::EuuAddrGen, &agu_row);

        let div_row = [self.div_busy.map(|op| op.pc).unwrap_or(0)];
        self.tracer.record_row(UnitId::EuuDiv, &div_row);

        let mut mul_row = vec![0; self.cfg.mul_latency as usize];
        for (i, op) in self.mul_inflight.iter().enumerate().take(mul_row.len()) {
            mul_row[i] = op.pc;
        }
        self.tracer.record_row(UnitId::EuuMul, &mul_row);

        let mut nlp_row = self.nlp_issued.clone();
        nlp_row.resize(nlp_row.len().max(2), 0);
        self.tracer.record_row(UnitId::NlpAddr, &nlp_row);

        let mut cache_row = self.dcache_reqs.clone();
        cache_row.resize(cache_row.len().max(4), 0);
        self.tracer.record_row(UnitId::CacheAddr, &cache_row);

        let mut tlb_row = vec![0; self.cfg.tlb_entries];
        for (i, p) in self.tlb.resident_pages().enumerate().take(self.cfg.tlb_entries) {
            tlb_row[i] = p;
        }
        self.tracer.record_row(UnitId::TlbAddr, &tlb_row);

        let mut mshr_row = vec![0; self.cfg.l1d.mshrs];
        for (i, a) in self.l1d.mshr_addrs().enumerate().take(self.cfg.l1d.mshrs) {
            mshr_row[i] = a;
        }
        self.tracer.record_row(UnitId::MshrAddr, &mshr_row);
    }

    /// Cycles since the last commit (deadlock watchdog input).
    pub fn cycles_since_commit(&self) -> u64 {
        self.cycle - self.last_commit_cycle
    }

    /// Flushes the L1D line containing `addr` (harness-level attacker model).
    pub fn flush_dcache_line(&mut self, addr: u64) {
        self.l1d.flush_line(addr);
    }

    /// Installs the L1D lines covering `addr..addr+len` (harness warming).
    pub fn warm_dcache(&mut self, addr: u64, len: u64) {
        let line = self.cfg.l1d.line_bytes;
        let mut a = self.l1d.line_addr(addr);
        while a < addr + len {
            self.l1d.install(a);
            a += line;
        }
    }
}

fn mask(size: u64) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * size)) - 1
    }
}
