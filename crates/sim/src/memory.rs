use std::collections::HashMap;

const PAGE_SIZE: u64 = 4096;

/// Sparse flat physical memory backed by 4 KiB pages.
///
/// Unwritten memory reads as zero. Addresses are full 64-bit; pages are
/// allocated on first write.
///
/// # Example
///
/// ```
/// use microsampler_sim::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x8000_0000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x8000_0000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x9000_0000), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory { pages: HashMap::new() }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(page) => page[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = value;
    }

    /// Reads `N` little-endian bytes as an integer, `N <= 8`.
    pub fn read_le(&self, addr: u64, size: u64) -> u64 {
        debug_assert!(size <= 8);
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value` little-endian.
    pub fn write_le(&mut self, addr: u64, size: u64, value: u64) {
        debug_assert!(size <= 8);
        for i in 0..size {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit little-endian word.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Copies a byte slice into memory.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes into a new vector.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_u8(addr + i)).collect()
    }

    /// A 64-bit digest of one cache line's content, used by the LFB-Data
    /// trace feature (equal lines hash equal; distinct lines almost surely
    /// differ).
    pub fn line_digest(&self, line_addr: u64, line_bytes: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for i in 0..line_bytes {
            h ^= self.read_u8(line_addr + i) as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(u64::MAX - 8), 0);
    }

    #[test]
    fn byte_roundtrip_across_pages() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 1;
        m.write_u8(addr, 0xAB);
        m.write_u8(addr + 1, 0xCD);
        assert_eq!(m.read_u8(addr), 0xAB);
        assert_eq!(m.read_u8(addr + 1), 0xCD);
        assert_eq!(m.read_le(addr, 2), 0xCDAB);
    }

    #[test]
    fn le_roundtrip() {
        let mut m = Memory::new();
        for size in 1..=8u64 {
            let v = 0x0102_0304_0506_0708u64;
            m.write_le(100, size, v);
            let mask = if size == 8 { u64::MAX } else { (1 << (8 * size)) - 1 };
            assert_eq!(m.read_le(100, size), v & mask, "size {size}");
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..100).collect();
        m.write_bytes(5000, &data);
        assert_eq!(m.read_bytes(5000, 100), data);
    }

    #[test]
    fn line_digest_distinguishes_content() {
        let mut m = Memory::new();
        let d0 = m.line_digest(0, 64);
        m.write_u8(63, 1);
        let d1 = m.line_digest(0, 64);
        assert_ne!(d0, d1);
        // Identical content on a different line address digests the same.
        m.write_u8(64 + 63, 1);
        assert_eq!(m.line_digest(64, 64), d1);
    }
}
