//! Cycle-granularity microarchitectural tracing (paper §V-A/§V-B).
//!
//! Each simulated cycle inside an active security-critical region, the core
//! reports one row of values per tracked unit (Table IV). Rows are folded
//! into per-iteration summaries:
//!
//! * a streaming **snapshot hash** over the full 2-D matrix (rows × cycles),
//! * a **timeless hash** with consecutive duplicate rows consolidated
//!   (the timing-removal transform of Fig. 9),
//! * the **feature set** (distinct non-zero values) for uniqueness analysis,
//! * the **feature order** (first-occurrence sequence) for ordering analysis,
//! * optionally the **raw matrix** (for small runs, figures and tests).
//!
//! A text-log path ([`Tracer::enable_log`] / [`parse_text_log`]) mirrors the
//! paper's simulator-log-then-parse pipeline and is checked in tests to
//! produce byte-identical summaries.

use crate::fault::{FaultConfig, FaultPlan};
use crate::pipeline::PipelineStats;
use microsampler_stats::SipHasher;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a tracked microarchitectural unit (paper Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitId {
    /// Store queue destination addresses.
    SqAddr,
    /// Store queue program counters.
    SqPc,
    /// Load queue addresses.
    LqAddr,
    /// Load queue program counters.
    LqPc,
    /// ROB occupancy (single column).
    RobOccupancy,
    /// ROB program counters (includes wrong-path entries until squash).
    RobPc,
    /// Line-fill buffer content digests.
    LfbData,
    /// Line-fill buffer addresses.
    LfbAddr,
    /// ALU busy-with-PC.
    EuuAlu,
    /// Address-generation unit busy-with-PC.
    EuuAddrGen,
    /// Divider busy-with-PC.
    EuuDiv,
    /// Multiplier busy-with-PC.
    EuuMul,
    /// Next-line prefetcher addresses issued.
    NlpAddr,
    /// D-cache request addresses issued.
    CacheAddr,
    /// TLB resident entries.
    TlbAddr,
    /// MSHR outstanding miss addresses.
    MshrAddr,
}

impl UnitId {
    /// All sixteen units, in canonical order.
    pub const ALL: [UnitId; 16] = [
        UnitId::SqAddr,
        UnitId::SqPc,
        UnitId::LqAddr,
        UnitId::LqPc,
        UnitId::RobOccupancy,
        UnitId::RobPc,
        UnitId::LfbData,
        UnitId::LfbAddr,
        UnitId::EuuAlu,
        UnitId::EuuAddrGen,
        UnitId::EuuDiv,
        UnitId::EuuMul,
        UnitId::NlpAddr,
        UnitId::CacheAddr,
        UnitId::TlbAddr,
        UnitId::MshrAddr,
    ];

    /// Number of tracked units.
    pub const COUNT: usize = 16;

    /// Canonical index, `0..16`.
    pub fn index(self) -> usize {
        UnitId::ALL.iter().position(|&u| u == self).expect("unit in ALL")
    }

    /// Paper feature ID, e.g. `"SQ-ADDR"`.
    pub fn name(self) -> &'static str {
        match self {
            UnitId::SqAddr => "SQ-ADDR",
            UnitId::SqPc => "SQ-PC",
            UnitId::LqAddr => "LQ-ADDR",
            UnitId::LqPc => "LQ-PC",
            UnitId::RobOccupancy => "ROB-OCPNCY",
            UnitId::RobPc => "ROB-PC",
            UnitId::LfbData => "LFB-Data",
            UnitId::LfbAddr => "LFB-ADDR",
            UnitId::EuuAlu => "EUU-ALU",
            UnitId::EuuAddrGen => "EUU-ADDRGEN",
            UnitId::EuuDiv => "EUU-DIV",
            UnitId::EuuMul => "EUU-MUL",
            UnitId::NlpAddr => "NLP-ADDR",
            UnitId::CacheAddr => "Cache-ADDR",
            UnitId::TlbAddr => "TLB-ADDR",
            UnitId::MshrAddr => "MSHR-ADDR",
        }
    }

    /// Parses a paper feature ID.
    pub fn from_name(name: &str) -> Option<UnitId> {
        UnitId::ALL.iter().copied().find(|u| u.name() == name)
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tracer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Retain raw per-cycle matrices in each [`UnitTrace`] (memory-hungry;
    /// intended for small runs, figures and tests).
    pub keep_matrices: bool,
    /// SipHash key for snapshot hashing.
    pub hash_key: (u64, u64),
    /// Use SipHash-1-3 (CPython's default) when true, SipHash-2-4 otherwise.
    pub sip13: bool,
    /// Snapshot-hash sharding: `1` (default) folds rows into the per-unit
    /// hashers as they arrive; `0` shards the folding across
    /// [`microsampler_par::threads`] workers; `N > 1` uses exactly `N`.
    /// Sharding buffers rows and folds per unit at `SCR_END` (or
    /// [`Tracer::finalize`]), so every hash, feature set and matrix is
    /// **bit-identical** to the serial fold — only the wall-clock changes.
    pub threads: usize,
    /// Measurement-fault injection: when set, the tracer drops whole
    /// snapshot cycles ([`FaultConfig::drop_row_per_64k`]) and flips
    /// snapshot bits ([`FaultConfig::bitflip_per_64k`]) on a
    /// seed-deterministic schedule. Parse a faulted log back with
    /// `faults: None` — drops are replayed from `D` records and flips
    /// are already baked into the logged values.
    pub faults: Option<FaultConfig>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            keep_matrices: false,
            hash_key: (0x4d53_4d50, 0x4c52_5f31),
            sip13: true,
            threads: 1,
            faults: None,
        }
    }
}

impl TraceConfig {
    fn hasher(&self) -> SipHasher {
        if self.sip13 {
            SipHasher::new_1_3(self.hash_key.0, self.hash_key.1)
        } else {
            SipHasher::new_2_4(self.hash_key.0, self.hash_key.1)
        }
    }
}

/// Per-iteration summary of one unit's snapshot (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitTrace {
    /// Snapshot hash over the full matrix.
    pub hash: u64,
    /// Snapshot hash with consecutive duplicate rows consolidated.
    pub hash_timeless: u64,
    /// Distinct non-zero values observed.
    pub features: BTreeSet<u64>,
    /// Values in first-occurrence order.
    pub order: Vec<u64>,
    /// Raw matrix (`rows[cycle][entry]`), kept only when
    /// [`TraceConfig::keep_matrices`] is set.
    pub rows: Option<Vec<Vec<u64>>>,
    /// Number of sampled cycles.
    pub cycle_rows: u64,
}

/// Everything sampled for one algorithmic iteration, labeled with its
/// secret class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterationTrace {
    /// Secret-class label written by the `ITER_START` marker.
    pub label: u64,
    /// First sampled cycle.
    pub start_cycle: u64,
    /// Last sampled cycle.
    pub end_cycle: u64,
    /// Snapshot cycles lost to injected capture faults (0 in clean runs).
    pub dropped_cycles: u64,
    /// Pipeline profiling deltas over this iteration (set by the core via
    /// [`Tracer::set_pipeline`]; all-zero for hand-driven tracers and logs
    /// without `P` records).
    pub pipeline: PipelineStats,
    /// Per-unit summaries, indexed by [`UnitId::index`].
    pub units: Vec<UnitTrace>,
}

impl IterationTrace {
    /// Iteration length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle) + 1
    }

    /// Snapshot cycles actually captured (every unit samples once per
    /// captured cycle, so the first unit's row count is the figure).
    pub fn sampled_cycles(&self) -> u64 {
        self.units.first().map_or(0, |u| u.cycle_rows)
    }

    /// The summary for one unit.
    pub fn unit(&self, unit: UnitId) -> &UnitTrace {
        &self.units[unit.index()]
    }
}

struct UnitBuilder {
    hasher: SipHasher,
    timeless_hasher: SipHasher,
    last_row: Option<Vec<u64>>,
    features: BTreeSet<u64>,
    order: Vec<u64>,
    rows: Option<Vec<Vec<u64>>>,
    cycle_rows: u64,
    /// Length-prefixed rows awaiting [`UnitBuilder::drain_pending`]
    /// (sharded-hashing mode only; `None` folds eagerly).
    pending: Option<Vec<u64>>,
}

impl UnitBuilder {
    fn new(cfg: &TraceConfig, deferred: bool) -> UnitBuilder {
        UnitBuilder {
            hasher: cfg.hasher(),
            timeless_hasher: cfg.hasher(),
            last_row: None,
            features: BTreeSet::new(),
            order: Vec::new(),
            rows: cfg.keep_matrices.then(Vec::new),
            cycle_rows: 0,
            pending: deferred.then(Vec::new),
        }
    }

    /// Accepts one row: buffers it in sharded mode, folds it immediately
    /// otherwise. Returns the number of bytes fed to the hashers (0 while
    /// buffering; the fold reports them from the worker instead).
    fn push_row(&mut self, row: &[u64]) -> u64 {
        if let Some(pending) = &mut self.pending {
            pending.push(row.len() as u64);
            pending.extend_from_slice(row);
            return 0;
        }
        self.fold_row(row)
    }

    /// Folds one row into the hash/feature accumulators; returns the
    /// number of bytes fed to the hashers.
    fn fold_row(&mut self, row: &[u64]) -> u64 {
        self.cycle_rows += 1;
        let row_bytes = 8 * (row.len() as u64 + 1);
        let mut hashed = row_bytes;
        self.hasher.write_u64(row.len() as u64);
        if self.last_row.as_deref() == Some(row) {
            // Unchanged row: the timeless hasher consolidates it away, and
            // its values are already in the feature set (they were inserted
            // when this row content first appeared), so one traversal
            // feeding the full hasher suffices.
            for &v in row {
                self.hasher.write_u64(v);
            }
        } else {
            self.timeless_hasher.write_u64(row.len() as u64);
            for &v in row {
                self.hasher.write_u64(v);
                self.timeless_hasher.write_u64(v);
                if v != 0 && self.features.insert(v) {
                    self.order.push(v);
                }
            }
            match &mut self.last_row {
                Some(last) if last.len() == row.len() => last.copy_from_slice(row),
                last => *last = Some(row.to_vec()),
            }
            hashed += row_bytes;
        }
        if let Some(rows) = &mut self.rows {
            rows.push(row.to_vec());
        }
        hashed
    }

    /// Folds every buffered row (sharded mode); returns the bytes hashed.
    /// Runs on a pool worker — touches only this builder's state.
    fn drain_pending(&mut self) -> u64 {
        let Some(pending) = self.pending.take() else { return 0 };
        let mut hashed = 0;
        let mut i = 0;
        while i < pending.len() {
            let len = pending[i] as usize;
            i += 1;
            hashed += self.fold_row(&pending[i..i + len]);
            i += len;
        }
        hashed
    }

    fn finish(self) -> UnitTrace {
        UnitTrace {
            hash: self.hasher.finish(),
            hash_timeless: self.timeless_hasher.finish(),
            features: self.features,
            order: self.order,
            rows: self.rows,
            cycle_rows: self.cycle_rows,
        }
    }
}

struct InProgress {
    label: u64,
    start_cycle: u64,
    last_cycle: u64,
    dropped: u64,
    units: Vec<UnitBuilder>,
}

/// A completed iteration whose unit builders still hold buffered rows
/// (sharded-hashing mode); folded in bulk by [`Tracer::finalize`].
struct PendingIteration {
    label: u64,
    start_cycle: u64,
    end_cycle: u64,
    dropped: u64,
    pipeline: PipelineStats,
    units: Vec<UnitBuilder>,
}

/// Collects per-cycle unit rows into labeled [`IterationTrace`]s,
/// optionally also emitting the text log format.
///
/// With [`TraceConfig::threads`] ≠ 1 the per-unit snapshot folding is
/// **sharded**: rows are buffered per unit and folded across a worker pool
/// when the security-critical region closes (`SCR_END` commit or
/// [`Tracer::finalize`]), producing bit-identical summaries. Until then,
/// [`Tracer::iterations`] only holds already-folded iterations.
pub struct Tracer {
    cfg: TraceConfig,
    in_scr: bool,
    current: Option<InProgress>,
    /// Completed-but-unfolded iterations in commit order (sharded mode).
    deferred: Vec<PendingIteration>,
    /// `cfg.threads != 1`: buffer rows and fold on the pool.
    sharded: bool,
    /// Completed iterations in commit order.
    pub iterations: Vec<IterationTrace>,
    /// Unit rows sampled so far (telemetry volume counter).
    pub rows_sampled: u64,
    /// Bytes fed to the snapshot hashers so far (full + timeless).
    pub hash_bytes: u64,
    /// Matrix cells retained so far (nonzero only with
    /// [`TraceConfig::keep_matrices`]).
    pub matrix_cells: u64,
    /// Snapshot cycles dropped by injected capture faults so far.
    pub dropped_cycles: u64,
    /// Snapshot bits flipped by injected capture faults so far.
    pub bit_flips: u64,
    /// Derived from [`TraceConfig::faults`]; `None` means no injection.
    fault_plan: Option<FaultPlan>,
    /// The cycle begun by [`Tracer::begin_cycle`] is a dropped capture:
    /// its `record_row` calls are suppressed.
    drop_this_cycle: bool,
    /// Guards double-counting a drop when the same cycle is begun twice
    /// (the parser replays one `D` record per lost cycle).
    counted_drop_for: Option<u64>,
    /// Pipeline deltas for the open iteration, staged by
    /// [`Tracer::set_pipeline`] and consumed when the iteration closes.
    current_pipeline: PipelineStats,
    log: Option<String>,
}

impl Tracer {
    /// Creates a tracer.
    pub fn new(cfg: TraceConfig) -> Tracer {
        let sharded = cfg.threads != 1 && microsampler_par::resolve(cfg.threads) > 1;
        Tracer {
            cfg,
            in_scr: false,
            current: None,
            deferred: Vec::new(),
            sharded,
            iterations: Vec::new(),
            rows_sampled: 0,
            hash_bytes: 0,
            matrix_cells: 0,
            dropped_cycles: 0,
            bit_flips: 0,
            fault_plan: cfg.faults.map(FaultPlan::new),
            drop_this_cycle: false,
            counted_drop_for: None,
            current_pipeline: PipelineStats::default(),
            log: None,
        }
    }

    /// Starts accumulating the text log (paper's simulator-log pipeline).
    pub fn enable_log(&mut self) {
        self.log = Some(String::from("# MicroSampler trace log v1\n"));
    }

    /// The accumulated text log, if enabled.
    pub fn log_text(&self) -> Option<&str> {
        self.log.as_deref()
    }

    /// Whether sampling should run this cycle.
    pub fn active(&self) -> bool {
        self.in_scr && self.current.is_some()
    }

    /// Handles an `SCR_START` marker commit.
    pub fn scr_start(&mut self, cycle: u64) {
        self.in_scr = true;
        if let Some(log) = &mut self.log {
            log.push_str(&format!("M SCR_START {cycle}\n"));
        }
    }

    /// Handles an `SCR_END` marker commit. In sharded mode this is where
    /// the buffered rows of the region's iterations are folded.
    pub fn scr_end(&mut self, cycle: u64) {
        self.in_scr = false;
        if let Some(log) = &mut self.log {
            log.push_str(&format!("M SCR_END {cycle}\n"));
        }
        self.finalize();
    }

    /// Handles an `ITER_START` marker commit. An unterminated previous
    /// iteration is finalized first.
    pub fn iter_start(&mut self, cycle: u64, label: u64) {
        self.iter_end(cycle);
        self.current_pipeline = PipelineStats::default();
        let sharded = self.sharded;
        self.current = Some(InProgress {
            label,
            start_cycle: cycle,
            last_cycle: cycle,
            dropped: 0,
            units: (0..UnitId::COUNT).map(|_| UnitBuilder::new(&self.cfg, sharded)).collect(),
        });
        if let Some(log) = &mut self.log {
            log.push_str(&format!("M ITER_START {cycle} {label}\n"));
        }
    }

    /// Stages the pipeline profiling deltas for the open iteration (the
    /// core calls this right before the closing marker commit). No-op when
    /// no iteration is open, so stray marker sequences leave no residue.
    pub fn set_pipeline(&mut self, pipeline: PipelineStats) {
        if self.current.is_none() {
            return;
        }
        self.current_pipeline = pipeline;
        if let Some(log) = &mut self.log {
            log.push('P');
            for v in pipeline.to_array() {
                log.push_str(&format!(" {v}"));
            }
            log.push('\n');
        }
    }

    /// Handles an `ITER_END` marker commit.
    pub fn iter_end(&mut self, cycle: u64) {
        if let Some(cur) = self.current.take() {
            let pipeline = std::mem::take(&mut self.current_pipeline);
            if self.sharded {
                self.deferred.push(PendingIteration {
                    label: cur.label,
                    start_cycle: cur.start_cycle,
                    end_cycle: cur.last_cycle,
                    dropped: cur.dropped,
                    pipeline,
                    units: cur.units,
                });
            } else {
                self.iterations.push(IterationTrace {
                    label: cur.label,
                    start_cycle: cur.start_cycle,
                    end_cycle: cur.last_cycle,
                    dropped_cycles: cur.dropped,
                    pipeline,
                    units: cur.units.into_iter().map(UnitBuilder::finish).collect(),
                });
            }
            if let Some(log) = &mut self.log {
                log.push_str(&format!("M ITER_END {cycle}\n"));
            }
        }
    }

    /// Folds every deferred iteration's buffered rows across the worker
    /// pool and appends the results to [`Tracer::iterations`] in commit
    /// order. No-op in serial mode or when nothing is pending; idempotent.
    /// Called automatically at `SCR_END`, by `Machine::run` teardown and by
    /// [`parse_text_log`]; only needed directly when driving a [`Tracer`]
    /// by hand in sharded mode without `SCR_END`.
    pub fn finalize(&mut self) {
        if self.deferred.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.deferred);
        // One fold task per (iteration, unit): wide units from different
        // iterations balance across workers via chunked stealing. Each
        // task touches one builder, so hashes cannot depend on schedule.
        let mut builders: Vec<&mut UnitBuilder> =
            pending.iter_mut().flat_map(|p| p.units.iter_mut()).collect();
        let hashed = microsampler_par::map_mut_with(self.cfg.threads, &mut builders, |_, b| {
            b.drain_pending()
        });
        self.hash_bytes += hashed.iter().sum::<u64>();
        for p in pending {
            self.iterations.push(IterationTrace {
                label: p.label,
                start_cycle: p.start_cycle,
                end_cycle: p.end_cycle,
                dropped_cycles: p.dropped,
                pipeline: p.pipeline,
                units: p.units.into_iter().map(UnitBuilder::finish).collect(),
            });
        }
    }

    /// Records one unit's row for the current cycle. Call exactly once per
    /// unit per active cycle, after [`Tracer::begin_cycle`]. With fault
    /// injection configured, the row may be bit-flipped before folding
    /// (post-flip values are also what the text log records), and rows of
    /// a dropped cycle are discarded wholesale.
    pub fn record_row(&mut self, unit: UnitId, row: &[u64]) {
        if self.current.is_none() || self.drop_this_cycle {
            return;
        }
        let flipped = self.flip_row(unit, row);
        let row: &[u64] = flipped.as_deref().unwrap_or(row);
        let cur = self.current.as_mut().expect("checked above");
        self.rows_sampled += 1;
        self.hash_bytes += cur.units[unit.index()].push_row(row);
        if self.cfg.keep_matrices {
            self.matrix_cells += row.len() as u64;
        }
        if let Some(log) = &mut self.log {
            log.push_str(&format!("C {} {}", cur.last_cycle, unit.name()));
            for v in row {
                log.push_str(&format!(" {v:x}"));
            }
            log.push('\n');
        }
    }

    /// Applies the fault plan's bit-flip for `(current cycle, unit)`, if
    /// one fires: returns the perturbed copy of `row`.
    fn flip_row(&mut self, unit: UnitId, row: &[u64]) -> Option<Vec<u64>> {
        let plan = self.fault_plan.as_ref()?;
        let cycle = self.current.as_ref()?.last_cycle;
        let salt = plan.bitflip_at(cycle, unit.index())?;
        if row.is_empty() {
            return None;
        }
        let mut out = row.to_vec();
        let bit = salt % (out.len() as u64 * 64);
        out[(bit / 64) as usize] ^= 1 << (bit % 64);
        self.bit_flips += 1;
        Some(out)
    }

    /// Marks the cycle being sampled (call before the `record_row` batch).
    /// With fault injection configured this is also where the plan decides
    /// whether the cycle's capture is dropped.
    pub fn begin_cycle(&mut self, cycle: u64) {
        self.drop_this_cycle = false;
        if let Some(cur) = &mut self.current {
            cur.last_cycle = cycle;
        }
        if self.current.is_some()
            && self.fault_plan.as_ref().is_some_and(|p| p.drop_cycle_at(cycle))
        {
            self.drop_cycle(cycle);
        }
    }

    /// Records a lost snapshot capture for `cycle`: the cycle cursor still
    /// advances, but the cycle's `record_row` calls are suppressed and the
    /// loss is counted (and logged as a `D` record, so faulted text logs
    /// round-trip). Invoked by the fault plan on the live path and by
    /// [`parse_text_log`] when replaying `D` records.
    pub fn drop_cycle(&mut self, cycle: u64) {
        if self.current.is_none() {
            return;
        }
        self.drop_this_cycle = true;
        let first = self.counted_drop_for != Some(cycle);
        if let Some(cur) = &mut self.current {
            cur.last_cycle = cycle;
            if first {
                cur.dropped += 1;
            }
        }
        if first {
            self.counted_drop_for = Some(cycle);
            self.dropped_cycles += 1;
            if let Some(log) = &mut self.log {
                log.push_str(&format!("D {cycle}\n"));
            }
        }
    }
}

/// Errors from [`parse_text_log`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLogError {
    /// 1-based line number.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace log line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLogError {}

/// Parses a text trace log back into [`IterationTrace`]s (the MicroSampler
/// Parser of paper step ②). Produces summaries identical to the ones the
/// live [`Tracer`] builds.
///
/// # Errors
///
/// Returns [`ParseLogError`] on malformed lines.
pub fn parse_text_log(text: &str, cfg: TraceConfig) -> Result<Vec<IterationTrace>, ParseLogError> {
    let _span = microsampler_obs::span::span("parse");
    let mut tracer = Tracer::new(cfg);
    for (idx, line) in text.lines().enumerate() {
        let lno = idx as u32 + 1;
        let err = |m: String| ParseLogError { line: lno, message: m };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("M") => {
                let kind = parts.next().ok_or_else(|| err("missing marker kind".into()))?;
                let cycle: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("missing marker cycle".into()))?;
                match kind {
                    "SCR_START" => tracer.scr_start(cycle),
                    "SCR_END" => tracer.scr_end(cycle),
                    "ITER_START" => {
                        let label: u64 = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err("missing iteration label".into()))?;
                        tracer.iter_start(cycle, label);
                    }
                    "ITER_END" => tracer.iter_end(cycle),
                    other => return Err(err(format!("unknown marker `{other}`"))),
                }
            }
            Some("C") => {
                let cycle: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("missing cycle".into()))?;
                let unit_name = parts.next().ok_or_else(|| err("missing unit".into()))?;
                let unit = UnitId::from_name(unit_name)
                    .ok_or_else(|| err(format!("unknown unit `{unit_name}`")))?;
                let mut row = Vec::new();
                for tok in parts {
                    row.push(
                        u64::from_str_radix(tok, 16)
                            .map_err(|_| err(format!("bad value `{tok}`")))?,
                    );
                }
                tracer.begin_cycle(cycle);
                tracer.record_row(unit, &row);
            }
            Some("D") => {
                let cycle: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("missing dropped cycle".into()))?;
                tracer.drop_cycle(cycle);
            }
            Some("P") => {
                let mut vals = [0u64; PipelineStats::FIELDS];
                for slot in vals.iter_mut() {
                    *slot = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("bad pipeline record".into()))?;
                }
                if parts.next().is_some() {
                    return Err(err("trailing pipeline values".into()));
                }
                tracer.set_pipeline(PipelineStats::from_array(vals));
            }
            Some(other) => return Err(err(format!("unknown record `{other}`"))),
            None => {}
        }
    }
    // An unterminated trailing iteration (truncated log) is dropped, like
    // the live tracer drops an iteration whose ITER_END never commits.
    // A truncated log can also miss SCR_END; fold any deferred work.
    tracer.finalize();
    Ok(tracer.iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer(keep: bool) -> Tracer {
        let mut t = Tracer::new(TraceConfig { keep_matrices: keep, ..TraceConfig::default() });
        t.enable_log();
        t.scr_start(10);
        t.iter_start(10, 1);
        t.begin_cycle(11);
        t.record_row(UnitId::SqAddr, &[0x100, 0, 0]);
        t.record_row(UnitId::RobOccupancy, &[3]);
        t.begin_cycle(12);
        t.record_row(UnitId::SqAddr, &[0x100, 0, 0]);
        t.record_row(UnitId::RobOccupancy, &[4]);
        t.begin_cycle(13);
        t.record_row(UnitId::SqAddr, &[0x100, 0x200, 0]);
        t.record_row(UnitId::RobOccupancy, &[4]);
        t.set_pipeline(PipelineStats { cycles: 4, committed: 6, ..PipelineStats::default() });
        t.iter_end(14);
        t.scr_end(14);
        t
    }

    #[test]
    fn unit_names_roundtrip() {
        for u in UnitId::ALL {
            assert_eq!(UnitId::from_name(u.name()), Some(u));
        }
        assert_eq!(UnitId::from_name("BOGUS"), None);
        assert_eq!(UnitId::ALL.len(), UnitId::COUNT);
    }

    #[test]
    fn features_and_order_collected() {
        let t = sample_tracer(false);
        let iter = &t.iterations[0];
        let sq = iter.unit(UnitId::SqAddr);
        assert_eq!(sq.features.iter().copied().collect::<Vec<_>>(), vec![0x100, 0x200]);
        assert_eq!(sq.order, vec![0x100, 0x200]);
        assert_eq!(sq.cycle_rows, 3);
        assert_eq!(iter.cycles(), 13 - 10 + 1);
        assert_eq!(iter.label, 1);
    }

    #[test]
    fn timeless_hash_collapses_duplicates() {
        let t = sample_tracer(false);
        let sq = t.iterations[0].unit(UnitId::SqAddr);
        // Rows: A A B → timeless = A B; full = A A B. Hashes differ.
        assert_ne!(sq.hash, sq.hash_timeless);
        // ROB occupancy rows 3 4 4 → timeless 3 4.
        let rob = t.iterations[0].unit(UnitId::RobOccupancy);
        assert_ne!(rob.hash, rob.hash_timeless);
    }

    #[test]
    fn identical_matrices_hash_equal() {
        let t1 = sample_tracer(false);
        let t2 = sample_tracer(false);
        assert_eq!(
            t1.iterations[0].unit(UnitId::SqAddr).hash,
            t2.iterations[0].unit(UnitId::SqAddr).hash
        );
    }

    #[test]
    fn matrices_kept_when_requested() {
        let t = sample_tracer(true);
        let rows = t.iterations[0].unit(UnitId::SqAddr).rows.as_ref().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![0x100, 0x200, 0]);
        let t2 = sample_tracer(false);
        assert!(t2.iterations[0].unit(UnitId::SqAddr).rows.is_none());
    }

    #[test]
    fn log_parses_back_to_identical_summaries() {
        let t = sample_tracer(false);
        let parsed = parse_text_log(t.log_text().unwrap(), TraceConfig::default()).unwrap();
        assert_eq!(parsed, t.iterations);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_text_log("X what\n", TraceConfig::default()).is_err());
        assert!(parse_text_log("C 5 NOT-A-UNIT 1 2\n", TraceConfig::default()).is_err());
        assert!(parse_text_log("M WHAT 5\n", TraceConfig::default()).is_err());
        let e = parse_text_log("# ok\nM ITER_START nope\n", TraceConfig::default()).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unterminated_iteration_flushed_by_next_start() {
        let mut t = Tracer::new(TraceConfig::default());
        t.scr_start(0);
        t.iter_start(1, 7);
        t.begin_cycle(2);
        t.record_row(UnitId::SqAddr, &[1]);
        t.iter_start(3, 8); // implicitly ends iteration 7
        t.iter_end(4);
        assert_eq!(t.iterations.len(), 2);
        assert_eq!(t.iterations[0].label, 7);
        assert_eq!(t.iterations[1].label, 8);
    }

    #[test]
    fn rows_of_different_widths_hash_differently() {
        let cfg = TraceConfig::default();
        let mut a = UnitBuilder::new(&cfg, false);
        a.push_row(&[1, 0]);
        a.push_row(&[2, 0]);
        let mut b = UnitBuilder::new(&cfg, false);
        b.push_row(&[1, 0, 2, 0]);
        assert_ne!(a.finish().hash, b.finish().hash);
    }

    #[test]
    fn hash13_vs_24_differ() {
        let mut cfg = TraceConfig::default();
        let mut a = UnitBuilder::new(&cfg, false);
        a.push_row(&[5]);
        cfg.sip13 = false;
        let mut b = UnitBuilder::new(&cfg, false);
        b.push_row(&[5]);
        assert_ne!(a.finish().hash, b.finish().hash);
    }

    #[test]
    fn deferred_builder_folds_identically() {
        let cfg = TraceConfig::default();
        let rows: [&[u64]; 4] = [&[1, 2, 0], &[1, 2, 0], &[3], &[0, 0, 7]];
        let mut eager = UnitBuilder::new(&cfg, false);
        let eager_bytes: u64 = rows.iter().map(|r| eager.push_row(r)).sum();
        let mut deferred = UnitBuilder::new(&cfg, true);
        for r in rows {
            assert_eq!(deferred.push_row(r), 0, "buffering must not report hashed bytes");
        }
        assert_eq!(deferred.drain_pending(), eager_bytes);
        assert_eq!(deferred.finish(), eager.finish());
    }

    /// Sharded hashing is an execution strategy, not a semantic: every
    /// hash, feature set, ordering and counter must be bit-identical to
    /// the serial fold at any worker count.
    #[test]
    fn sharded_tracer_matches_serial_exactly() {
        let drive = |threads: usize| {
            let mut t = Tracer::new(TraceConfig { threads, ..TraceConfig::default() });
            t.scr_start(0);
            for i in 0..6u64 {
                t.iter_start(i * 10, i % 2);
                for c in 0..5u64 {
                    t.begin_cycle(i * 10 + c);
                    for (u, unit) in UnitId::ALL.into_iter().enumerate() {
                        t.record_row(unit, &[i * 100 + c, u as u64, c % 2]);
                    }
                }
                t.iter_end(i * 10 + 6);
            }
            t.scr_end(100);
            t
        };
        let serial = drive(1);
        for threads in [2, 7, 64] {
            let sharded = drive(threads);
            assert_eq!(sharded.iterations, serial.iterations, "threads={threads}");
            assert_eq!(sharded.hash_bytes, serial.hash_bytes, "threads={threads}");
            assert_eq!(sharded.rows_sampled, serial.rows_sampled);
        }
    }

    #[test]
    fn sharded_finalize_is_idempotent_and_flushes_without_scr_end() {
        let mut t = Tracer::new(TraceConfig { threads: 4, ..TraceConfig::default() });
        t.scr_start(0);
        t.iter_start(1, 3);
        t.begin_cycle(2);
        t.record_row(UnitId::SqAddr, &[0xabc]);
        t.iter_end(3);
        assert!(t.iterations.is_empty(), "fold deferred until finalize");
        t.finalize();
        assert_eq!(t.iterations.len(), 1);
        assert_eq!(t.iterations[0].label, 3);
        assert!(t.iterations[0].unit(UnitId::SqAddr).features.contains(&0xabc));
        t.finalize();
        assert_eq!(t.iterations.len(), 1, "second finalize must be a no-op");
    }

    fn drive_faulted(faults: Option<FaultConfig>) -> Tracer {
        let mut t = Tracer::new(TraceConfig { faults, ..TraceConfig::default() });
        t.enable_log();
        t.scr_start(0);
        for i in 0..2u64 {
            t.iter_start(i * 100, i);
            for c in 0..24u64 {
                t.begin_cycle(i * 100 + 1 + c);
                t.record_row(UnitId::SqAddr, &[0x100 + c, 0x200]);
                t.record_row(UnitId::RobOccupancy, &[c % 4]);
            }
            t.iter_end(i * 100 + 30);
        }
        t.scr_end(250);
        t
    }

    fn heavy_faults() -> FaultConfig {
        FaultConfig {
            seed: 9,
            drop_row_per_64k: 20_000,
            bitflip_per_64k: 20_000,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn injected_drops_and_flips_fire_and_perturb_hashes() {
        let clean = drive_faulted(None);
        let faulted = drive_faulted(Some(heavy_faults()));
        assert!(faulted.dropped_cycles > 0, "drop rate of ~30% over 48 cycles must fire");
        assert!(faulted.bit_flips > 0, "flip rate of ~30% over 96 rows must fire");
        assert_eq!(clean.dropped_cycles, 0);
        assert_eq!(clean.bit_flips, 0);
        assert_eq!(clean.iterations[0].dropped_cycles, 0);
        assert_ne!(
            clean.iterations[0].unit(UnitId::SqAddr).hash,
            faulted.iterations[0].unit(UnitId::SqAddr).hash
        );
        let it = &faulted.iterations[0];
        assert_eq!(it.sampled_cycles() + it.dropped_cycles, 24, "every cycle sampled or dropped");
        // Same plan, same schedule: re-driving reproduces everything.
        assert_eq!(drive_faulted(Some(heavy_faults())).iterations, faulted.iterations);
    }

    #[test]
    fn faulted_log_round_trips_with_plain_parse() {
        let faulted = drive_faulted(Some(heavy_faults()));
        let log = faulted.log_text().unwrap();
        assert!(log.contains("\nD "), "dropped cycles must be logged as D records");
        // Parse with faults off: flips are baked into logged values and
        // drops replay from D records.
        let parsed = parse_text_log(log, TraceConfig::default()).unwrap();
        assert_eq!(parsed, faulted.iterations);
        let parsed_dropped: u64 = parsed.iter().map(|i| i.dropped_cycles).sum();
        assert_eq!(parsed_dropped, faulted.dropped_cycles);
    }

    #[test]
    fn parse_rejects_bad_drop_record() {
        assert!(parse_text_log("D nope\n", TraceConfig::default()).is_err());
    }

    #[test]
    fn pipeline_deltas_attach_to_iterations_and_round_trip() {
        let t = sample_tracer(false);
        let expect = PipelineStats { cycles: 4, committed: 6, ..PipelineStats::default() };
        assert_eq!(t.iterations[0].pipeline, expect);
        let log = t.log_text().unwrap();
        assert!(log.contains("\nP 4 6 "), "pipeline record must be logged");
        let parsed = parse_text_log(log, TraceConfig::default()).unwrap();
        assert_eq!(parsed[0].pipeline, expect);
    }

    #[test]
    fn set_pipeline_without_open_iteration_leaves_no_residue() {
        let mut t = Tracer::new(TraceConfig::default());
        t.enable_log();
        t.scr_start(0);
        t.set_pipeline(PipelineStats { cycles: 99, ..PipelineStats::default() });
        t.iter_start(1, 0);
        t.begin_cycle(2);
        t.record_row(UnitId::SqAddr, &[1]);
        t.iter_end(3);
        t.scr_end(4);
        assert_eq!(t.iterations[0].pipeline, PipelineStats::default());
        assert!(!t.log_text().unwrap().contains("\nP "), "stray set must not be logged");
    }

    #[test]
    fn parse_rejects_bad_pipeline_record() {
        assert!(parse_text_log("P 1 2\n", TraceConfig::default()).is_err());
        let too_many = format!("P{}\n", " 1".repeat(PipelineStats::FIELDS + 1));
        assert!(parse_text_log(&too_many, TraceConfig::default()).is_err());
    }

    #[test]
    fn sharded_log_round_trip_matches_serial() {
        let mut serial = sample_tracer(false);
        serial.finalize();
        let parsed = parse_text_log(
            serial.log_text().unwrap(),
            TraceConfig { threads: 5, ..TraceConfig::default() },
        )
        .unwrap();
        assert_eq!(parsed, serial.iterations);
    }
}
