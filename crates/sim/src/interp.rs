//! Golden-model functional interpreter.
//!
//! Executes RV64IM semantics one instruction at a time with no
//! microarchitecture. Used as the reference for differential testing of the
//! out-of-order core (committed architectural state must match) and as the
//! functional-semantics library the core itself calls at execute time.

use crate::memory::Memory;
use microsampler_isa::{
    AluOp, BranchOp, CsrOp, Inst, LoadOp, MulDivOp, Program, Reg, CSR_CYCLE, CSR_EXIT, CSR_INPUT,
    CSR_ITER_END, CSR_ITER_START, CSR_OUTPUT, CSR_SCR_END, CSR_SCR_START, STACK_TOP,
};
use std::collections::VecDeque;
use std::fmt;

/// Evaluates an ALU operation on 64-bit operands.
pub fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << (b & 63),
        AluOp::Slt => ((a as i64) < (b as i64)) as u64,
        AluOp::Sltu => (a < b) as u64,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> (b & 63),
        AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::AddW => (a.wrapping_add(b) as i32) as u64,
        AluOp::SubW => (a.wrapping_sub(b) as i32) as u64,
        AluOp::SllW => (((a as u32) << (b & 31)) as i32) as u64,
        AluOp::SrlW => (((a as u32) >> (b & 31)) as i32) as u64,
        AluOp::SraW => ((a as i32) >> (b & 31)) as u64,
    }
}

/// Evaluates an `M` extension operation, with RISC-V division-by-zero and
/// overflow semantics.
pub fn muldiv(op: MulDivOp, a: u64, b: u64) -> u64 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        MulDivOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        MulDivOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        MulDivOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        MulDivOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        MulDivOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        MulDivOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        MulDivOp::MulW => ((a as i32).wrapping_mul(b as i32)) as u64,
        MulDivOp::DivW => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                u64::MAX
            } else if a == i32::MIN && b == -1 {
                a as i64 as u64
            } else {
                (a / b) as i64 as u64
            }
        }
        MulDivOp::DivuW => {
            let (a, b) = (a as u32, b as u32);
            match a.checked_div(b) {
                Some(q) => q as i32 as i64 as u64,
                None => u64::MAX,
            }
        }
        MulDivOp::RemW => {
            let (a, b) = (a as i32, b as i32);
            if b == 0 {
                a as i64 as u64
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                (a % b) as i64 as u64
            }
        }
        MulDivOp::RemuW => {
            let (a, b) = (a as u32, b as u32);
            if b == 0 {
                a as i32 as i64 as u64
            } else {
                (a % b) as i32 as i64 as u64
            }
        }
    }
}

/// Evaluates a branch condition.
pub fn branch_taken(op: BranchOp, a: u64, b: u64) -> bool {
    match op {
        BranchOp::Beq => a == b,
        BranchOp::Bne => a != b,
        BranchOp::Blt => (a as i64) < (b as i64),
        BranchOp::Bge => (a as i64) >= (b as i64),
        BranchOp::Bltu => a < b,
        BranchOp::Bgeu => a >= b,
    }
}

/// Sign- or zero-extends a loaded value per the load op.
pub fn extend_load(op: LoadOp, raw: u64) -> u64 {
    match op {
        LoadOp::Lb => raw as u8 as i8 as i64 as u64,
        LoadOp::Lbu => raw as u8 as u64,
        LoadOp::Lh => raw as u16 as i16 as i64 as u64,
        LoadOp::Lhu => raw as u16 as u64,
        LoadOp::Lw => raw as u32 as i32 as i64 as u64,
        LoadOp::Lwu => raw as u32 as u64,
        LoadOp::Ld => raw,
    }
}

/// A marker event observed while interpreting (CSR writes to the
/// MicroSampler marker range).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerEvent {
    /// Security-critical region opened.
    ScrStart,
    /// Security-critical region closed.
    ScrEnd,
    /// Iteration started with this class label.
    IterStart(u64),
    /// Iteration ended.
    IterEnd,
}

/// Why the interpreter stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// `ecall` executed (exit code in `a0`).
    Ecall,
    /// Exit-marker CSR written (code is the written value).
    ExitCsr(u64),
    /// The step budget ran out.
    OutOfFuel,
}

/// Error from interpretation: the PC left the text section or decoding
/// failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterpError {
    /// PC at which the fault occurred.
    pub pc: u64,
    /// Description of the fault.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter fault at pc {:#x}: {}", self.pc, self.message)
    }
}

impl std::error::Error for InterpError {}

/// The functional golden model.
///
/// # Example
///
/// ```
/// use microsampler_isa::asm::assemble;
/// use microsampler_sim::interp::Interp;
///
/// let p = assemble("li a0, 2\nli a1, 3\nadd a0, a0, a1\necall\n")?;
/// let mut i = Interp::new(&p);
/// i.run(1000)?;
/// assert_eq!(i.reg(microsampler_isa::Reg::new(10)), 5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Interp {
    regs: [u64; 32],
    pc: u64,
    /// Memory state (text and data already loaded).
    pub mem: Memory,
    /// Instructions retired so far.
    pub retired: u64,
    /// Marker events in program order.
    pub markers: Vec<MarkerEvent>,
    /// Words served to `csrr` reads of [`CSR_INPUT`] (0 when empty).
    pub input_queue: VecDeque<u64>,
    /// Words written via [`CSR_OUTPUT`].
    pub outputs: Vec<u64>,
    text_base: u64,
    text_len: u64,
}

impl Interp {
    /// Creates an interpreter with the program loaded and `sp` initialized.
    pub fn new(program: &Program) -> Interp {
        let mut mem = Memory::new();
        mem.write_bytes(program.text_base, &program.text);
        mem.write_bytes(program.data_base, &program.data);
        let mut regs = [0u64; 32];
        regs[Reg::SP.index()] = STACK_TOP;
        Interp {
            regs,
            pc: program.entry,
            mem,
            retired: 0,
            markers: Vec::new(),
            input_queue: VecDeque::new(),
            outputs: Vec::new(),
            text_base: program.text_base,
            text_len: program.text.len() as u64,
        }
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an architectural register (`x0` writes are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] when the PC leaves the text section or the
    /// word does not decode. Returns `Ok(Some(reason))` when execution
    /// stops, `Ok(None)` to continue.
    pub fn step(&mut self) -> Result<Option<StopReason>, InterpError> {
        if self.pc < self.text_base || self.pc >= self.text_base + self.text_len {
            return Err(InterpError { pc: self.pc, message: "pc outside text section".into() });
        }
        let word = self.mem.read_u32(self.pc);
        let inst = microsampler_isa::decode(word)
            .map_err(|e| InterpError { pc: self.pc, message: e.to_string() })?;
        let mut next_pc = self.pc.wrapping_add(4);
        match inst {
            Inst::Lui { rd, imm } => self.set_reg(rd, imm as u64),
            Inst::Auipc { rd, imm } => self.set_reg(rd, self.pc.wrapping_add(imm as u64)),
            Inst::Jal { rd, offset } => {
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = self.pc.wrapping_add(offset as u64);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                self.set_reg(rd, self.pc.wrapping_add(4));
                next_pc = target;
            }
            Inst::Branch { op, rs1, rs2, offset } => {
                if branch_taken(op, self.reg(rs1), self.reg(rs2)) {
                    next_pc = self.pc.wrapping_add(offset as u64);
                }
            }
            Inst::Load { op, rd, .. } => {
                let (base, disp) = inst.mem_base().expect("load shape");
                let addr = self.reg(base).wrapping_add(disp as u64);
                let raw = self.mem.read_le(addr, op.size());
                self.set_reg(rd, extend_load(op, raw));
            }
            Inst::Store { op, rs2, .. } => {
                let (base, disp) = inst.mem_base().expect("store shape");
                let addr = self.reg(base).wrapping_add(disp as u64);
                self.mem.write_le(addr, op.size(), self.reg(rs2));
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                self.set_reg(rd, alu(op, self.reg(rs1), imm as u64));
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                self.set_reg(rd, alu(op, self.reg(rs1), self.reg(rs2)));
            }
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                self.set_reg(rd, muldiv(op, self.reg(rs1), self.reg(rs2)));
            }
            Inst::Csr { op, rd, rs1, csr } => {
                let written = match op {
                    CsrOp::Rw => self.reg(rs1),
                    CsrOp::Rs | CsrOp::Rc => self.reg(rs1), // value unused for markers
                };
                let read_value = match csr {
                    CSR_INPUT => self.input_queue.pop_front().unwrap_or(0),
                    CSR_CYCLE => self.retired,
                    _ => 0,
                };
                self.set_reg(rd, read_value);
                self.retired += 1;
                self.pc = next_pc;
                match csr {
                    CSR_SCR_START => self.markers.push(MarkerEvent::ScrStart),
                    CSR_SCR_END => self.markers.push(MarkerEvent::ScrEnd),
                    CSR_ITER_START => self.markers.push(MarkerEvent::IterStart(written)),
                    CSR_ITER_END => self.markers.push(MarkerEvent::IterEnd),
                    CSR_OUTPUT if op == CsrOp::Rw => self.outputs.push(written),
                    CSR_EXIT => return Ok(Some(StopReason::ExitCsr(written))),
                    _ => {}
                }
                return Ok(None);
            }
            Inst::Ecall => {
                self.retired += 1;
                return Ok(Some(StopReason::Ecall));
            }
            Inst::Ebreak | Inst::Fence => {}
        }
        self.retired += 1;
        self.pc = next_pc;
        Ok(None)
    }

    /// Runs until a stop condition or `fuel` instructions.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpError`] from [`Interp::step`].
    pub fn run(&mut self, fuel: u64) -> Result<StopReason, InterpError> {
        for _ in 0..fuel {
            if let Some(reason) = self.step()? {
                return Ok(reason);
            }
        }
        Ok(StopReason::OutOfFuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_isa::asm::assemble;

    fn run_prog(src: &str) -> Interp {
        let p = assemble(src).unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(1_000_000).unwrap(), StopReason::Ecall);
        i
    }

    #[test]
    fn arithmetic_basics() {
        let i = run_prog("li a0, 10\nli a1, 3\nsub a2, a0, a1\nmul a3, a0, a1\ndivu a4, a0, a1\nremu a5, a0, a1\necall\n");
        assert_eq!(i.reg(Reg::new(12)), 7);
        assert_eq!(i.reg(Reg::new(13)), 30);
        assert_eq!(i.reg(Reg::new(14)), 3);
        assert_eq!(i.reg(Reg::new(15)), 1);
    }

    #[test]
    fn division_corner_cases() {
        assert_eq!(muldiv(MulDivOp::Div, 5, 0), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Rem, 5, 0), 5);
        assert_eq!(muldiv(MulDivOp::Div, i64::MIN as u64, -1i64 as u64), i64::MIN as u64);
        assert_eq!(muldiv(MulDivOp::Rem, i64::MIN as u64, -1i64 as u64), 0);
        assert_eq!(
            muldiv(MulDivOp::DivW, i32::MIN as i64 as u64, -1i64 as u64),
            i32::MIN as i64 as u64
        );
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(alu(AluOp::AddW, 0x7FFF_FFFF, 1), 0xFFFF_FFFF_8000_0000);
        assert_eq!(alu(AluOp::SllW, 1, 31), 0xFFFF_FFFF_8000_0000);
        assert_eq!(alu(AluOp::SrlW, 0xFFFF_FFFF, 1), 0x7FFF_FFFF);
        assert_eq!(alu(AluOp::SraW, 0x8000_0000, 1), 0xFFFF_FFFF_C000_0000);
    }

    #[test]
    fn loop_and_memory() {
        // Sum 1..=10 into a0 via memory round-trips.
        let i = run_prog(
            r#"
            .data
            acc: .dword 0
            .text
            la t0, acc
            li t1, 10
            loop:
                ld t2, 0(t0)
                add t2, t2, t1
                sd t2, 0(t0)
                addi t1, t1, -1
                bgtz t1, loop
            ld a0, 0(t0)
            ecall
            "#,
        );
        assert_eq!(i.reg(Reg::new(10)), 55);
    }

    #[test]
    fn call_and_return() {
        let i = run_prog(
            r#"
            _start:
                li a0, 5
                call double
                call double
                ecall
            double:
                slli a0, a0, 1
                ret
            "#,
        );
        assert_eq!(i.reg(Reg::new(10)), 20);
    }

    #[test]
    fn markers_recorded() {
        let p = assemble(
            "csrw 0x8c0, zero\nli a0, 1\ncsrw 0x8c2, a0\ncsrw 0x8c3, zero\ncsrw 0x8c1, zero\necall\n",
        )
        .unwrap();
        let mut i = Interp::new(&p);
        i.run(100).unwrap();
        assert_eq!(
            i.markers,
            vec![
                MarkerEvent::ScrStart,
                MarkerEvent::IterStart(1),
                MarkerEvent::IterEnd,
                MarkerEvent::ScrEnd
            ]
        );
    }

    #[test]
    fn exit_csr_stops_with_code() {
        let p = assemble("li a0, 42\ncsrw 0x8c4, a0\nnop\necall\n").unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(100).unwrap(), StopReason::ExitCsr(42));
    }

    #[test]
    fn byte_loads_sign_and_zero_extend() {
        let i =
            run_prog(".data\nv: .byte 0xFF\n.text\nla t0, v\nlb a0, 0(t0)\nlbu a1, 0(t0)\necall\n");
        assert_eq!(i.reg(Reg::new(10)), u64::MAX);
        assert_eq!(i.reg(Reg::new(11)), 0xFF);
    }

    #[test]
    fn pc_escape_is_error() {
        let p = assemble("j out\nout: nop\n").unwrap();
        // `out` is the final instruction; falling past it faults.
        let mut i = Interp::new(&p);
        assert!(i.run(10).is_err());
    }

    #[test]
    fn fuel_exhaustion() {
        let p = assemble("spin: j spin\n").unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(100).unwrap(), StopReason::OutOfFuel);
    }
}
