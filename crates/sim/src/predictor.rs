//! Front-end predictors: gshare direction predictor, branch target buffer,
//! and return-address stack.
//!
//! History is updated speculatively at predict time and checkpointed per
//! branch so the core can repair it on squash; pattern-history-table
//! counters are trained at commit.

/// gshare direction predictor: global history XOR PC indexes a table of
/// 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` counters (power of two),
    /// initialized to weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Gshare {
        assert!(entries.is_power_of_two(), "gshare entries must be a power of two");
        Gshare { table: vec![1; entries], history: 0, mask: entries as u64 - 1 }
    }

    /// Creates a predictor whose counters start in a pseudo-random
    /// weakly-taken/weakly-not-taken mix (models the undefined power-on /
    /// residual state of a real PHT; a deterministic seed keeps runs
    /// reproducible).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new_randomized(entries: usize, seed: u64) -> Gshare {
        assert!(entries.is_power_of_two(), "gshare entries must be a power of two");
        let mut state = seed | 1;
        let table = (0..entries)
            .map(|_| {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                if state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 0 {
                    1
                } else {
                    2
                }
            })
            .collect();
        Gshare { table, history: 0, mask: entries as u64 - 1 }
    }

    /// Creates a predictor whose counters start in a pseudo-random
    /// *strongly* polarized state (0 or 3): every branch begins either
    /// strongly-taken or strongly-not-taken, so roughly half of all
    /// fresh history contexts mispredict twice before their counter
    /// crosses over. This is the adversarial initial state the
    /// speculative cross-validation drives the core with — it maximizes
    /// wrong-path (transient) execution windows while staying
    /// seed-deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new_adversarial(entries: usize, seed: u64) -> Gshare {
        assert!(entries.is_power_of_two(), "gshare entries must be a power of two");
        let mut state = seed | 1;
        let table = (0..entries)
            .map(|_| {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                if state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 0 {
                    0
                } else {
                    3
                }
            })
            .collect();
        Gshare { table, history: 0, mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }

    /// Predicts the direction for a branch at `pc` and speculatively shifts
    /// the predicted outcome into the history register.
    pub fn predict_and_update_history(&mut self, pc: u64) -> bool {
        let taken = self.table[self.index(pc)] >= 2;
        self.history = (self.history << 1) | taken as u64;
        taken
    }

    /// Predicts without touching history (for inspection/tests).
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Current speculative global history (checkpoint this per branch).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restores history after a squash: `checkpoint` is the history *before*
    /// the mispredicted branch shifted its prediction in; the actual outcome
    /// is then shifted in.
    pub fn repair(&mut self, checkpoint: u64, actual_taken: bool) {
        self.history = (checkpoint << 1) | actual_taken as u64;
    }

    /// Trains the counter for the branch at `pc` under history `hist`
    /// (the history active when the branch predicted).
    pub fn train(&mut self, pc: u64, hist: u64, taken: bool) {
        let idx = (((pc >> 2) ^ hist) & self.mask) as usize;
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Direct-mapped branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    tags: Vec<u64>,
    targets: Vec<u64>,
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        Btb { tags: vec![u64::MAX; entries], targets: vec![0; entries], mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Looks up the predicted target for `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let i = self.index(pc);
        (self.tags[i] == pc).then_some(self.targets[i])
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.tags[i] = pc;
        self.targets[i] = target;
    }
}

/// Circular return-address stack with speculative push/pop and
/// checkpoint/restore of the top-of-stack pointer.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> ReturnAddressStack {
        assert!(entries > 0, "RAS must have at least one entry");
        ReturnAddressStack { stack: vec![0; entries], top: 0, depth: 0 }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.stack.len();
        self.stack[self.top] = addr;
        self.depth = (self.depth + 1).min(self.stack.len());
    }

    /// Pops the predicted return address (on a return). Returns `None` when
    /// empty (prediction falls back to the BTB).
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.stack[self.top];
        self.top = (self.top + self.stack.len() - 1) % self.stack.len();
        self.depth -= 1;
        Some(addr)
    }

    /// Snapshot of `(top, depth)` for checkpointing.
    pub fn checkpoint(&self) -> (usize, usize) {
        (self.top, self.depth)
    }

    /// Restores a snapshot taken by [`ReturnAddressStack::checkpoint`].
    ///
    /// Entries overwritten by wrong-path pushes stay corrupted, exactly as
    /// in a real circular RAS.
    pub fn restore(&mut self, snapshot: (usize, usize)) {
        self.top = snapshot.0;
        self.depth = snapshot.1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_bias() {
        let mut g = Gshare::new(64);
        let pc = 0x8000_0040;
        for _ in 0..10 {
            let h = g.history();
            g.predict_and_update_history(pc);
            g.train(pc, h, true);
            g.repair(h, true); // keep history consistent with actual
        }
        assert!(g.predict(pc));
        for _ in 0..10 {
            let h = g.history();
            g.predict_and_update_history(pc);
            g.train(pc, h, false);
            g.repair(h, false);
        }
        assert!(!g.predict(pc));
    }

    #[test]
    fn gshare_learns_alternation_with_history() {
        // A strictly alternating branch is predictable once history
        // distinguishes the two contexts.
        let mut g = Gshare::new(1024);
        let pc = 0x8000_0000;
        let mut correct = 0;
        let mut total = 0;
        let mut outcome = false;
        for i in 0..200 {
            outcome = !outcome;
            let h = g.history();
            let pred = g.predict_and_update_history(pc);
            if i >= 100 {
                total += 1;
                if pred == outcome {
                    correct += 1;
                }
            }
            g.train(pc, h, outcome);
            g.repair(h, outcome);
        }
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn adversarial_init_is_polarized_and_deterministic() {
        let g = Gshare::new_adversarial(256, 42);
        let h = Gshare::new_adversarial(256, 42);
        let strong: Vec<bool> = (0..256).map(|i| g.table[i] == 0 || g.table[i] == 3).collect();
        assert!(strong.iter().all(|&s| s), "every counter starts saturated");
        assert_eq!(g.table, h.table, "same seed, same state");
        let taken = g.table.iter().filter(|&&c| c == 3).count();
        assert!((64..192).contains(&taken), "roughly half polarized each way, got {taken}");
        assert_ne!(g.table, Gshare::new_adversarial(256, 44).table, "seed matters");
    }

    #[test]
    fn history_repair() {
        let mut g = Gshare::new(64);
        let h0 = g.history();
        g.predict_and_update_history(0x8000_0000);
        g.predict_and_update_history(0x8000_0010); // wrong path
        g.repair(h0, true);
        assert_eq!(g.history(), (h0 << 1) | 1);
    }

    #[test]
    fn btb_lookup_and_update() {
        let mut b = Btb::new(16);
        assert_eq!(b.lookup(0x8000_0000), None);
        b.update(0x8000_0000, 0x8000_0100);
        assert_eq!(b.lookup(0x8000_0000), Some(0x8000_0100));
        // Aliasing entry replaces.
        b.update(0x8000_0000 + 16 * 4, 0x9000_0000);
        assert_eq!(b.lookup(0x8000_0000), None);
    }

    #[test]
    fn ras_basic_call_return() {
        let mut r = ReturnAddressStack::new(4);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_checkpoint_restore() {
        let mut r = ReturnAddressStack::new(4);
        r.push(0x100);
        let cp = r.checkpoint();
        r.push(0x200); // wrong path call
        r.pop();
        r.pop(); // wrong path pops too far
        r.restore(cp);
        assert_eq!(r.pop(), Some(0x100));
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
