//! Set-associative cache with MSHRs and line-fill buffers.
//!
//! Timing protocol: the core calls [`Cache::access`] with the current cycle
//! and receives either a hit completion cycle, a pending fill completion
//! cycle, or a structural-hazard signal (retry later). [`Cache::tick`]
//! advances fills and installs completed lines.

use crate::memory::Memory;

/// Geometry and latency parameters of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Miss-status holding registers (outstanding demand misses).
    pub mshrs: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Fill latency in cycles (miss to data).
    pub miss_latency: u64,
}

/// One outstanding demand miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mshr {
    /// Line-aligned miss address.
    pub line_addr: u64,
    /// Cycle at which the fill completes.
    pub ready_cycle: u64,
}

/// One in-flight line fill (demand or prefetch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineFillBuffer {
    /// Line-aligned address being filled.
    pub line_addr: u64,
    /// Digest of the line content being transferred (the LFB-Data trace
    /// feature).
    pub data_digest: u64,
    /// Cycle at which the fill completes and the LFB frees.
    pub ready_cycle: u64,
    /// True when this fill was initiated by the prefetcher.
    pub prefetch: bool,
}

/// Result of a cache access attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Hit; data available at the contained cycle.
    Hit(u64),
    /// Miss; fill in flight, data available at the contained cycle.
    Miss(u64),
    /// No MSHR/LFB available; retry on a later cycle.
    Retry,
}

/// A set-associative, write-allocate cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set][way]`: line address or `None`.
    tags: Vec<Vec<Option<u64>>>,
    /// LRU timestamps, same shape.
    lru: Vec<Vec<u64>>,
    mshrs: Vec<Mshr>,
    lfbs: Vec<LineFillBuffer>,
    lfb_capacity: usize,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two sets/line size or zero ways.
    pub fn new(cfg: CacheConfig, lfb_capacity: usize) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0, "cache must have at least one way");
        Cache {
            cfg,
            tags: vec![vec![None; cfg.ways]; cfg.sets],
            lru: vec![vec![0; cfg.ways]; cfg.sets],
            mshrs: Vec::with_capacity(cfg.mshrs),
            lfbs: Vec::with_capacity(lfb_capacity),
            lfb_capacity,
            stamp: 0,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Line-aligns an address.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes) as usize) & (self.cfg.sets - 1)
    }

    /// Whether the line containing `addr` is resident (no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        self.tags[self.set_index(line)].contains(&Some(line))
    }

    /// Attempts an access at cycle `now`. On a miss, allocates an MSHR and
    /// LFB and begins the fill; `mem` supplies the content digest for the
    /// LFB-Data trace.
    pub fn access(&mut self, addr: u64, now: u64, mem: &Memory) -> Access {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        self.stamp += 1;
        if let Some(way) = self.tags[set].iter().position(|&t| t == Some(line)) {
            self.lru[set][way] = self.stamp;
            return Access::Hit(now + self.cfg.hit_latency);
        }
        // Already being filled? Data available when the fill lands.
        if let Some(m) = self.mshrs.iter().find(|m| m.line_addr == line) {
            return Access::Miss(m.ready_cycle + self.cfg.hit_latency);
        }
        if let Some(l) = self.lfbs.iter().find(|l| l.line_addr == line) {
            return Access::Miss(l.ready_cycle + self.cfg.hit_latency);
        }
        if self.mshrs.len() >= self.cfg.mshrs || self.lfbs.len() >= self.lfb_capacity {
            return Access::Retry;
        }
        let ready = now + self.cfg.miss_latency;
        self.mshrs.push(Mshr { line_addr: line, ready_cycle: ready });
        self.lfbs.push(LineFillBuffer {
            line_addr: line,
            data_digest: mem.line_digest(line, self.cfg.line_bytes),
            ready_cycle: ready,
            prefetch: false,
        });
        Access::Miss(ready)
    }

    /// Issues a prefetch fill for the line containing `addr`. Returns true
    /// if a fill was started (line not already resident/in flight and an
    /// LFB was free).
    pub fn prefetch(&mut self, addr: u64, now: u64, mem: &Memory) -> bool {
        let line = self.line_addr(addr);
        if self.probe(line)
            || self.mshrs.iter().any(|m| m.line_addr == line)
            || self.lfbs.iter().any(|l| l.line_addr == line)
            || self.lfbs.len() >= self.lfb_capacity
        {
            return false;
        }
        self.lfbs.push(LineFillBuffer {
            line_addr: line,
            data_digest: mem.line_digest(line, self.cfg.line_bytes),
            ready_cycle: now + self.cfg.miss_latency,
            prefetch: true,
        });
        true
    }

    /// Advances fills: installs lines whose fills complete at `now` and
    /// frees their MSHRs/LFBs.
    pub fn tick(&mut self, now: u64) {
        let mut installed = Vec::new();
        self.lfbs.retain(|l| {
            if l.ready_cycle <= now {
                installed.push(l.line_addr);
                false
            } else {
                true
            }
        });
        for line in installed {
            self.install(line);
        }
        self.mshrs.retain(|m| m.ready_cycle > now);
    }

    /// Installs a line immediately (used by fills and by the test harness's
    /// cache warming).
    pub fn install(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        self.stamp += 1;
        if let Some(way) = self.tags[set].iter().position(|&t| t == Some(line)) {
            self.lru[set][way] = self.stamp;
            return;
        }
        let victim = match self.tags[set].iter().position(|t| t.is_none()) {
            Some(w) => w,
            None => {
                // Evict LRU.
                let (w, _) =
                    self.lru[set].iter().enumerate().min_by_key(|&(_, &s)| s).expect("ways > 0");
                w
            }
        };
        self.tags[set][victim] = Some(line);
        self.lru[set][victim] = self.stamp;
    }

    /// Invalidates the line containing `addr` (the attacker-model flush).
    pub fn flush_line(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        for t in &mut self.tags[set] {
            if *t == Some(line) {
                *t = None;
            }
        }
    }

    /// Evicts one valid line chosen deterministically by `salt` (fault
    /// injection's forced-eviction perturbation). Returns the evicted
    /// line address, or `None` when the cache holds no valid line.
    pub fn evict_any(&mut self, salt: u64) -> Option<u64> {
        let valid = self.tags.iter().flatten().filter(|t| t.is_some()).count() as u64;
        if valid == 0 {
            return None;
        }
        let mut target = salt % valid;
        for set in &mut self.tags {
            for t in set {
                if t.is_some() {
                    if target == 0 {
                        return t.take();
                    }
                    target -= 1;
                }
            }
        }
        unreachable!("target < valid line count")
    }

    /// Invalidates every line (MSHRs/LFBs in flight are unaffected).
    pub fn flush_all(&mut self) {
        for set in &mut self.tags {
            for t in set {
                *t = None;
            }
        }
    }

    /// Outstanding demand-miss addresses (the MSHR-ADDR trace feature).
    pub fn mshr_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.mshrs.iter().map(|m| m.line_addr)
    }

    /// In-flight line fills (the LFB-ADDR / LFB-Data trace features).
    pub fn lfb_entries(&self) -> impl Iterator<Item = &LineFillBuffer> {
        self.lfbs.iter()
    }

    /// True when no MSHR is free.
    pub fn mshrs_full(&self) -> bool {
        self.mshrs.len() >= self.cfg.mshrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 4, ways: 2, line_bytes: 64, mshrs: 2, hit_latency: 3, miss_latency: 20 }
    }

    #[test]
    fn miss_then_hit() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 4);
        match c.access(0x1000, 10, &mem) {
            Access::Miss(ready) => assert_eq!(ready, 30),
            other => panic!("expected miss, got {other:?}"),
        }
        c.tick(30);
        match c.access(0x1008, 31, &mem) {
            Access::Hit(at) => assert_eq!(at, 34),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn secondary_miss_merges() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 4);
        c.access(0x1000, 0, &mem);
        // Same line again: no second MSHR; completes with the first fill.
        match c.access(0x1020, 5, &mem) {
            Access::Miss(ready) => assert_eq!(ready, 20 + 3),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.mshr_addrs().count(), 1);
    }

    #[test]
    fn mshr_exhaustion_retries() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 4);
        assert!(matches!(c.access(0x0000, 0, &mem), Access::Miss(_)));
        assert!(matches!(c.access(0x1000, 0, &mem), Access::Miss(_)));
        assert_eq!(c.access(0x2000, 0, &mem), Access::Retry);
        c.tick(20);
        assert!(matches!(c.access(0x2000, 21, &mem), Access::Miss(_)));
    }

    #[test]
    fn lru_eviction() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 8);
        // Three lines mapping to the same set (set stride = sets*line = 256).
        c.install(0x0000);
        c.install(0x0100);
        c.access(0x0000, 0, &mem); // touch line 0 so line 0x100 is LRU
        c.install(0x0200); // evicts 0x100
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
        assert!(c.probe(0x0200));
    }

    #[test]
    fn flush_line_invalidates() {
        let mut c = Cache::new(cfg(), 4);
        c.install(0x1000);
        assert!(c.probe(0x1010));
        c.flush_line(0x1010);
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn prefetch_fills_without_mshr() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 4);
        assert!(c.prefetch(0x4000, 0, &mem));
        assert_eq!(c.mshr_addrs().count(), 0);
        assert_eq!(c.lfb_entries().count(), 1);
        assert!(c.lfb_entries().next().unwrap().prefetch);
        c.tick(20);
        assert!(c.probe(0x4000));
    }

    #[test]
    fn prefetch_skips_resident_and_inflight() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 4);
        c.install(0x4000);
        assert!(!c.prefetch(0x4000, 0, &mem));
        c.access(0x5000, 0, &mem);
        assert!(!c.prefetch(0x5000, 0, &mem));
    }

    #[test]
    fn lfb_capacity_limits_prefetch() {
        let mem = Memory::new();
        let mut c = Cache::new(cfg(), 1);
        assert!(c.prefetch(0x1000, 0, &mem));
        assert!(!c.prefetch(0x2000, 0, &mem));
    }

    #[test]
    fn evict_any_is_deterministic_and_bounded() {
        let mut c = Cache::new(cfg(), 4);
        assert_eq!(c.evict_any(7), None, "empty cache has nothing to evict");
        c.install(0x0000);
        c.install(0x1000);
        c.install(0x2000);
        let mut d = c.clone();
        assert_eq!(c.evict_any(5), d.evict_any(5), "same salt, same victim");
        // Evicting drains the cache one line at a time.
        let mut e = Cache::new(cfg(), 4);
        e.install(0x0000);
        e.install(0x1000);
        assert!(e.evict_any(0).is_some());
        assert!(e.evict_any(1).is_some());
        assert_eq!(e.evict_any(2), None);
    }

    #[test]
    fn flush_all_empties() {
        let mut c = Cache::new(cfg(), 4);
        c.install(0x0000);
        c.install(0x1000);
        c.flush_all();
        assert!(!c.probe(0x0000));
        assert!(!c.probe(0x1000));
    }
}
