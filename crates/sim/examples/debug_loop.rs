//! Scratch debugging harness for the pipeline (not part of the test suite).

use microsampler_isa::asm::assemble;
use microsampler_sim::{CoreConfig, Machine};

fn main() {
    let p = assemble(
        "li a0, 0\nli t0, 3\nloop: add a0, a0, t0\naddi t0, t0, -1\nbgtz t0, loop\necall\n",
    )
    .unwrap();
    let mut m = Machine::new(CoreConfig::small_boom(), &p);
    m.set_debug(true);
    match m.run(200) {
        Ok(r) => println!("ok: cycles={} a0={}", r.cycles, m.reg(microsampler_isa::Reg::new(10))),
        Err(e) => println!("err: {e}"),
    }
}
