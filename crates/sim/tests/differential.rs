//! Differential tests: the out-of-order core's committed architectural
//! state must match the golden-model interpreter exactly, for every
//! configuration — including with speculation, squash and fast bypass.

use microsampler_isa::asm::assemble;
use microsampler_isa::{Program, Reg};
use microsampler_sim::interp::{Interp, StopReason};
use microsampler_sim::{CoreConfig, Machine};
use proptest::prelude::*;

/// Runs a program on the interpreter and on every core config, comparing
/// all 32 architectural registers and a memory window.
fn check(src: &str, mem_window: Option<(u64, usize)>) {
    let p = assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}\n{src}"));
    check_program(&p, mem_window, src);
}

fn check_program(p: &Program, mem_window: Option<(u64, usize)>, context: &str) {
    let mut golden = Interp::new(p);
    let stop = golden.run(10_000_000).expect("golden model runs");
    assert_eq!(stop, StopReason::Ecall, "golden model must reach ecall");
    for cfg in [
        CoreConfig::small_boom(),
        CoreConfig::mega_boom(),
        CoreConfig::small_boom().with_fast_bypass(),
        CoreConfig::mega_boom().with_fast_bypass(),
    ] {
        let name = format!("{}{}", cfg.name, if cfg.fast_bypass { "+FB" } else { "" });
        let mut m = Machine::new(cfg, p);
        m.run(50_000_000).unwrap_or_else(|e| panic!("[{name}] {e}\n{context}"));
        for r in Reg::all() {
            assert_eq!(m.reg(r), golden.reg(r), "[{name}] register {r} mismatch\n{context}");
        }
        if let Some((addr, len)) = mem_window {
            assert_eq!(
                m.read_mem(addr, len),
                golden.mem.read_bytes(addr, len),
                "[{name}] memory mismatch at {addr:#x}"
            );
        }
    }
}

#[test]
fn fibonacci() {
    check(
        r#"
        li a0, 0
        li a1, 1
        li t0, 30
        loop:
            add t1, a0, a1
            mv a0, a1
            mv a1, t1
            addi t0, t0, -1
            bgtz t0, loop
        ecall
        "#,
        None,
    );
}

#[test]
fn nested_calls_and_memory() {
    check(
        r#"
        .data
        table: .zero 256
        .text
        _start:
            la s0, table
            li s1, 16
        fill:
            mul t0, s1, s1
            sub t1, s1, zero
            slli t1, t1, 3
            add t1, t1, s0
            sd t0, -8(t1)
            addi s1, s1, -1
            bgtz s1, fill
            li s1, 16
            li a0, 0
        sum:
            slli t1, s1, 3
            add t1, t1, s0
            ld t0, -8(t1)
            add a0, a0, t0
            addi s1, s1, -1
            bgtz s1, sum
            ecall
        "#,
        None,
    );
}

#[test]
fn data_dependent_branches_lcg() {
    check(
        r#"
        li s0, 0
        li s1, 12345
        li t3, 500
        li t4, 1103515245
        li t5, 12345
        loop:
            mul s1, s1, t4
            add s1, s1, t5
            srli t0, s1, 13
            andi t0, t0, 3
            beqz t0, zero_case
            addi t0, t0, -1
            beqz t0, one_case
            addi s0, s0, 100
            j next
        zero_case:
            addi s0, s0, 1
            j next
        one_case:
            addi s0, s0, 10
        next:
            addi t3, t3, -1
            bgtz t3, loop
        mv a0, s0
        ecall
        "#,
        None,
    );
}

#[test]
fn byte_memory_operations() {
    check(
        r#"
        .data
        src: .byte 1, 2, 3, 4, 5, 6, 7, 8
        dst: .zero 8
        .text
        la t0, src
        la t1, dst
        li t2, 8
        copy:
            lbu t3, 0(t0)
            slli t4, t3, 1
            sb t4, 0(t1)
            addi t0, t0, 1
            addi t1, t1, 1
            addi t2, t2, -1
            bgtz t2, copy
        ecall
        "#,
        Some((microsampler_isa::DATA_BASE, 16)),
    );
}

#[test]
fn function_calls_with_stack() {
    check(
        r#"
        _start:
            li a0, 10
            call fact
            ecall
        fact:
            addi sp, sp, -16
            sd ra, 8(sp)
            sd a0, 0(sp)
            li t0, 1
            ble a0, t0, base
            addi a0, a0, -1
            call fact
            ld t0, 0(sp)
            mul a0, a0, t0
            j done
        base:
            li a0, 1
        done:
            ld ra, 8(sp)
            addi sp, sp, 16
            ret
        "#,
        None,
    );
}

#[test]
fn division_chain() {
    check(
        r#"
        li a0, 1000000007
        li a1, 13
        li t0, 6
        loop:
            divu a2, a0, a1
            remu a3, a0, a1
            mul a0, a2, a1
            add a0, a0, a3
            srli a0, a0, 1
            addi t0, t0, -1
            bgtz t0, loop
        ecall
        "#,
        None,
    );
}

#[test]
fn cmov_constant_time_pattern() {
    // The paper's Listing 2 conditional-copy shape, exercised with both
    // mask values — critical for the fast-bypass configurations.
    check(
        r#"
        li s0, 0xAAAA
        li s1, 0x5555
        li s2, 1          # ctl = 1
        neg t0, s2        # mask = -ctl
        xor t1, s0, s1
        and t1, t1, t0    # fast-bypass candidate when mask == 0
        xor s0, s0, t1    # s0 = ctl ? s1 : s0
        li s2, 0          # ctl = 0
        neg t0, s2
        xor t1, s0, s1
        and t1, t1, t0
        xor s3, s0, t1
        mv a0, s0
        mv a1, s3
        ecall
        "#,
        None,
    );
}

#[test]
fn memcmp_like_loop_with_dependent_branch() {
    check(
        r#"
        .data
        a: .byte 1, 2, 3, 4, 5, 6, 7, 8
        b: .byte 1, 2, 3, 9, 5, 6, 7, 8
        .text
        la t0, a
        la t1, b
        li t2, 8
        li a0, 0
        loop:
            lbu t3, 0(t0)
            lbu t4, 0(t1)
            addi t0, t0, 1
            addi t1, t1, 1
            addi t2, t2, -1
            xor t3, t3, t4
            or a0, a0, t3
            bgtz t2, loop
        beqz a0, equal
        li a1, 111
        j out
        equal:
        li a1, 222
        out:
        ecall
        "#,
        None,
    );
}

#[test]
fn store_load_aliasing() {
    check(
        r#"
        .data
        buf: .zero 64
        .text
        la t0, buf
        li t1, 0x1122334455667788
        sd t1, 0(t0)
        lw t2, 0(t0)       # partial-width reload
        lw t3, 4(t0)
        lbu t4, 7(t0)
        sh t2, 32(t0)
        lhu t5, 32(t0)
        add a0, t2, t3
        add a1, t4, t5
        ecall
        "#,
        Some((microsampler_isa::DATA_BASE, 40)),
    );
}

/// Straight-line random ALU programs (no control flow, so they always
/// terminate) must match the golden model on every configuration.
fn alu_program(ops: &[(u8, u8, u8, u8, i16)]) -> String {
    let mut src = String::new();
    // Seed registers deterministically.
    for i in 5..32 {
        src.push_str(&format!("li x{i}, {}\n", (i as i64).wrapping_mul(0x9E37_79B9)));
    }
    const MNEMONICS: [&str; 18] = [
        "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu", "addw", "subw",
        "mul", "mulh", "divu", "remu", "sllw", "sraw",
    ];
    for &(op, rd, rs1, rs2, _) in ops {
        let m = MNEMONICS[(op as usize) % MNEMONICS.len()];
        // Avoid clobbering x0-x4 (zero/ra/sp/gp/tp).
        let rd = 5 + (rd % 27);
        let rs1 = 5 + (rs1 % 27);
        let rs2 = 5 + (rs2 % 27);
        src.push_str(&format!("{m} x{rd}, x{rs1}, x{rs2}\n"));
    }
    src.push_str("ecall\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_straight_line_alu(ops in proptest::collection::vec(any::<(u8, u8, u8, u8, i16)>(), 1..60)) {
        let src = alu_program(&ops);
        check(&src, None);
    }
}
