//! Speculation-specific behaviors: wrong-path visibility, non-speculative
//! I/O CSRs, fences, and the attacker-model flush CSRs.

use microsampler_isa::asm::assemble;
use microsampler_isa::Reg;
use microsampler_sim::{CoreConfig, Machine, TraceConfig, UnitId};

fn reg(n: u8) -> Reg {
    Reg::new(n)
}

/// Wrong-path instructions must appear in the ROB trace and then vanish
/// without architectural effect.
#[test]
fn wrong_path_instructions_visible_then_squashed() {
    // The branch below alternates and is hard to predict; the wrong path
    // multiplies a poison value, which must never commit.
    let p = assemble(
        r#"
        csrw 0x8c0, zero
        li   s0, 0           # accumulator
        li   s1, 1           # lcg
        li   t3, 40
        li   t4, 1103515245
        csrw 0x8c2, zero     # one big iteration window
        loop:
            mul  s1, s1, t4
            addi s1, s1, 1234
            srli t0, s1, 17
            andi t0, t0, 1
            beqz t0, skip
            addi s0, s0, 1
        wrongish:
            nop
        skip:
            addi t3, t3, -1
            bgtz t3, loop
        csrw 0x8c3, zero
        csrw 0x8c1, zero
        mv   a0, s0
        ecall
        "#,
    )
    .unwrap();
    let mut m = Machine::with_trace_config(CoreConfig::mega_boom(), &p, TraceConfig::default());
    let r = m.run(1_000_000).unwrap();
    assert!(r.stats.branch_mispredicts > 0, "the pattern must mispredict sometimes");
    assert!(r.stats.squashed > 0);
    // Architectural result equals the golden model.
    let mut golden = microsampler_sim::interp::Interp::new(&p);
    golden.run(10_000_000).unwrap();
    assert_eq!(m.reg(reg(10)), golden.reg(reg(10)));
}

/// Input-CSR reads are non-speculative: a wrong-path `csrr` must not
/// consume from the host queue.
#[test]
fn wrong_path_csrr_does_not_pop_input_queue() {
    // beqz on a slow-to-resolve value (load) with a wrong-path csrr behind
    // it. The predictor's cold prediction is not-taken, so the fall-through
    // (csrr) path is fetched speculatively while the branch waits on the
    // load — but the queue must only be popped by the committed reads.
    let p = assemble(
        r#"
        .data
        flag: .dword 1
        .text
        la   t0, flag
        ld   t1, 0(t0)       # slow: resolves after fetch runs ahead
        bnez t1, taken       # actually taken; cold predict = not taken
        csrr a1, 0x8c8       # WRONG PATH csrr
        csrr a2, 0x8c8
        j    out
        taken:
        csrr a0, 0x8c8       # the only committed csrr
        out:
        ecall
        "#,
    )
    .unwrap();
    for cfg in [CoreConfig::mega_boom(), CoreConfig::small_boom()] {
        let mut m = Machine::with_trace_config(cfg, &p, TraceConfig::default());
        m.push_inputs([111, 222, 333]);
        m.run(100_000).unwrap();
        assert_eq!(m.reg(reg(10)), 111, "committed csrr pops the first word");
        // A second run cannot verify queue state directly, but the wrong
        // path not popping means 222 must still be next if we had read
        // again; instead we assert the wrong-path destination regs were
        // never architecturally written.
        assert_eq!(m.reg(reg(11)), 0);
        assert_eq!(m.reg(reg(12)), 0);
    }
}

/// Output CSR publishes at commit only: wrong-path writes never appear.
#[test]
fn wrong_path_csrw_output_never_published() {
    let p = assemble(
        r#"
        .data
        flag: .dword 1
        .text
        la   t0, flag
        ld   t1, 0(t0)
        bnez t1, taken
        li   t2, 666
        csrw 0x8c9, t2       # wrong path output
        j    out
        taken:
        li   t2, 42
        csrw 0x8c9, t2
        out:
        ecall
        "#,
    )
    .unwrap();
    let mut m = Machine::with_trace_config(CoreConfig::mega_boom(), &p, TraceConfig::default());
    m.run(100_000).unwrap();
    assert_eq!(m.take_outputs(), vec![42]);
}

/// `fence` drains the store queue: after it renames, every older store has
/// fully left the STQ (miss latency included in the fence's shadow).
#[test]
fn fence_waits_for_store_drain() {
    let src_with_fence = r#"
        .data
        buf: .zero 64
        .text
        la  t0, buf
        csrw 0x8c5, t0       # flush the line so the store misses
        li  t1, 7
        sd  t1, 0(t0)
        fence
        ecall
    "#;
    let src_without = r#"
        .data
        buf: .zero 64
        .text
        la  t0, buf
        csrw 0x8c5, t0
        li  t1, 7
        sd  t1, 0(t0)
        nop
        ecall
    "#;
    let run = |src: &str| {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(CoreConfig::mega_boom(), &p);
        m.run(100_000).unwrap().cycles
    };
    let fenced = run(src_with_fence);
    let unfenced = run(src_without);
    assert!(
        fenced >= unfenced + 10,
        "fence must absorb the store-miss drain ({fenced} vs {unfenced})"
    );
}

/// The flush CSRs actually evict: a reload after `CSR_FLUSH_LINE` misses.
#[test]
fn flush_line_causes_reload_miss() {
    let p = assemble(
        r#"
        .data
        buf: .zero 64
        .text
        la   t0, buf
        ld   t1, 0(t0)       # miss 1: cold
        add  t5, t0, t1      # t1 is 0: same address, but dependent
        ld   t2, 0(t5)       # hit (serialized after the fill)
        csrw 0x8c5, t0       # flush the line
        and  t6, t2, zero
        add  t6, t6, t0      # dependent address: issues after the flush commits
        ld   t3, 0(t6)       # miss 2
        ecall
        "#,
    )
    .unwrap();
    let mut m = Machine::new(CoreConfig::mega_boom(), &p);
    let r = m.run(100_000).unwrap();
    assert!(r.stats.l1d_misses >= 2, "flush must force a re-miss ({:?})", r.stats);
    assert!(r.stats.l1d_hits >= 1);
}

/// The TLB flush CSR empties the TLB (visible through the TLB-ADDR trace).
#[test]
fn flush_tlb_clears_resident_entries() {
    let p = assemble(
        r#"
        .data
        buf: .zero 64
        .text
        csrw 0x8c0, zero
        la   t0, buf
        csrw 0x8c2, zero
        ld   t1, 0(t0)       # populate the TLB
        csrw 0x8c3, zero
        csrw 0x8c7, zero     # flush TLB
        csrw 0x8c2, zero
        nop
        nop
        csrw 0x8c3, zero
        csrw 0x8c1, zero
        ecall
        "#,
    )
    .unwrap();
    let mut m = Machine::with_trace_config(CoreConfig::mega_boom(), &p, TraceConfig::default());
    let r = m.run(100_000).unwrap();
    assert_eq!(r.iterations.len(), 2);
    let before = &r.iterations[0].unit(UnitId::TlbAddr).features;
    let after = &r.iterations[1].unit(UnitId::TlbAddr).features;
    assert!(!before.is_empty(), "first window should see the data page resident");
    assert!(after.is_empty(), "flushed TLB should be empty in the second window");
}

/// Markers never fire from the wrong path: a wrong-path ITER_START must
/// not open an iteration.
#[test]
fn wrong_path_markers_do_not_fire() {
    let p = assemble(
        r#"
        .data
        flag: .dword 1
        .text
        csrw 0x8c0, zero
        la   t0, flag
        ld   t1, 0(t0)
        bnez t1, taken       # taken; cold-predicted not-taken
        li   t2, 99
        csrw 0x8c2, t2       # WRONG PATH iteration start
        taken:
        csrw 0x8c1, zero
        ecall
        "#,
    )
    .unwrap();
    let mut m = Machine::with_trace_config(CoreConfig::mega_boom(), &p, TraceConfig::default());
    let r = m.run(100_000).unwrap();
    assert!(r.iterations.is_empty(), "wrong-path markers must not create iterations");
}

/// Deep call chains exercise RAS wrap-around without corrupting
/// architectural state.
#[test]
fn deep_recursion_beyond_ras_depth() {
    let p = assemble(
        r#"
        _start:
            li a0, 20        # deeper than any RAS config
            call sum
            ecall
        sum:
            addi sp, sp, -16
            sd   ra, 8(sp)
            sd   a0, 0(sp)
            beqz a0, base
            addi a0, a0, -1
            call sum
            ld   t0, 0(sp)
            add  a0, a0, t0
            j    done
        base:
            li   a0, 0
        done:
            ld   ra, 8(sp)
            addi sp, sp, 16
            ret
        "#,
    )
    .unwrap();
    for cfg in [CoreConfig::small_boom(), CoreConfig::mega_boom()] {
        let mut m = Machine::new(cfg, &p);
        let r = m.run(1_000_000).unwrap();
        assert_eq!(m.reg(reg(10)), (1..=20).sum::<u64>());
        // Overflowing the circular RAS costs mispredicts but not much else.
        assert!(r.stats.jalr_mispredicts > 0, "RAS overflow should mispredict");
    }
}
