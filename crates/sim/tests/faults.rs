//! Fault-injection engine integration tests: determinism of injected
//! schedules across thread counts, architectural purity of the noise
//! faults, and the deliberate-deadlock (wedge) path the crash-resilient
//! sweep harness leans on.

use microsampler_isa::asm::assemble;
use microsampler_isa::Program;
use microsampler_sim::{
    CoreConfig, FaultConfig, FaultPlan, IterationTrace, Machine, SimError, TraceConfig,
};

/// A marker-instrumented kernel: 6 labeled iterations of a store/load
/// loop, exiting with code 7.
fn marked_program() -> Program {
    assemble(
        "
        .data
        buf: .zero 256
        .text
        _start:
            csrw 0x8c0, zero        # SCR start
            la x4, buf
            li x3, 6                # outer iterations
            li x8, 1
        outer:
            and x10, x3, x8
            csrw 0x8c2, x10         # ITER_START, label = parity
            li x5, 16
            li x7, 0
        inner:
            sd x5, 0(x4)
            sd x7, 8(x4)
            ld x6, 0(x4)
            add x7, x7, x6
            addi x5, x5, -1
            bne x5, x0, inner
            csrw 0x8c3, zero        # ITER_END
            addi x3, x3, -1
            bne x3, x0, outer
            csrw 0x8c1, zero        # SCR end
            li a0, 7
            ecall
        ",
    )
    .expect("kernel assembles")
}

/// A kernel that does nothing but stream stores: with the LSU wedged the
/// store queue saturates, dispatch backs up, commits stop, and the
/// watchdog must fire rather than spin forever.
fn store_storm_program() -> Program {
    assemble(
        "
        .data
        buf: .zero 512
        .text
        _start:
            la x4, buf
            li x3, 4096
        storm:
            sd x3, 0(x4)
            sd x3, 8(x4)
            sd x3, 16(x4)
            sd x3, 24(x4)
            sd x3, 32(x4)
            sd x3, 40(x4)
            sd x3, 48(x4)
            sd x3, 56(x4)
            addi x3, x3, -1
            bne x3, x0, storm
            li a0, 1
            ecall
        ",
    )
    .expect("kernel assembles")
}

fn noisy_faults() -> FaultConfig {
    FaultConfig {
        seed: 0xfa17_0001,
        squash_per_64k: 600,
        evict_per_64k: 600,
        mshr_stall_per_64k: 600,
        drop_row_per_64k: 400,
        bitflip_per_64k: 400,
        wedge: false,
    }
}

fn run_faulted(faults: Option<FaultConfig>) -> (u64, Vec<IterationTrace>, u64) {
    let config = match faults {
        Some(f) => CoreConfig::mega_boom().with_faults(f),
        None => CoreConfig::mega_boom(),
    };
    let trace = TraceConfig { faults, ..TraceConfig::default() };
    let mut machine = Machine::with_trace_config(config, &marked_program(), trace);
    let r = machine.run(2_000_000).expect("faulted run still completes");
    (r.exit_code, r.iterations, r.fault_counts.total())
}

#[test]
fn fault_schedule_is_a_pure_function_of_seed_and_cycle() {
    let plan = FaultPlan::new(noisy_faults());
    let a = plan.schedule(0..40_000);
    let b = FaultPlan::new(noisy_faults()).schedule(0..40_000);
    assert!(!a.is_empty(), "rates this high must fire within 40k cycles");
    assert_eq!(a, b, "same seed, same schedule");
    let reseeded = FaultPlan::new(FaultConfig { seed: 0xdead, ..noisy_faults() });
    assert_ne!(a, reseeded.schedule(0..40_000), "different seed, different schedule");
}

/// The tentpole determinism bar: one faulted machine run must be
/// bit-identical whether the tracer's sharded hashing uses 1 worker or 4.
/// Process-global thread override — single test body, nothing races it.
#[test]
fn faulted_run_is_bit_identical_across_thread_counts() {
    microsampler_par::set_threads(Some(1));
    let serial = run_faulted(Some(noisy_faults()));
    microsampler_par::set_threads(Some(4));
    let parallel = run_faulted(Some(noisy_faults()));
    microsampler_par::set_threads(None);
    assert_eq!(serial, parallel);
    assert!(serial.2 > 0, "the noise rates must actually inject faults");
}

#[test]
fn injected_noise_preserves_architectural_results() {
    let (clean_exit, clean_iters, clean_faults) = run_faulted(None);
    assert_eq!(clean_exit, 7);
    assert_eq!(clean_faults, 0, "no faults configured, none injected");
    let (faulted_exit, faulted_iters, faulted_count) = run_faulted(Some(noisy_faults()));
    assert_eq!(faulted_exit, clean_exit, "faults are microarchitectural noise only");
    assert_eq!(faulted_iters.len(), clean_iters.len());
    assert!(faulted_count > 0);
    // The noise must actually perturb the sampled snapshots somewhere —
    // otherwise the degradation experiments measure nothing.
    let differs = clean_iters
        .iter()
        .zip(&faulted_iters)
        .any(|(c, f)| c.units.iter().zip(&f.units).any(|(cu, fu)| cu.hash != fu.hash));
    assert!(differs, "faulted snapshots should diverge from clean ones");
    let dropped: u64 = faulted_iters.iter().map(|i| i.dropped_cycles).sum();
    assert!(dropped > 0, "drop rate 400/64k should lose some cycles here");
}

#[test]
fn wedge_fault_trips_the_deadlock_watchdog() {
    let faults = FaultConfig { wedge: true, ..FaultConfig::default() };
    let config = CoreConfig::mega_boom().with_faults(faults);
    let mut machine = Machine::new(config, &marked_program());
    match machine.run(2_000_000) {
        Err(SimError::Deadlock { cycle }) => {
            assert!(cycle >= microsampler_sim::WEDGE_CYCLE, "wedge precedes the watchdog trip");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn store_queue_saturation_deadlocks_under_wedge() {
    let faults = FaultConfig { wedge: true, ..FaultConfig::default() };
    // Both cores must wedge the same way; the small core's shallower
    // store queue just saturates sooner.
    for config in [CoreConfig::mega_boom(), CoreConfig::small_boom()] {
        let name = config.name;
        let mut machine = Machine::new(config.with_faults(faults), &store_storm_program());
        match machine.run(10_000_000) {
            Err(SimError::Deadlock { .. }) => {}
            other => panic!("{name}: expected Deadlock under a store storm, got {other:?}"),
        }
    }
}

#[test]
fn out_of_cycles_still_reported_under_faults() {
    let config = CoreConfig::mega_boom().with_faults(noisy_faults());
    let mut machine = Machine::new(config, &marked_program());
    match machine.run(300) {
        Err(SimError::OutOfCycles { limit }) => assert_eq!(limit, 300),
        other => panic!("expected OutOfCycles, got {other:?}"),
    }
}

#[test]
fn per_trial_reseeding_is_deterministic_and_distinct() {
    let base = noisy_faults();
    assert_eq!(base.for_trial(3, 0), base.for_trial(3, 0));
    assert_ne!(base.for_trial(3, 0), base.for_trial(4, 0), "trials get distinct schedules");
    assert_ne!(base.for_trial(3, 0), base.for_trial(3, 1), "retries get distinct schedules");
    let wedged = FaultConfig { wedge: true, ..base };
    assert!(wedged.for_trial(9, 2).wedge, "wedge survives re-seeding");
}
