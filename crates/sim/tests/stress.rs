//! Differential stress: randomly generated branchy programs (forward-only
//! random control flow plus bounded counted loops, so termination is
//! guaranteed) must match the golden interpreter on every configuration.

use microsampler_isa::asm::assemble;
use microsampler_isa::Reg;
use microsampler_sim::interp::{Interp, StopReason};
use microsampler_sim::{CoreConfig, Machine};
use proptest::prelude::*;

/// Builds a random program from `spec`:
/// * registers x5..x31 seeded deterministically,
/// * a bounded outer loop (`loop_iters`),
/// * inside, a chain of blocks with random ALU ops, loads/stores into a
///   scratch array, and forward-only conditional branches between blocks.
fn generate(spec: &ProgramSpec) -> String {
    const ALU: [&str; 12] =
        ["add", "sub", "xor", "or", "and", "sll", "srl", "sra", "mul", "addw", "subw", "sltu"];
    const BR: [&str; 6] = ["beq", "bne", "blt", "bge", "bltu", "bgeu"];
    let mut src = String::from(".data\nscratch: .zero 512\n.text\n_start:\n");
    for i in 5..32 {
        src.push_str(&format!("li x{i}, {}\n", (i as i64 * 7919) ^ spec.seed as i64));
    }
    src.push_str("la x4, scratch\n"); // tp as scratch base (not in rand pool)
    src.push_str(&format!("li x3, {}\n", spec.loop_iters)); // gp = loop counter
    src.push_str("outer:\n");
    let mut r = spec.seed;
    let mut rnd = move || {
        r ^= r << 13;
        r ^= r >> 7;
        r ^= r << 17;
        r
    };
    let nblocks = spec.blocks.max(1);
    for b in 0..nblocks {
        src.push_str(&format!("blk{b}:\n"));
        for _ in 0..spec.ops_per_block {
            let rd = 5 + (rnd() % 27) as u8;
            let rs1 = 5 + (rnd() % 27) as u8;
            let rs2 = 5 + (rnd() % 27) as u8;
            match rnd() % 10 {
                0 => {
                    // Store to a safe scratch slot.
                    let off = (rnd() % 64) * 8;
                    src.push_str(&format!("sd x{rs1}, {off}(x4)\n"));
                }
                1 => {
                    let off = (rnd() % 64) * 8;
                    src.push_str(&format!("ld x{rd}, {off}(x4)\n"));
                }
                2 if b + 1 < nblocks => {
                    // Forward-only branch to a later block: no new loops.
                    let target = b + 1 + (rnd() as usize % (nblocks - b - 1).max(1));
                    let op = BR[(rnd() % 6) as usize];
                    src.push_str(&format!("{op} x{rs1}, x{rs2}, blk{target}\n"));
                }
                _ => {
                    let op = ALU[(rnd() % 12) as usize];
                    src.push_str(&format!("{op} x{rd}, x{rs1}, x{rs2}\n"));
                }
            }
        }
    }
    src.push_str("addi x3, x3, -1\nbgtz x3, outer\n");
    // Fold everything into a0 so a single register witnesses the state.
    src.push_str("li x10, 0\n");
    for i in 5..32 {
        if i != 10 {
            src.push_str(&format!("add x10, x10, x{i}\n"));
        }
    }
    src.push_str("ecall\n");
    src
}

#[derive(Clone, Debug)]
struct ProgramSpec {
    seed: u64,
    blocks: usize,
    ops_per_block: usize,
    loop_iters: u32,
}

fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
    (1u64..u64::MAX, 1usize..6, 1usize..10, 1u32..6).prop_map(
        |(seed, blocks, ops_per_block, loop_iters)| ProgramSpec {
            seed,
            blocks,
            ops_per_block,
            loop_iters,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn random_branchy_programs_match_golden_model(spec in spec_strategy()) {
        let src = generate(&spec);
        let program = assemble(&src).expect("generated program assembles");
        let mut golden = Interp::new(&program);
        let stop = golden.run(5_000_000).expect("golden model runs");
        prop_assert_eq!(stop, StopReason::Ecall);
        for cfg in [
            CoreConfig::small_boom(),
            CoreConfig::mega_boom(),
            CoreConfig::mega_boom().with_fast_bypass(),
            CoreConfig::mega_boom().with_random_bpred(spec.seed),
        ] {
            let name = cfg.name;
            let fb = cfg.fast_bypass;
            let mut machine = Machine::new(cfg, &program);
            machine.run(20_000_000).unwrap_or_else(|e| panic!("[{name} fb={fb}] {e}\n{src}"));
            for r in Reg::all() {
                prop_assert_eq!(
                    machine.reg(r),
                    golden.reg(r),
                    "[{} fb={}] register {} mismatch (seed {})",
                    name, fb, r, spec.seed
                );
            }
            prop_assert_eq!(
                machine.read_mem(program.symbol_addr("scratch"), 512),
                golden.mem.read_bytes(program.symbol_addr("scratch"), 512),
                "[{} fb={}] scratch memory mismatch", name, fb
            );
        }
    }
}

/// The fast-bypass optimization must actually *optimize*: a zero-heavy
/// AND workload runs in fewer cycles with it enabled.
#[test]
fn fast_bypass_improves_performance_on_trivial_ands() {
    let src = r#"
        li   t0, 0          # always-zero operand
        li   t1, 0xABCD
        li   t2, 2000
        loop:
            and  t3, t1, t0  # trivial: skipped under fast bypass
            xor  t1, t1, t3  # dependent
            and  t4, t1, t0
            xor  t1, t1, t4
            addi t2, t2, -1
            bgtz t2, loop
        mv a0, t1
        ecall
    "#;
    let p = assemble(src).unwrap();
    let run = |cfg: CoreConfig| {
        let mut m = Machine::new(cfg, &p);
        let r = m.run(10_000_000).unwrap();
        (r.cycles, r.stats.fast_bypasses, m.reg(Reg::new(10)))
    };
    let (base_cycles, base_fb, base_result) = run(CoreConfig::mega_boom());
    let (opt_cycles, opt_fb, opt_result) = run(CoreConfig::mega_boom().with_fast_bypass());
    assert_eq!(base_result, opt_result, "optimization must preserve semantics");
    assert_eq!(base_fb, 0);
    assert!(opt_fb >= 2000, "both ANDs per iteration should bypass ({opt_fb})");
    assert!(
        opt_cycles < base_cycles,
        "fast bypass should save cycles ({opt_cycles} vs {base_cycles})"
    );
}
