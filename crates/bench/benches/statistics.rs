//! Statistical-stage benchmarks: contingency construction, chi-squared,
//! Cramér's V (plain vs bias-corrected ablation) and p-values on tables of
//! growing size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use microsampler_stats::{
    chi_squared, chi_squared_p_value, cramers_v, cramers_v_corrected, ContingencyTable,
};

fn observations(n: usize, categories: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| {
            let class = (i % 2) as u64;
            let hash = (i as u64).wrapping_mul(0x9E37_79B9) % categories + class * 3;
            (class, hash)
        })
        .collect()
}

fn bench_contingency(c: &mut Criterion) {
    let mut group = c.benchmark_group("contingency");
    for &n in &[256usize, 1024, 4096] {
        let obs = observations(n, 64);
        group.bench_with_input(BenchmarkId::new("build", n), &obs, |b, obs| {
            b.iter(|| {
                let t: ContingencyTable<u64, u64> = black_box(obs).iter().copied().collect();
                t
            })
        });
        let table: ContingencyTable<u64, u64> = obs.iter().copied().collect();
        group.bench_with_input(BenchmarkId::new("association", n), &table, |b, t| {
            b.iter(|| black_box(t).association())
        });
    }
    group.finish();
}

fn bench_chi2(c: &mut Criterion) {
    let mut group = c.benchmark_group("chi_squared");
    for &k in &[8usize, 64, 512] {
        let rows: Vec<Vec<u64>> =
            (0..2).map(|r| (0..k).map(|j| ((r * 31 + j * 7) % 40 + 1) as u64).collect()).collect();
        group.bench_with_input(BenchmarkId::new("statistic", k), &rows, |b, rows| {
            b.iter(|| chi_squared(black_box(rows)))
        });
        let (chi2, dof) = chi_squared(&rows);
        let n: u64 = rows.iter().flatten().sum();
        group.bench_function(BenchmarkId::new("p_value", k), |b| {
            b.iter(|| chi_squared_p_value(black_box(chi2), black_box(dof)))
        });
        group.bench_function(BenchmarkId::new("cramers_v", k), |b| {
            b.iter(|| cramers_v(black_box(chi2), n, 2, k as u64))
        });
        group.bench_function(BenchmarkId::new("cramers_v_corrected", k), |b| {
            b.iter(|| cramers_v_corrected(black_box(chi2), n, 2, k as u64))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contingency, bench_chi2);
criterion_main!(benches);
