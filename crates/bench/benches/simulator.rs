//! Simulator throughput: simulated cycles per second across core sizes
//! (the paper's linear-scalability claim) and the cost of tracing and of
//! the fast-bypass option.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use microsampler_isa::asm::assemble;
use microsampler_isa::Program;
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_sim::{CoreConfig, Machine, TraceConfig};

/// A compute+memory loop long enough to amortize startup.
fn workload() -> Program {
    assemble(
        r#"
        .data
        arr: .zero 4096
        .text
        _start:
            la   s0, arr
            li   s1, 200          # outer iterations
        outer:
            li   t0, 0
            li   t1, 64
        inner:
            slli t2, t0, 3
            add  t2, t2, s0
            ld   t3, 0(t2)
            add  t3, t3, t0
            mul  t3, t3, s1
            sd   t3, 0(t2)
            addi t0, t0, 1
            blt  t0, t1, inner
            addi s1, s1, -1
            bgtz s1, outer
            ecall
        "#,
    )
    .expect("workload assembles")
}

fn bench_core_sizes(c: &mut Criterion) {
    let program = workload();
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for config in [CoreConfig::small_boom(), CoreConfig::mega_boom()] {
        // Measure simulated cycles once so throughput is meaningful.
        let mut probe = Machine::new(config.clone(), &program);
        let cycles = probe.run(50_000_000).expect("workload completes").cycles;
        group.throughput(Throughput::Elements(cycles));
        group.bench_with_input(BenchmarkId::new("untraced", config.name), &config, |b, cfg| {
            b.iter(|| {
                let mut m = Machine::new(cfg.clone(), &program);
                m.run(50_000_000).expect("workload completes")
            })
        });
    }
    group.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    // ME-V1-CV with markers: tracing on is the framework's real cost.
    let kernel = ModexpKernel::new(ModexpVariant::V1CompilerVuln, 2);
    let key = &random_keys(1, 2, 9)[0];
    let program = kernel.program().expect("kernel assembles");
    let mut group = c.benchmark_group("tracing");
    group.sample_size(10);
    group.bench_function("traced_structured", |b| {
        b.iter(|| {
            let mut m = Machine::with_trace_config(
                CoreConfig::mega_boom(),
                &program,
                TraceConfig::default(),
            );
            m.write_mem(program.symbol_addr("key"), key);
            m.run(50_000_000).expect("runs")
        })
    });
    group.bench_function("traced_text_log", |b| {
        b.iter(|| {
            let mut m = Machine::with_trace_config(
                CoreConfig::mega_boom(),
                &program,
                TraceConfig::default(),
            );
            m.write_mem(program.symbol_addr("key"), key);
            m.enable_log();
            m.run(50_000_000).expect("runs")
        })
    });
    group.finish();
}

fn bench_fast_bypass(c: &mut Criterion) {
    let kernel = ModexpKernel::new(ModexpVariant::V2Safe, 2);
    let key = &random_keys(1, 2, 11)[0];
    let mut group = c.benchmark_group("fast_bypass");
    group.sample_size(10);
    for (name, cfg) in
        [("off", CoreConfig::mega_boom()), ("on", CoreConfig::mega_boom().with_fast_bypass())]
    {
        group.bench_function(name, |b| {
            b.iter(|| kernel.run(cfg.clone(), key, TraceConfig::default()).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_core_sizes, bench_tracing_overhead, bench_fast_bypass);
criterion_main!(benches);
