//! Ablation: snapshot hash choice (paper §V-B uses Python's default
//! SipHash; we compare SipHash-1-3, SipHash-2-4 and an FNV-1a baseline on
//! realistic iteration snapshots).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use microsampler_stats::SipHasher;

/// A synthetic iteration snapshot: `cycles` rows of `width` u64 features.
fn snapshot(cycles: usize, width: usize) -> Vec<Vec<u64>> {
    (0..cycles)
        .map(|c| (0..width).map(|w| (c as u64).wrapping_mul(0x9E37_79B9) ^ w as u64).collect())
        .collect()
}

fn fnv1a_rows(rows: &[Vec<u64>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for row in rows {
        for &v in row {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    h
}

fn sip_rows(rows: &[Vec<u64>], sip13: bool) -> u64 {
    let mut h = if sip13 { SipHasher::new_1_3(1, 2) } else { SipHasher::new_2_4(1, 2) };
    for row in rows {
        h.write_u64(row.len() as u64);
        for &v in row {
            h.write_u64(v);
        }
    }
    h.finish()
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_hash");
    for &(cycles, width) in &[(100usize, 32usize), (300, 32), (300, 128)] {
        let rows = snapshot(cycles, width);
        let bytes = (cycles * width * 8) as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(
            BenchmarkId::new("siphash13", format!("{cycles}x{width}")),
            &rows,
            |b, rows| b.iter(|| sip_rows(black_box(rows), true)),
        );
        group.bench_with_input(
            BenchmarkId::new("siphash24", format!("{cycles}x{width}")),
            &rows,
            |b, rows| b.iter(|| sip_rows(black_box(rows), false)),
        );
        group.bench_with_input(
            BenchmarkId::new("fnv1a", format!("{cycles}x{width}")),
            &rows,
            |b, rows| b.iter(|| fnv1a_rows(black_box(rows))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
