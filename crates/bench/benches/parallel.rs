//! Thread-scaling benchmark for the parallel execution engine: the full
//! ME-V1-MV pipeline (simulate + snapshot hashing + analysis) at 1, 2, 4,
//! and all available workers.
//!
//! Besides the usual criterion console output, this bench writes a
//! machine-readable `BENCH_parallel.json` baseline at the repository root
//! (override the destination with `MICROSAMPLER_BENCH_OUT`). Every thread
//! count asserts the same rendered analysis report, so a scaling win can
//! never come from computing a different answer.

use criterion::{BenchmarkId, Criterion};
use microsampler_bench::run_modexp_iterations;
use microsampler_core::analyze;
use microsampler_kernels::modexp::ModexpVariant;
use microsampler_obs::Value;
use microsampler_sim::CoreConfig;
use std::time::{Duration, Instant};

const KEYS: usize = 8;
const KEY_BYTES: usize = 1;
const SEED: u64 = 2024;
const SAMPLES: usize = 5;

fn pipeline() -> String {
    let iters = run_modexp_iterations(
        ModexpVariant::V1MicroarchVuln,
        &CoreConfig::mega_boom(),
        KEYS,
        KEY_BYTES,
        SEED,
    );
    analyze(&iters).to_json().render_compact()
}

fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, microsampler_par::available()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn main() {
    let mut c = Criterion::default();
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(SAMPLES);
    let counts = thread_counts();
    let mut stats: Vec<(usize, Duration, Duration)> = Vec::new();
    let mut reference: Option<String> = None;
    for &threads in &counts {
        microsampler_par::set_threads(Some(threads));
        let mut samples: Vec<Duration> = Vec::new();
        group.bench_function(BenchmarkId::new("me_v1_mv_pipeline", threads), |b| {
            b.iter(|| {
                let start = Instant::now();
                let report = pipeline();
                samples.push(start.elapsed());
                match &reference {
                    Some(r) => assert_eq!(&report, r, "report diverged at {threads} threads"),
                    None => reference = Some(report),
                }
            })
        });
        let min = samples.iter().min().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        stats.push((threads, min, mean));
    }
    group.finish();
    microsampler_par::set_threads(None);
    write_baseline(&stats);
}

fn write_baseline(stats: &[(usize, Duration, Duration)]) {
    let base = stats.iter().find(|(t, ..)| *t == 1).map(|&(_, _, mean)| mean);
    let rows: Vec<Value> = stats
        .iter()
        .map(|&(threads, min, mean)| {
            let speedup = match base {
                Some(b) if mean.as_nanos() > 0 => b.as_nanos() as f64 / mean.as_nanos() as f64,
                _ => 1.0,
            };
            Value::object()
                .field("threads", threads)
                .field("min_ns", min.as_nanos() as u64)
                .field("mean_ns", mean.as_nanos() as u64)
                .field("speedup_vs_1", speedup)
                .build()
        })
        .collect();
    let report = Value::object()
        .field("schema", "microsampler-bench-parallel-v1")
        .field("pipeline", "me_v1_mv")
        .field("keys", KEYS)
        .field("key_bytes", KEY_BYTES)
        .field("samples", SAMPLES)
        .field("host_available_parallelism", microsampler_par::available())
        .field("results", Value::Array(rows))
        .build();
    let path: std::path::PathBuf = match std::env::var_os("MICROSAMPLER_BENCH_OUT") {
        Some(p) => p.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel.json"),
    };
    std::fs::write(&path, report.render_pretty()).expect("write BENCH_parallel.json");
    println!("wrote {}", path.display());
}
