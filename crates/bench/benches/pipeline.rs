//! End-to-end pipeline benchmarks: one bench per paper table/figure (at a
//! reduced scale), plus the structured-vs-text-log trace-path ablation and
//! the analysis/feature-extraction stages in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use microsampler_bench::experiments as exp;
use microsampler_bench::{run_modexp_iterations, Scale};
use microsampler_core::{analyze, feature_ordering, feature_uniqueness};
use microsampler_kernels::modexp::ModexpVariant;
use microsampler_sim::{parse_text_log, CoreConfig, TraceConfig, UnitId};

fn bench_scale() -> Scale {
    Scale { keys: 2, key_bytes: 1, memcmp_reps: 2, primitive_trials: 16, seed: 13 }
}

/// One bench per evaluation artifact, so `cargo bench` regenerates the
/// whole evaluation and reports its cost.
fn bench_experiments(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table2_contingency", |b| b.iter(|| exp::table2(black_box(&scale))));
    group.bench_function("table5_primitive_audit", |b| b.iter(|| exp::table5(black_box(&scale))));
    group.bench_function("table6_stage_breakdown", |b| b.iter(|| exp::table6(black_box(&scale))));
    group.bench_function("fig3_me_v1_cv", |b| b.iter(|| exp::fig3(black_box(&scale))));
    group.bench_function("fig4_me_v1_mv", |b| b.iter(|| exp::fig4(black_box(&scale))));
    group.bench_function("fig5_uniqueness", |b| b.iter(|| exp::fig5(black_box(&scale))));
    group.bench_function("fig6_distributions", |b| b.iter(|| exp::fig6(black_box(&scale))));
    group.bench_function("fig7_me_v2_safe", |b| b.iter(|| exp::fig7(black_box(&scale))));
    group.bench_function("fig9_fast_bypass", |b| b.iter(|| exp::fig9(black_box(&scale))));
    group.bench_function("fig10_memcmp", |b| b.iter(|| exp::fig10(black_box(&scale))));
    group.finish();
}

fn bench_analysis_stages(c: &mut Criterion) {
    let iterations =
        run_modexp_iterations(ModexpVariant::V1CompilerVuln, &CoreConfig::mega_boom(), 4, 2, 21);
    let mut group = c.benchmark_group("analysis");
    group.bench_function("correlate_16_units", |b| b.iter(|| analyze(black_box(&iterations))));
    group.bench_function("feature_uniqueness", |b| {
        b.iter(|| feature_uniqueness(black_box(&iterations), UnitId::SqAddr))
    });
    group.bench_function("feature_ordering", |b| {
        b.iter(|| feature_ordering(black_box(&iterations), UnitId::RobPc))
    });
    group.finish();
}

fn bench_log_parse(c: &mut Criterion) {
    // Structured-vs-text ablation: parsing cost of the log path.
    let kernel = microsampler_kernels::modexp::ModexpKernel::new(ModexpVariant::V1CompilerVuln, 1);
    let key = &microsampler_kernels::inputs::random_keys(1, 1, 5)[0];
    let program = kernel.program().expect("assembles");
    let mut machine = microsampler_sim::Machine::with_trace_config(
        CoreConfig::small_boom(),
        &program,
        TraceConfig::default(),
    );
    machine.write_mem(program.symbol_addr("key"), key);
    machine.enable_log();
    machine.run(50_000_000).expect("runs");
    let log = machine.log_text().expect("log enabled").to_owned();
    let mut group = c.benchmark_group("log");
    group.throughput(criterion::Throughput::Bytes(log.len() as u64));
    group.bench_function("parse_text_log", |b| {
        b.iter(|| parse_text_log(black_box(&log), TraceConfig::default()).expect("parses"))
    });
    group.finish();
}

criterion_group!(benches, bench_experiments, bench_analysis_stages, bench_log_parse);
criterion_main!(benches);
