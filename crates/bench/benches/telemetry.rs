//! Telemetry overhead: the ME-V1-MV pipeline (simulate → analyze) with the
//! span layer and metrics registry enabled vs disabled. The disabled cases
//! bound the cost of leaving instrumentation compiled into the hot path
//! (one relaxed atomic load per site); the enabled cases bound the cost of
//! actually collecting a run report.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use microsampler_bench::run_modexp_iterations;
use microsampler_core::analyze;
use microsampler_kernels::modexp::ModexpVariant;
use microsampler_obs::{metrics, span};
use microsampler_sim::CoreConfig;

fn pipeline() -> usize {
    let iterations = run_modexp_iterations(
        ModexpVariant::V1MicroarchVuln,
        &CoreConfig::mega_boom(),
        black_box(2),
        black_box(1),
        17,
    );
    let report = analyze(&iterations);
    black_box(report.units.len())
}

fn bench_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");
    group.sample_size(10);

    group.bench_function("pipeline_disabled", |b| {
        span::set_enabled(false);
        metrics::set_enabled(false);
        b.iter(pipeline);
    });

    group.bench_function("pipeline_spans", |b| {
        span::set_enabled(true);
        metrics::set_enabled(false);
        b.iter(|| {
            let n = pipeline();
            black_box(span::take());
            n
        });
        span::set_enabled(false);
    });

    group.bench_function("pipeline_spans_and_metrics", |b| {
        span::set_enabled(true);
        metrics::set_enabled(true);
        b.iter(|| {
            let n = pipeline();
            black_box(span::take());
            n
        });
        span::set_enabled(false);
        metrics::set_enabled(false);
        metrics::reset();
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
