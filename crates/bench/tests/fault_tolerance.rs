//! Crash-resilient sweep harness integration tests: quarantine of wedged
//! trials, journal/resume, cross-thread-count determinism of injected
//! faults, and retry classification for budget exhaustion.

use microsampler_bench::sweep::{self, SweepOptions, TrialEventKind};
use microsampler_kernels::modexp::ModexpVariant;
use microsampler_obs::{diag, json, Value};
use microsampler_par::FailureClass;
use microsampler_sim::{CoreConfig, FaultConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The thread override and the trial event registry are process-global;
/// serialize every test that touches them.
static LOCK: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("microsampler-ft-{name}-{}.jsonl", std::process::id()))
}

fn sweep_with(opts: &SweepOptions, n_keys: usize, seed: u64) -> sweep::SweepOutcome {
    sweep::run_modexp_sweep(ModexpVariant::V2Safe, &CoreConfig::mega_boom(), n_keys, 1, seed, opts)
}

#[test]
fn wedged_trial_is_quarantined_and_the_sweep_completes() {
    let _l = LOCK.lock().unwrap();
    sweep::reset_events();
    let opts = SweepOptions { wedge_trial: Some(1), isolate: true, ..SweepOptions::default() };
    let out = sweep_with(&opts, 3, 42);
    assert_eq!(out.completed, 2, "the two healthy trials must finish");
    assert_eq!(out.restored, 0);
    assert_eq!(out.quarantined.len(), 1);
    let q = &out.quarantined[0];
    assert!(q.id.ends_with("key0001"), "trial 1 was the wedged one: {}", q.id);
    assert_eq!(q.class, FailureClass::SimError);
    assert_eq!(q.attempts, 2, "the default policy retries a sim error once");
    assert!(q.message.contains("deadlock"), "{}", q.message);
    assert!(!out.iterations.is_empty(), "partial results survive the quarantine");
    // The registry feeds the --json run report.
    let v = sweep::events_to_json();
    assert_eq!(v.get("completed").unwrap().as_u64(), Some(2));
    let listed = v.get("quarantined").unwrap().as_array().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].get("class").unwrap().as_str(), Some("sim-error"));
    sweep::reset_events();
}

#[test]
fn journal_resume_reruns_only_the_missing_trials() {
    let _l = LOCK.lock().unwrap();
    let path = tmp("resume");
    std::fs::write(&path, "").unwrap();

    // Pass 1: trial 1 wedges; three of four trials land in the journal.
    sweep::reset_events();
    let opts = SweepOptions {
        wedge_trial: Some(1),
        journal: Some(path.clone()),
        isolate: true,
        ..SweepOptions::default()
    };
    let first = sweep_with(&opts, 4, 7);
    assert_eq!(first.completed, 3);
    assert_eq!(first.quarantined.len(), 1);

    // Pass 2: resume without the wedge; only trial 1 re-runs.
    sweep::reset_events();
    let opts = SweepOptions {
        journal: Some(path.clone()),
        resume: true,
        isolate: true,
        ..SweepOptions::default()
    };
    let second = sweep_with(&opts, 4, 7);
    assert_eq!(second.restored, 3, "journaled trials are not re-run");
    assert_eq!(second.completed, 1, "only the previously-wedged trial runs");
    assert!(second.quarantined.is_empty());
    let v = sweep::events_to_json();
    assert_eq!(v.get("restored").unwrap().as_u64(), Some(3));
    sweep::reset_events();

    // The journal now covers all four trials; a third resume runs nothing.
    sweep::reset_events();
    let third = sweep_with(&opts, 4, 7);
    assert_eq!((third.restored, third.completed), (4, 0));
    sweep::reset_events();
    std::fs::remove_file(&path).ok();

    // A restored-and-patched sweep is bit-identical to an uninterrupted
    // clean one: same pooled iterations, same hashes, same order.
    let clean = sweep_with(&SweepOptions { isolate: true, ..SweepOptions::default() }, 4, 7);
    assert_eq!(second.iterations, clean.iterations);
    assert_eq!(third.iterations, clean.iterations);
}

#[test]
fn injected_fault_schedules_are_thread_count_invariant() {
    let _l = LOCK.lock().unwrap();
    let faults = FaultConfig {
        seed: 0x0051_ee93,
        squash_per_64k: 500,
        evict_per_64k: 500,
        mshr_stall_per_64k: 400,
        drop_row_per_64k: 250,
        bitflip_per_64k: 250,
        wedge: false,
    };
    let run = |threads: usize, faults: Option<FaultConfig>| {
        microsampler_par::set_threads(Some(threads));
        sweep::reset_events();
        let opts = SweepOptions { faults, isolate: true, ..SweepOptions::default() };
        let out = sweep::run_modexp_sweep(
            ModexpVariant::V1MicroarchVuln,
            &CoreConfig::mega_boom(),
            4,
            1,
            99,
            &opts,
        );
        microsampler_par::set_threads(None);
        sweep::reset_events();
        out
    };
    let serial = run(1, Some(faults));
    assert!(serial.quarantined.is_empty(), "noise rates must not kill trials");
    for threads in [2, 4] {
        let parallel = run(threads, Some(faults));
        assert_eq!(
            serial.iterations, parallel.iterations,
            "faulted sweep must be bit-identical at {threads} threads"
        );
    }
    let clean = run(1, None);
    assert_ne!(serial.iterations, clean.iterations, "the faults must actually perturb traces");
}

#[test]
fn quarantined_trial_still_ticks_progress_and_heartbeat() {
    let _l = LOCK.lock().unwrap();
    sweep::reset_events();
    let journal = tmp("heartbeat");
    std::fs::write(&journal, "").unwrap();
    let capture = Arc::new(Mutex::new(String::new()));
    diag::set_progress(true);
    diag::set_capture(Some(capture.clone()));
    let opts = SweepOptions {
        wedge_trial: Some(1),
        journal: Some(journal.clone()),
        isolate: true,
        ..SweepOptions::default()
    };
    let out = sweep_with(&opts, 3, 42);
    diag::set_capture(None);
    diag::set_progress(false);
    assert_eq!(out.completed, 2);
    assert_eq!(out.quarantined.len(), 1);

    // The wedged trial must still count toward progress: without the
    // final-attempt tick the heartbeat stalls at 2/3 forever.
    let stderr = capture.lock().unwrap().clone();
    assert!(stderr.contains(": 3/3"), "progress must reach 3/3, got:\n{stderr}");

    // Heartbeat JSONL events are interleaved with the trial records, are
    // well-formed, and the final one reports completed == total.
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::remove_file(&journal).ok();
    let heartbeats: Vec<Value> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| json::parse(l).expect("every journal line is valid JSON"))
        .filter(|v| v.get("schema").and_then(Value::as_str) == Some(sweep::HEARTBEAT_SCHEMA))
        .collect();
    assert!(!heartbeats.is_empty(), "the sweep must emit heartbeat events");
    for hb in &heartbeats {
        assert_eq!(hb.get("total").unwrap().as_u64(), Some(3));
        assert!(hb.get("completed").unwrap().as_u64().is_some());
        assert!(hb.get("elapsed_sec").unwrap().as_f64().is_some());
        assert!(hb.get("trials_per_sec").unwrap().as_f64().is_some());
    }
    let last = heartbeats.last().unwrap();
    assert_eq!(last.get("completed").unwrap().as_u64(), Some(3), "final heartbeat covers all");

    // And the quarantined trial's metric merge is not poisoned: the event
    // registry records exactly one quarantine alongside the completions.
    let v = sweep::events_to_json();
    assert_eq!(v.get("completed").unwrap().as_u64(), Some(2));
    assert_eq!(v.get("quarantined").unwrap().as_array().unwrap().len(), 1);
    sweep::reset_events();
}

#[test]
fn exhausted_cycle_budget_is_quarantined_after_retry() {
    let _l = LOCK.lock().unwrap();
    sweep::reset_events();
    let opts = SweepOptions { isolate: true, max_cycles: Some(500), ..SweepOptions::default() };
    let out = sweep_with(&opts, 2, 5);
    assert_eq!(out.completed, 0);
    assert_eq!(out.quarantined.len(), 2, "no trial can finish in 500 cycles");
    for q in &out.quarantined {
        assert_eq!(q.class, FailureClass::SimError);
        assert_eq!(q.attempts, 2, "OutOfCycles is retried once, then quarantined");
        assert!(q.message.contains("cycle budget"), "{}", q.message);
    }
    let events = sweep::events();
    assert!(events.iter().all(|e| e.kind == TrialEventKind::Quarantined));
    sweep::reset_events();
}
