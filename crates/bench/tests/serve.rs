//! End-to-end `repro serve` robustness tests through the real binary:
//! backpressure, SIGTERM drain, and kill-9 crash recovery.

#![cfg(unix)]

use microsampler_obs::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("microsampler-serve-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration, what: &str) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Starts a daemon on `state/serve.sock` and waits until it accepts
/// connections (a stale socket file from a killed predecessor refuses
/// them, so existence alone is not readiness).
fn start_daemon(state: &Path, extra: &[&str]) -> (Child, PathBuf) {
    let socket = state.join("serve.sock");
    let daemon = repro()
        .arg("serve")
        .arg("--state")
        .arg(state)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    wait_for(
        || UnixStream::connect(&socket).is_ok(),
        Duration::from_secs(30),
        "the daemon socket to accept connections",
    );
    (daemon, socket)
}

fn sigterm(daemon: &Child) {
    let ok = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -TERM {}", daemon.id()))
        .status()
        .expect("kill runs")
        .success();
    assert!(ok, "SIGTERM delivered");
}

fn wait_exit(child: &mut Child, timeout: Duration, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            panic!("timed out waiting for {what} to exit");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Opens a connection, sends one request line, and returns the stream
/// (held open — dropping it cancels the job) plus the first response.
fn raw_request(socket: &Path, body: &str) -> (UnixStream, BufReader<UnixStream>, String) {
    let mut stream = UnixStream::connect(socket).expect("connects");
    writeln!(stream, "{body}").expect("request sent");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut first = String::new();
    reader.read_line(&mut first).expect("first response line");
    (stream, reader, first)
}

/// The compact rendering of the `verdict` object from a `repro submit`
/// stdout capture (per-run accounting lives outside this object, so it
/// is comparable across interrupted and uninterrupted runs).
fn extract_verdict(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    for line in text.lines() {
        let Ok(v) = json::parse(line) else { continue };
        if v.get("event").and_then(Value::as_str) == Some("verdict") {
            assert_eq!(v.get("status").and_then(Value::as_str), Some("done"), "{line}");
            return v.get("verdict").expect("verdict body").render_compact();
        }
    }
    panic!("no verdict event in: {text}");
}

#[test]
fn overload_is_rejected_with_structured_busy() {
    let dir = tmp_dir("busy");
    let (mut daemon, socket) = start_daemon(&dir, &["--queue", "2", "--per-client", "1"]);
    // A deliberately chunky job keeps the queue occupied while the
    // follow-up submissions probe the backpressure paths.
    let job = |client: &str| {
        format!(
            "{{\"op\":\"submit\",\"client\":\"{client}\",\"kernel\":\"ME-V2-Safe\",\
             \"keys\":12,\"key_bytes\":2,\"seed\":1}}"
        )
    };
    let (_s1, _r1, first) = raw_request(&socket, &job("a"));
    assert!(first.contains("\"event\":\"accepted\""), "{first}");

    let (_s2, _r2, quota) = raw_request(&socket, &job("a"));
    assert!(
        quota.contains("\"event\":\"busy\"") && quota.contains("\"reason\":\"client-quota\""),
        "a second outstanding job from the same client must hit the quota: {quota}"
    );

    let (_s3, _r3, second) = raw_request(&socket, &job("b"));
    assert!(second.contains("\"event\":\"accepted\""), "{second}");

    let (_s4, _r4, full) = raw_request(&socket, &job("c"));
    assert!(
        full.contains("\"event\":\"busy\"") && full.contains("\"reason\":\"queue-full\""),
        "a third outstanding job must overflow the bounded queue: {full}"
    );

    daemon.kill().ok();
    daemon.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigterm_drains_in_flight_jobs_and_exits_zero() {
    let dir = tmp_dir("drain");
    let (mut daemon, socket) = start_daemon(&dir, &[]);
    let submit = repro()
        .arg("submit")
        .arg("--socket")
        .arg(&socket)
        .args(["--keys", "4", "--key-bytes", "2", "--seed", "5"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("submit spawns");
    // SIGTERM as soon as the job is durably accepted: the drain must
    // still run it to completion and deliver the verdict.
    let wal = dir.join("serve-wal.jsonl");
    wait_for(
        || {
            std::fs::read_to_string(&wal)
                .map(|t| t.contains("\"event\":\"submitted\""))
                .unwrap_or(false)
        },
        Duration::from_secs(30),
        "the job to be WAL-logged",
    );
    sigterm(&daemon);
    let out = submit.wait_with_output().expect("submit finishes");
    assert!(
        out.status.success(),
        "the drained job still delivers its clean verdict; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let verdict = extract_verdict(&out.stdout);
    assert!(verdict.contains("\"leaky\":false"), "{verdict}");
    let status = wait_exit(&mut daemon, Duration::from_secs(60), "the daemon");
    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");
    assert!(!socket.exists(), "the socket is removed on shutdown");
    let wal_text = std::fs::read_to_string(&wal).unwrap();
    assert!(wal_text.is_empty(), "no live jobs remain in the compacted WAL: {wal_text}");
    assert!(dir.join("serve-metrics.json").exists(), "serve.* metrics are flushed");
    std::fs::remove_dir_all(&dir).ok();
}

/// A `--sequential` job completes as soon as its confidence sequence
/// closes: the verdict carries the `microsampler-stop-v1` stopping
/// trace, and a clearly leaky kernel stops before the full key budget.
#[test]
fn sequential_submit_stops_early_and_reports_the_stop_trace() {
    let dir = tmp_dir("sequential");
    let (mut daemon, socket) = start_daemon(&dir, &[]);
    let out = repro()
        .arg("submit")
        .arg("--socket")
        .arg(&socket)
        .args(["--kernel", "SAM-Naive", "--keys", "16", "--key-bytes", "1"])
        .args(["--seed", "42", "--sequential"])
        .output()
        .expect("submit runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "naive SAM is leaky; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let verdict = json::parse(&extract_verdict(&out.stdout)).expect("verdict parses");
    assert_eq!(verdict.get("leaky").and_then(Value::as_bool), Some(true));
    let stop = verdict.get("stop").expect("sequential verdicts carry the stop trace");
    assert_eq!(stop.get("schema").and_then(Value::as_str), Some("microsampler-stop-v1"));
    assert_eq!(stop.get("verdict").and_then(Value::as_str), Some("leaky"));
    let spent = stop.get("trials_spent").and_then(Value::as_u64).expect("trials_spent");
    assert!(spent < 16, "the sequence must close before the full 16-key budget (spent {spent})");
    assert!(
        !stop.get("looks").unwrap().as_array().unwrap().is_empty(),
        "the trace records its looks"
    );
    sigterm(&daemon);
    wait_exit(&mut daemon, Duration::from_secs(60), "the daemon");
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance scenario: `kill -9` mid-job, restart, and the
/// recovered job's verdict is bit-identical to an uninterrupted run —
/// including a wedged (deadlocking) trial that lands in quarantine on
/// both sides.
#[test]
fn kill_nine_recovery_is_bit_identical_to_an_uninterrupted_run() {
    let spec_args =
        ["--kernel", "ME-V1-MV", "--keys", "8", "--key-bytes", "2", "--seed", "7", "--wedge", "1"];
    let raw_spec = "{\"op\":\"submit\",\"client\":\"t\",\"kernel\":\"ME-V1-MV\",\
                    \"keys\":8,\"key_bytes\":2,\"seed\":7,\"wedge\":1}";

    // Interrupted side: submit, wait until at least one trial is
    // journaled (mid-job), then kill -9.
    let dir_a = tmp_dir("recover-a");
    let (mut daemon_a, socket_a) = start_daemon(&dir_a, &[]);
    let (_stream, _reader, accepted) = raw_request(&socket_a, raw_spec);
    assert!(accepted.contains("\"event\":\"accepted\""), "{accepted}");
    let key = json::parse(accepted.trim())
        .expect("accepted parses")
        .get("key")
        .and_then(Value::as_str)
        .expect("accepted carries the content key")
        .to_owned();
    let journal = dir_a.join(format!("trials-{key}.jsonl"));
    wait_for(
        || {
            std::fs::read_to_string(&journal)
                .map(|t| t.lines().any(|l| l.contains("microsampler-trial-v1")))
                .unwrap_or(false)
        },
        Duration::from_secs(60),
        "the first trial to reach the journal",
    );
    daemon_a.kill().expect("kill -9");
    daemon_a.wait().expect("reaped");

    // Restart on the same state: the WAL re-enqueues the job and the
    // trial journal resumes it; wait for the terminal WAL event.
    let (mut daemon_a2, socket_a2) = start_daemon(&dir_a, &[]);
    let wal = dir_a.join("serve-wal.jsonl");
    wait_for(
        || std::fs::read_to_string(&wal).map(|t| t.contains("\"event\":\"done\"")).unwrap_or(false),
        Duration::from_secs(120),
        "the recovered job to finish",
    );
    // Resubmitting the unchanged spec replays the content-addressed
    // journal (no re-simulation) and hands back the recovered verdict.
    let out_a = repro()
        .arg("submit")
        .arg("--socket")
        .arg(&socket_a2)
        .args(spec_args)
        .output()
        .expect("replay submit runs");
    assert_eq!(out_a.status.code(), Some(3), "ME-V1-MV is leaky: exit 3");
    let verdict_a = extract_verdict(&out_a.stdout);
    sigterm(&daemon_a2);
    wait_exit(&mut daemon_a2, Duration::from_secs(60), "the recovered daemon");

    // Control side: the same spec, uninterrupted, on a fresh state.
    let dir_b = tmp_dir("recover-b");
    let (mut daemon_b, socket_b) = start_daemon(&dir_b, &[]);
    let out_b = repro()
        .arg("submit")
        .arg("--socket")
        .arg(&socket_b)
        .args(spec_args)
        .output()
        .expect("control submit runs");
    assert_eq!(out_b.status.code(), Some(3), "control run agrees on leakiness");
    let verdict_b = extract_verdict(&out_b.stdout);
    sigterm(&daemon_b);
    wait_exit(&mut daemon_b, Duration::from_secs(60), "the control daemon");

    assert_eq!(verdict_a, verdict_b, "recovered and uninterrupted verdicts must be bit-identical");
    assert!(verdict_a.contains("\"quarantined_trials\":[{"), "the wedged trial is quarantined");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
