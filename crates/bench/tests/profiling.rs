//! Determinism guarantees of the pipeline profiler: the counters are pure
//! simulator state, so they must be bit-identical at every thread count
//! and unaffected by whether the observability layers are enabled.

use microsampler_bench::profile::{profile_kernels, report_to_json, ProfileOptions};
use microsampler_bench::run_modexp_iterations;
use microsampler_kernels::modexp::ModexpVariant;
use microsampler_obs::{span, Value};
use microsampler_sim::{CoreConfig, PipelineStats};
use std::sync::Mutex;

// Thread-count overrides and the span registry are process-global;
// serialize every test that touches them.
static LOCK: Mutex<()> = Mutex::new(());

fn tiny() -> ProfileOptions {
    ProfileOptions {
        kernels: vec![ModexpVariant::V1MicroarchVuln, ModexpVariant::V2Safe],
        keys: 2,
        key_bytes: 1,
        seed: 17,
    }
}

/// The deterministic subset of a `BENCH_sim.json` report: everything but
/// the `host` objects (wall-clock timings vary run to run).
fn deterministic_subset(report: &Value) -> String {
    let kernels = report.get("kernels").unwrap().as_array().unwrap();
    let stripped: Vec<Value> = kernels
        .iter()
        .map(|k| {
            Value::object()
                .field("name", k.get("name").unwrap().clone())
                .field("sim", k.get("sim").unwrap().clone())
                .field("utilization", k.get("utilization").unwrap().clone())
                .field("stalls", k.get("stalls").unwrap().clone())
                .field("pipeline", k.get("pipeline").unwrap().clone())
                .build()
        })
        .collect();
    Value::Array(stripped).render_compact()
}

#[test]
fn pipeline_counters_bit_identical_across_thread_counts() {
    let _l = LOCK.lock().unwrap();
    let config = CoreConfig::mega_boom();
    let opts = tiny();
    microsampler_par::set_threads(Some(1));
    let serial = profile_kernels(&config, &opts).unwrap();
    let serial_json = deterministic_subset(&report_to_json(&serial, &config, 1));
    for threads in [2, 4] {
        microsampler_par::set_threads(Some(threads));
        let parallel = profile_kernels(&config, &opts).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.pipeline, p.pipeline, "{} counters diverge at threads={threads}", s.name);
        }
        let parallel_json = deterministic_subset(&report_to_json(&parallel, &config, threads));
        assert_eq!(parallel_json, serial_json, "BENCH_sim deterministic subset, threads={threads}");
    }
    microsampler_par::set_threads(None);
    assert!(serial.iter().all(|p| p.pipeline.cycles > 0), "the baseline must be non-trivial");
}

#[test]
fn pipeline_counters_invariant_to_span_enablement() {
    let _l = LOCK.lock().unwrap();
    microsampler_par::set_threads(Some(2));
    let config = CoreConfig::mega_boom();
    let opts = tiny();
    let bare = profile_kernels(&config, &opts).unwrap();
    span::set_enabled(true);
    span::take();
    let instrumented = profile_kernels(&config, &opts).unwrap();
    let forest = span::take();
    span::set_enabled(false);
    microsampler_par::set_threads(None);
    for (b, i) in bare.iter().zip(&instrumented) {
        assert_eq!(b.pipeline, i.pipeline, "{}: spans must not perturb the counters", b.name);
    }
    assert!(span::find(&forest, "profile").is_some(), "the sweep records a `profile` span");
}

#[test]
fn per_iteration_deltas_sum_to_totals_at_any_thread_count() {
    let _l = LOCK.lock().unwrap();
    let config = CoreConfig::mega_boom();
    let mut baseline: Option<Vec<PipelineStats>> = None;
    for threads in [1, 2, 4] {
        microsampler_par::set_threads(Some(threads));
        let iters = run_modexp_iterations(ModexpVariant::V1MicroarchVuln, &config, 2, 1, 17);
        let stats: Vec<PipelineStats> = iters.iter().map(|i| i.pipeline).collect();
        assert!(stats.iter().all(|p| p.cycles > 0 && p.committed > 0));
        match &baseline {
            None => baseline = Some(stats),
            Some(want) => assert_eq!(&stats, want, "threads={threads}"),
        }
    }
    microsampler_par::set_threads(None);
}
