//! Cross-thread-count determinism for the parallel execution engine.
//!
//! The acceptance bar is bit-identical output at every worker count: the
//! pooled iterations, every per-unit snapshot hash, and the rendered
//! analysis report must not change when the trial fan-out or the sharded
//! snapshot hashing runs on more threads.

use microsampler_bench::run_modexp_iterations;
use microsampler_core::analyze;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_sim::{CoreConfig, IterationTrace, TraceConfig, UnitId};

/// The thread-count override is process-wide state, so the whole sweep
/// lives in one test body where nothing can race it.
#[test]
fn pipeline_is_bit_identical_at_every_thread_count() {
    let run = |threads: usize| -> (Vec<IterationTrace>, String) {
        microsampler_par::set_threads(Some(threads));
        let iters = run_modexp_iterations(
            ModexpVariant::V1MicroarchVuln,
            &CoreConfig::mega_boom(),
            4,
            2,
            99,
        );
        let report = analyze(&iters).to_json().render_compact();
        (iters, report)
    };
    let (serial_iters, serial_report) = run(1);
    for threads in [2, 7] {
        let (iters, report) = run(threads);
        assert_eq!(iters.len(), serial_iters.len(), "iteration count, threads={threads}");
        for (a, b) in iters.iter().zip(&serial_iters) {
            assert_eq!(a.label, b.label, "label order, threads={threads}");
            for unit in UnitId::ALL {
                assert_eq!(a.unit(unit).hash, b.unit(unit).hash, "{unit} hash, threads={threads}");
                assert_eq!(
                    a.unit(unit).hash_timeless,
                    b.unit(unit).hash_timeless,
                    "{unit} timeless hash, threads={threads}"
                );
            }
        }
        assert_eq!(report, serial_report, "analysis report JSON, threads={threads}");
    }
    microsampler_par::set_threads(None);
}

/// Sharded snapshot hashing (`TraceConfig::threads`) must reproduce the
/// serial fold-as-rows-arrive hashes exactly on a real kernel run.
#[test]
fn sharded_hashing_matches_serial_on_a_kernel_run() {
    let kernel = ModexpKernel::new(ModexpVariant::V1MicroarchVuln, 2);
    let key = &microsampler_kernels::inputs::random_keys(1, 2, 7)[0];
    let serial =
        kernel.run(CoreConfig::mega_boom(), key, TraceConfig::default()).expect("serial run");
    for threads in [2, 7] {
        let trace = TraceConfig { threads, ..TraceConfig::default() };
        let sharded = kernel.run(CoreConfig::mega_boom(), key, trace).expect("sharded run");
        assert_eq!(sharded.exit_code, serial.exit_code);
        assert_eq!(sharded.iterations.len(), serial.iterations.len());
        for (a, b) in sharded.iterations.iter().zip(&serial.iterations) {
            for unit in UnitId::ALL {
                assert_eq!(a.unit(unit).hash, b.unit(unit).hash, "{unit}, threads={threads}");
                assert_eq!(
                    a.unit(unit).hash_timeless,
                    b.unit(unit).hash_timeless,
                    "{unit} timeless, threads={threads}"
                );
            }
        }
    }
}
