//! End-to-end `repro` CLI tests: flag validation exit codes and the
//! fault-injection → quarantine → resume loop through the real binary.

use microsampler_obs::{json, Value};
use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("microsampler-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bad_flags_exit_with_usage_error() {
    let cases: &[&[&str]] = &[
        &["fig7", "--threads", "0"],
        &["fig7", "--threads", "-3"],
        &["fig7", "--threads", "abc"],
        &["fig7", "--threads"],
        &["fig7", "--faults", "bogus"],
        &["fig7", "--faults", "rate=1"],
        &["fig7", "--faults", "drop=99999"],
        &["fig7", "--faults", "drop=abc"],
        &["fig7", "--faults"],
        &["fig7", "--resume", "/nonexistent/journal.jsonl"],
        &["fig7", "--keys", "0"],
        &["nonsense-experiment"],
    ];
    for args in cases {
        let out = repro().args(*args).output().expect("repro runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn malformed_resume_journal_exits_with_usage_error() {
    let dir = tmp_dir("badjournal");
    let journal = dir.join("journal.jsonl");
    std::fs::write(&journal, "this is not json\n").unwrap();
    let out = repro().args(["fig7", "--resume"]).arg(&journal).output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "error should name the bad line: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A misspelled `repro profile` kernel must exit 2 and name every valid
/// kernel on stderr — even with the diag sink silenced, since the
/// usage-error path prints unconditionally.
#[test]
fn profile_unknown_kernel_exits_usage_error_listing_kernels() {
    let out = repro()
        .args(["profile", "no-such-kernel"])
        .env("MICROSAMPLER_LOG", "off")
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown kernel `no-such-kernel`"), "{stderr}");
    for name in ["SAM-Naive", "SAM-CT-CMOV", "ME-V1-CV", "ME-V1-MV", "ME-V2-Safe"] {
        assert!(stderr.contains(name), "stderr must list {name}: {stderr}");
    }
}

/// The acceptance scenario: a sweep containing an always-deadlocking
/// trial completes with exit 0, reports the quarantined trial in the
/// `--json` run report and the journal, and `--resume` re-runs only the
/// missing trial.
#[test]
fn wedged_sweep_completes_quarantines_and_resumes() {
    let dir = tmp_dir("wedge");
    let journal = dir.join("trials.jsonl");
    let reports = dir.join("reports");
    let base = ["fig7", "--keys", "2", "--key-bytes", "1", "--threads", "2", "--retries", "1"];

    let out = repro()
        .args(base)
        .args(["--faults", "wedge=0", "--journal"])
        .arg(&journal)
        .arg("--json")
        .arg(&reports)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "a wedged trial must not sink the sweep; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = parse_report(&reports.join("fig7.json"));
    let trials = report.get("trials").expect("run report carries a trials section");
    assert_eq!(trials.get("completed").unwrap().as_u64(), Some(1));
    assert_eq!(trials.get("restored").unwrap().as_u64(), Some(0));
    let quarantined = trials.get("quarantined").unwrap().as_array().unwrap();
    assert_eq!(quarantined.len(), 1, "the wedged trial is enumerated");
    let q = &quarantined[0];
    assert!(q.get("id").unwrap().as_str().unwrap().ends_with("key0000"));
    assert_eq!(q.get("class").unwrap().as_str(), Some("sim-error"));
    assert_eq!(q.get("attempts").unwrap().as_u64(), Some(2), "--retries 1 means 2 attempts");

    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert!(journal_text.contains("\"status\":\"completed\""));
    assert!(journal_text.contains("\"status\":\"quarantined\""));

    // Resume without the wedge: the quarantined trial re-runs, the
    // completed one is restored, and the sweep reports no quarantine.
    let out = repro()
        .args(base)
        .arg("--resume")
        .arg(&journal)
        .arg("--json")
        .arg(&reports)
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let report = parse_report(&reports.join("fig7.json"));
    let trials = report.get("trials").unwrap();
    assert_eq!(trials.get("restored").unwrap().as_u64(), Some(1), "journaled trial not re-run");
    assert_eq!(trials.get("completed").unwrap().as_u64(), Some(1), "missing trial re-ran");
    assert_eq!(trials.get("quarantined").unwrap().as_array().unwrap().len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming a journal recorded under different FaultConfig rates (or a
/// different fault seed) would mix trials from two distributions into
/// one statistic; the CLI must refuse with exit 2 and name the hashes.
#[test]
fn resume_with_changed_fault_config_exits_usage_error() {
    let dir = tmp_dir("resume-mismatch");
    let journal = dir.join("trials.jsonl");
    let base = ["fig7", "--keys", "2", "--key-bytes", "1", "--threads", "2"];

    let out = repro()
        .args(base)
        .args(["--faults", "evict=16,seed=9", "--journal"])
        .arg(&journal)
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Same journal, different eviction rate: refused before any trial runs.
    let out = repro()
        .args(base)
        .args(["--faults", "evict=32,seed=9", "--resume"])
        .arg(&journal)
        .output()
        .expect("repro runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "a rate change must be refused; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("different"), "error explains the mismatch: {stderr}");

    // A changed fault seed is the same hazard.
    let out = repro()
        .args(base)
        .args(["--faults", "evict=16,seed=10", "--resume"])
        .arg(&journal)
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "a fault-seed change must be refused");

    // The matching spec still resumes cleanly.
    let out = repro()
        .args(base)
        .args(["--faults", "evict=16,seed=9", "--resume"])
        .arg(&journal)
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "the original spec must resume; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn parse_report(path: &std::path::Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let v = json::parse(&text).expect("run report parses");
    assert_eq!(v.get("schema").and_then(Value::as_str), Some("microsampler-run-report-v1"));
    v
}
