//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! repro <experiment>... [--keys N] [--key-bytes N] [--reps N]
//!                       [--trials N] [--seed N] [--full]
//! experiments: table1 table2 table3 table4 table5 table6 table7
//!              fig2 fig3 fig4 fig5 fig6 fig7 fig9 fig10 sensitivity all
//! ```

use microsampler_bench::experiments as exp;
use microsampler_bench::{print_cycle_histogram, print_v_chart, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        match args[i].as_str() {
            "--keys" => scale.keys = take_num(&mut i),
            "--key-bytes" => scale.key_bytes = take_num(&mut i),
            "--reps" => scale.memcmp_reps = take_num(&mut i),
            "--trials" => scale.primitive_trials = take_num(&mut i),
            "--seed" => scale.seed = take_num(&mut i) as u64,
            "--full" => scale = Scale::full(),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => wanted.push(other.to_owned()),
            other => fail(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if wanted.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if scale.keys == 0 || scale.key_bytes == 0 || scale.memcmp_reps == 0
        || scale.primitive_trials == 0
    {
        fail("--keys, --key-bytes, --reps and --trials must be at least 1");
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ["table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig2",
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "sensitivity"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    for w in &wanted {
        run(w, &scale);
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2)
}

fn usage() {
    eprintln!(
        "usage: repro <experiment>... [--keys N] [--key-bytes N] [--reps N] [--trials N] [--seed N] [--full]"
    );
    eprintln!("experiments: table1-table7 fig2-fig10 sensitivity all");
}

fn run(which: &str, scale: &Scale) {
    match which {
        "table1" => {
            println!("\n== Table I: leakage-detection tool comparison (qualitative) ==");
            for row in exp::table1() {
                println!(
                    "{:<20} {:<26} {:<20} {:<10} {:<12}",
                    row[0], row[1], row[2], row[3], row[4]
                );
            }
        }
        "fig2" => {
            println!("\n== Fig 2: SQ-ADDR iteration snapshots (ME-V1-MV) ==");
            for (label, rows) in exp::fig2(scale) {
                println!(
                    "key bit = {label} ({} cycles total; empty-queue cycles elided):",
                    rows.len()
                );
                for (cycle, row) in rows.iter().enumerate() {
                    if row.iter().all(|&v| v == 0) {
                        continue;
                    }
                    let cells: Vec<String> = row
                        .iter()
                        .take(8)
                        .map(|&v| if v == 0 { "-".into() } else { format!("{v:#x}") })
                        .collect();
                    println!("  cycle +{cycle:<3} | {}", cells.join(" "));
                }
            }
        }
        "table2" => {
            println!("\n== Table II: contingency table for SQ-ADDR (SAM-CT-CMOV) ==");
            let t = exp::table2(scale);
            println!("{t}");
            println!("{}", t.association());
        }
        "table3" => {
            println!("\n== Table III: BOOM core configurations ==");
            let (mega, small) = exp::table3();
            for c in [&mega, &small] {
                println!(
                    "{:<10} fetch/dec/iss={}/{}/{} ROB={} PRF={} LDQ/STQ={}/{} LFB={} \
                     bpred={} L1D={}x{} mshr={} tlb={} prefetcher={:?}",
                    c.name,
                    c.fetch_width,
                    c.decode_width,
                    c.issue_width,
                    c.rob_entries,
                    c.prf_regs,
                    c.ldq_entries,
                    c.stq_entries,
                    c.lfb_entries,
                    c.bpred_entries,
                    c.l1d.sets,
                    c.l1d.ways,
                    c.l1d.mshrs,
                    c.tlb_entries,
                    c.prefetcher,
                );
            }
        }
        "table4" => {
            println!("\n== Table IV: tracked microarchitectural units ==");
            for u in exp::table4() {
                println!("  {}", u.name());
            }
        }
        "table5" => {
            println!("\n== Table V: OpenSSL constant-time primitives ==");
            println!("{:<34} {:>5} {:>6} {:>7} {:>6}", "primitive", "func", "leak", "maxV", "esc");
            let rows = exp::table5(scale);
            for r in &rows {
                println!(
                    "{:<34} {:>5} {:>6} {:>7.3} {:>6}",
                    r.name,
                    if r.functional_ok { "ok" } else { "FAIL" },
                    if r.leak_identified { "LEAK" } else { "-" },
                    r.max_v,
                    r.escalation_rounds,
                );
            }
            let flagged = rows.iter().filter(|r| r.leak_identified).count();
            println!("flagged: {flagged}/27 (paper: 0/27; CRYPTO_memcmp — see fig10 — leaks)");
        }
        "table6" => {
            println!("\n== Table VI: MicroSampler stage breakdown (ME-V1-CV, MegaBoom) ==");
            let t = exp::table6(scale);
            print_table6(&t);
        }
        "table7" => {
            println!("\n== Table VII: scalability vs XENON ==");
            let t = exp::table7(scale);
            println!("SmallBoom ({} entries): {:?}", t.small_size, t.small.total());
            println!("MegaBoom  ({} entries): {:?}", t.mega_size, t.mega.total());
            println!(
                "MicroSampler: {:.1}x size / {:.1}x time",
                t.size_ratio(),
                t.time_ratio()
            );
            println!(
                "XENON (reported): {:.0}x size / {:.0}x time (2.5s ALU -> 14min SCARV)",
                exp::XENON_SIZE_RATIO,
                exp::XENON_TIME_RATIO
            );
        }
        "fig3" => {
            let r = exp::fig3(scale);
            print_v_chart("Fig 3: ME-V1-CV Cramer's V per unit", &r.v_series());
            print_leaks(&r);
        }
        "fig4" => {
            let r = exp::fig4(scale);
            print_v_chart("Fig 4: ME-V1-MV Cramer's V per unit", &r.v_series());
            print_leaks(&r);
            let rp = exp::fig4_with_pressure(scale);
            print_v_chart("Fig 4 (with cache pressure): miss-path units light up", &rp.v_series());
        }
        "fig5" => {
            println!("\n== Fig 5: SQ-ADDR feature uniqueness for ME-V1-MV ==");
            let u = exp::fig5(scale);
            for (class, feats) in &u.unique {
                print!("class bit={class}: {} unique addresses:", feats.len());
                for f in feats.iter().take(8) {
                    print!(" {f:#x}");
                }
                println!();
            }
            println!("shared addresses: {}", u.shared.len());
        }
        "fig6" => {
            let f = exp::fig6(scale);
            print_cycle_histogram(
                "Fig 6a: iteration cycles, both buffers uninitialized",
                &f.cold.0,
                &f.cold.1,
            );
            print_cycle_histogram(
                "Fig 6b: iteration cycles, dst initialized (warm)",
                &f.warm.0,
                &f.warm.1,
            );
        }
        "fig7" => {
            let r = exp::fig7(scale);
            print_v_chart("Fig 7: ME-V2-Safe Cramer's V per unit", &r.v_series());
            print_leaks(&r);
        }
        "fig9" => {
            let r = exp::fig9(scale);
            print_v_chart("Fig 9: ME-V2-FB (fast bypass) with timing", &r.v_series());
            print_v_chart("Fig 9: ME-V2-FB timing removed", &r.v_series_timeless());
            print_leaks(&r);
        }
        "sensitivity" => {
            println!("\n== Sensitivity: verdicts vs sample size (§VII-D) ==");
            println!(
                "{:>5} {:>6} | {:>9} {:>8} | {:>8} {:>7} {:>10}",
                "keys", "iters", "leaky maxV", "flagged", "safe maxV", "flagged", "needs more"
            );
            for p in exp::sensitivity(scale) {
                println!(
                    "{:>5} {:>6} | {:>10.3} {:>8} | {:>9.3} {:>7} {:>10}",
                    p.keys,
                    p.iterations,
                    p.leaky_max_v,
                    p.leaky_flagged,
                    p.safe_max_v,
                    p.safe_false_positive,
                    p.safe_needs_more,
                );
            }
        }
        "fig10" => {
            let f = exp::fig10(scale);
            print_v_chart("Fig 10: CT-MEM-CMP Cramer's V per unit", &f.report.v_series());
            println!(
                "call patterns in CRYPTO_memcmp windows: inequal-only={} equal-only={} BOTH={} neither={}",
                f.patterns.inequal_only, f.patterns.equal_only, f.patterns.both, f.patterns.neither
            );
            println!(
                "mispredicts={} ROB-PC ordering mismatches={} leak identified: {}",
                f.mispredicts, f.ordering_mismatches, f.leak_identified
            );
        }
        other => fail(&format!("unknown experiment `{other}`")),
    }
}

fn print_leaks(r: &microsampler_core::AnalysisReport) {
    let leaks: Vec<&str> = r.leaky_units().iter().map(|u| u.unit.name()).collect();
    println!("flagged units: {leaks:?}");
}

fn print_table6(t: &exp::Table6) {
    println!("1- simulate with trace logging     {:>10.2?}", t.simulate);
    println!("2- parse traces into snapshots     {:>10.2?}", t.parse);
    println!("3- Cramer's V for all structures   {:>10.2?}", t.correlate);
    println!("4- feature extraction              {:>10.2?}", t.extract);
    println!("total                              {:>10.2?}", t.total());
    println!("({} iterations, {} simulated cycles)", t.iterations, t.cycles);
}
