//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! repro <experiment>... [--keys N] [--key-bytes N] [--reps N]
//!                       [--trials N] [--seed N] [--threads N]
//!                       [--full] [--json DIR] [--faults SPEC]
//!                       [--journal FILE] [--resume FILE] [--retries N]
//!                       [--trial-timeout SECS]
//! repro lint [--all | <kernel>...] [--static] [--sarif FILE]
//!            [--baseline FILE] [--update-baseline] [--spec-depth N]
//!            [--no-spec] [--trials N] [--seed N] [--threads N]
//! repro profile [--all | <kernel>...] [--keys N] [--key-bytes N]
//!               [--seed N] [--threads N] [--out FILE] [--trace-out FILE]
//! repro audit [--trials N] [--seed N] [--threads N] [--faults SPEC]
//!             [--full-budget] [--out FILE] [--stats-out FILE]
//!             [--robustness] [--noise L1,L2,...] [--stability-out FILE]
//! repro serve --state DIR [--socket PATH] [--queue N] [--per-client N]
//!             [--job-timeout-ms MS] [--job-retries N] [--backoff-ms MS]
//! repro submit --socket PATH [--client NAME] [--kernel NAME] [--keys N]
//!              [--key-bytes N] [--seed N] [--sequential] [--cancel JOB]
//!              [--status]
//! experiments: table1 table2 table3 table4 table5 table6 table7
//!              fig2 fig3 fig4 fig5 fig6 fig7 fig9 fig10 sensitivity all
//! ```
//!
//! `--faults` injects seed-deterministic microarchitectural faults into
//! every modexp trial (see `microsampler_sim::FaultConfig`); `--journal`
//! checkpoints each finished trial as a JSONL record and `--resume`
//! restores completed trials from such a journal, re-running only the
//! missing ones. Any of the fault/journal/retry flags routes trials
//! through the crash-isolation harness: a deadlocked, over-budget, or
//! panicking trial is quarantined (with bounded retries) and the sweep
//! completes on the surviving trials, reporting the quarantine list under
//! `trials` in `--json` run reports.
//!
//! `--threads N` sizes the worker pool for trial fan-out and analysis.
//! Precedence: the `--threads` flag wins over the `MICROSAMPLER_THREADS`
//! env var, which wins over the default of every available core. Results
//! are bit-identical at any thread count.
//!
//! `repro lint` runs the static constant-time taint analyzer
//! (`microsampler-ct`) over Table V primitives and the seeded-leaky
//! fixtures; `--all` additionally cross-validates the static verdicts
//! against the dynamic statistical audit, both under the paper's MegaBoom
//! configuration and under adversarial speculation (polarized predictor
//! state plus spurious-squash fault plans) to check CT-SPEC findings
//! end to end. `--spec-depth N` bounds the modeled transient window in
//! instructions (default: the MegaBoom ROB size); `--no-spec` disables
//! speculative taint entirely. `--update-baseline` atomically rewrites
//! the `--baseline` file (default `lint-baseline.json`) with the current
//! verdicts, sorted by kernel name. Exit codes: 0 = clean,
//! 3 = architectural violations found, 4 = only transient (CT-SPEC)
//! violations found, 1 = `--baseline` verdict mismatch, 2 = usage error.
//!
//! `repro profile` sweeps modexp kernels with the simulator's always-on
//! pipeline counters and prints a riscv-perf-model-style utilization dump
//! (host throughput, simulated IPC, per-EU utilization, stall-cause
//! breakdown), writing the stable-schema `BENCH_sim.json` throughput
//! baseline; `--trace-out FILE` additionally exports the span forest as
//! Chrome trace-event JSON, openable at <https://ui.perfetto.dev>. Exits
//! nonzero if any kernel reports zero IPC or throughput.
//!
//! With `--json DIR`, each experiment additionally writes
//! `DIR/<experiment>.json`: a stable-schema run report carrying the
//! experiment's structured result, the pipeline span tree, and the
//! aggregated simulator metrics for the sweep. Set `MICROSAMPLER_PROGRESS=1`
//! for trial-N-of-M heartbeats during long sweeps.

use microsampler_bench::experiments as exp;
use microsampler_bench::{lint, print_cycle_histogram, print_v_chart, profile, sweep, Scale};
use microsampler_core::association_to_json;
use microsampler_kernels::modexp::ModexpVariant;
use microsampler_obs::{diag, diag_error, json, metrics, span, trace_event, Value};
use microsampler_sim::{CoreConfig, FaultConfig};
use std::process::ExitCode;
use std::time::Duration;

const EXPERIMENTS: [&str; 16] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "sensitivity",
];

fn main() -> ExitCode {
    // CLI errors must be visible even though library diagnostics default
    // to silent; respect an explicit MICROSAMPLER_LOG if one is set.
    if std::env::var_os("MICROSAMPLER_LOG").is_none() {
        diag::set_max_level(Some(diag::Level::Error));
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("lint") {
        return lint_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        return profile_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("audit") {
        return audit_main(&args[1..]);
    }
    #[cfg(unix)]
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    #[cfg(unix)]
    if args.first().map(String::as_str) == Some("submit") {
        return submit_main(&args[1..]);
    }
    let mut scale = Scale::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut json_dir: Option<std::path::PathBuf> = None;
    let mut sweep_opts = sweep::SweepOptions::default();
    let mut sweep_requested = false;
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        let take_path = |i: &mut usize, flag: &str| -> std::path::PathBuf {
            *i += 1;
            args.get(*i).unwrap_or_else(|| fail(&format!("expected a path after {flag}"))).into()
        };
        match args[i].as_str() {
            "--keys" => scale.keys = take_num(&mut i),
            "--key-bytes" => scale.key_bytes = take_num(&mut i),
            "--reps" => scale.memcmp_reps = take_num(&mut i),
            "--trials" => scale.primitive_trials = take_num(&mut i),
            "--seed" => scale.seed = take_num(&mut i) as u64,
            "--threads" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| fail("expected a number after --threads"));
                match raw.parse::<usize>() {
                    Ok(0) => fail("--threads must be at least 1"),
                    // set_threads clamps absurd counts to the host's
                    // available parallelism (with a warning).
                    Ok(n) => microsampler_par::set_threads(Some(n)),
                    Err(_) => fail(&format!(
                        "invalid --threads value `{raw}`: expected a positive integer"
                    )),
                }
            }
            "--full" => scale = Scale::full(),
            "--faults" => {
                i += 1;
                let spec =
                    args.get(i).unwrap_or_else(|| fail("expected a fault spec after --faults"));
                match parse_faults(spec) {
                    Ok((faults, wedge_trial)) => {
                        sweep_opts.faults = faults;
                        sweep_opts.wedge_trial = wedge_trial;
                        sweep_requested = true;
                    }
                    Err(e) => fail(&format!("invalid --faults spec `{spec}`: {e}")),
                }
            }
            "--journal" => {
                sweep_opts.journal = Some(take_path(&mut i, "--journal"));
                sweep_requested = true;
            }
            "--resume" => {
                let path = take_path(&mut i, "--resume");
                // Validate up front: a missing or corrupt journal must be
                // a usage error, not a silently-ignored restart.
                if let Err(e) = sweep::load_journal(&path) {
                    fail(&format!("cannot resume: {e}"));
                }
                sweep_opts.journal = Some(path);
                sweep_opts.resume = true;
                sweep_requested = true;
            }
            "--retries" => {
                // N retries = N+1 attempts; 0 disables retrying.
                sweep_opts.policy.max_attempts = take_num(&mut i) as u32 + 1;
                sweep_requested = true;
            }
            "--sequential" => {
                sweep_opts.sequential = Some(microsampler_core::SeqConfig::default());
                sweep_requested = true;
            }
            "--trial-timeout" => {
                sweep_opts.policy.timeout = Some(Duration::from_secs(take_num(&mut i) as u64));
                sweep_requested = true;
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => json_dir = Some(dir.into()),
                    None => fail("expected a directory after --json"),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => wanted.push(other.to_owned()),
            other => fail(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if wanted.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if scale.keys == 0
        || scale.key_bytes == 0
        || scale.memcmp_reps == 0
        || scale.primitive_trials == 0
    {
        fail("--keys, --key-bytes, --reps and --trials must be at least 1");
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // Validate every id up front so a typo late in the list fails before
    // hours of sweeps, not after.
    for w in &wanted {
        if !EXPERIMENTS.contains(&w.as_str()) {
            fail(&format!("unknown experiment `{w}`"));
        }
    }
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fail(&format!("cannot create --json directory {}: {e}", dir.display()));
        }
    }
    // A journal written under different FaultConfig rates or fault seed
    // holds trials from a different distribution; mixing them into this
    // run would silently bias the statistics. Checked after the whole
    // arg loop so a later `--faults` cannot dodge it.
    if sweep_opts.resume {
        if let Some(path) = &sweep_opts.journal {
            if let Ok(state) = sweep::load_journal(path) {
                if let Some(recorded) = &state.config_hash {
                    let current = sweep::options_config_hash(&sweep_opts);
                    if *recorded != current {
                        fail(&format!(
                            "cannot resume {}: the journal was written under a different \
                             FaultConfig or fault seed (journal config {recorded}, current \
                             {current}); restore the original --faults spec or start a fresh \
                             journal",
                            path.display()
                        ));
                    }
                }
            }
        }
    }
    if sweep_requested {
        // A fresh (non-resume) journal starts empty; sweeps append to it.
        if let (Some(path), false) = (&sweep_opts.journal, sweep_opts.resume) {
            if let Err(e) = std::fs::write(path, "") {
                fail(&format!("cannot create trial journal {}: {e}", path.display()));
            }
        }
        sweep_opts.isolate = true;
        sweep::set_options(Some(sweep_opts));
    }
    for w in &wanted {
        sweep::reset_events();
        if let Some(dir) = &json_dir {
            span::set_enabled(true);
            metrics::set_enabled(true);
            span::take();
            metrics::reset();
            let result = run(w, &scale);
            let spans = span::take();
            let snapshot = metrics::snapshot();
            span::set_enabled(false);
            metrics::set_enabled(false);
            let report = Value::object()
                .field("schema", "microsampler-run-report-v1")
                .field("experiment", w.as_str())
                .field("scale", scale_to_json(&scale))
                .field("threads", microsampler_par::threads())
                .field("result", result)
                .field("trials", sweep::events_to_json())
                .field("spans", span::nodes_to_json(&spans))
                .field("metrics", metrics::snapshot_to_json(&snapshot))
                .build();
            let path = dir.join(format!("{w}.json"));
            if let Err(e) = std::fs::write(&path, report.render_pretty()) {
                fail(&format!("cannot write {}: {e}", path.display()));
            }
            println!("wrote {}", path.display());
        } else {
            run(w, &scale);
        }
    }
    ExitCode::SUCCESS
}

fn fail(msg: &str) -> ! {
    // Unconditional: a usage error must be visible even under
    // MICROSAMPLER_LOG=off (which silences the diag sink entirely).
    eprintln!("repro: {msg}");
    usage();
    std::process::exit(2)
}

/// Parses a `--faults` spec: comma-separated `key=value` pairs with keys
/// `seed`, `squash`, `evict`, `mshr`, `drop`, `flip` (rates are
/// probabilities per 64k cycles, at most 65536) and `wedge=K` (wedge
/// trial K's core — a deliberate deadlock).
fn parse_faults(spec: &str) -> Result<(Option<FaultConfig>, Option<usize>), String> {
    let mut faults = FaultConfig::default();
    let mut wedge_trial = None;
    for part in spec.split(',') {
        let (key, value) =
            part.split_once('=').ok_or_else(|| format!("expected key=value, got `{part}`"))?;
        let num =
            || value.parse::<u64>().map_err(|_| format!("invalid value `{value}` for `{key}`"));
        let rate = || -> Result<u32, String> {
            let v = num()?;
            if v > 65536 {
                return Err(format!("rate `{key}={v}` exceeds 65536 (probability per 64k)"));
            }
            Ok(v as u32)
        };
        match key {
            "seed" => faults.seed = num()?,
            "squash" => faults.squash_per_64k = rate()?,
            "evict" => faults.evict_per_64k = rate()?,
            "mshr" => faults.mshr_stall_per_64k = rate()?,
            "drop" => faults.drop_row_per_64k = rate()?,
            "flip" => faults.bitflip_per_64k = rate()?,
            "wedge" => wedge_trial = Some(num()? as usize),
            other => {
                return Err(format!(
                    "unknown fault key `{other}` (expected seed/squash/evict/mshr/drop/flip/wedge)"
                ))
            }
        }
    }
    Ok((faults.any().then_some(faults), wedge_trial))
}

/// `repro lint [--all | <kernel>...] [--static] [--sarif FILE]
/// [--baseline FILE] [--update-baseline] [--spec-depth N] [--no-spec]
/// [--trials N] [--seed N] [--threads N]`.
///
/// Exit codes: 0 = all analyzed kernels are clean, 3 = architectural
/// constant-time violations were found, 4 = only transient (CT-SPEC)
/// violations were found, 1 = verdicts diverge from `--baseline`,
/// 2 = usage error.
fn lint_main(args: &[String]) -> ExitCode {
    let mut scale = Scale::default();
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut static_only = false;
    let mut sarif_path: Option<std::path::PathBuf> = None;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut update_baseline = false;
    let mut spec_depth: Option<usize> = None;
    let mut no_spec = false;
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        let take_path = |i: &mut usize, flag: &str| -> std::path::PathBuf {
            *i += 1;
            args.get(*i).unwrap_or_else(|| fail(&format!("expected a path after {flag}"))).into()
        };
        match args[i].as_str() {
            "--all" => all = true,
            "--static" => static_only = true,
            "--sarif" => sarif_path = Some(take_path(&mut i, "--sarif")),
            "--baseline" => baseline_path = Some(take_path(&mut i, "--baseline")),
            "--update-baseline" => update_baseline = true,
            "--spec-depth" => spec_depth = Some(take_num(&mut i)),
            "--no-spec" => no_spec = true,
            "--trials" => scale.primitive_trials = take_num(&mut i),
            "--seed" => scale.seed = take_num(&mut i) as u64,
            "--threads" => match take_num(&mut i) {
                0 => fail("--threads must be at least 1"),
                n => microsampler_par::set_threads(Some(n)),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => names.push(other.to_owned()),
            other => fail(&format!("unknown lint flag `{other}`")),
        }
        i += 1;
    }
    if all != names.is_empty() {
        fail("lint takes either --all or at least one kernel name, not both");
    }
    if scale.primitive_trials == 0 {
        fail("--trials must be at least 1");
    }
    if no_spec && spec_depth.is_some() {
        fail("--no-spec and --spec-depth are mutually exclusive");
    }
    let spec = if no_spec {
        microsampler_ct::SpecModel::disabled()
    } else {
        spec_depth.map_or_else(microsampler_ct::SpecModel::default, |depth| {
            microsampler_ct::SpecModel { depth }
        })
    };
    let results = if all {
        lint::lint_static_all_with(spec)
    } else {
        names
            .iter()
            .map(|n| {
                lint::lint_one_with(n, spec).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown kernel `{n}` (expected a Table V primitive or a fixture; \
                         see `repro lint --all`)"
                    ))
                })
            })
            .collect()
    };
    for r in &results {
        print!("{}", r.report);
    }
    let arch_leaky = results.iter().filter(|r| r.report.has_architectural_violations()).count();
    let transient_only = results.iter().filter(|r| r.report.is_transient_only()).count();
    let clean = results.len() - arch_leaky - transient_only;
    println!(
        "linted {} kernels: {} clean, {} leaky, {} leaky-transient",
        results.len(),
        clean,
        arch_leaky,
        transient_only
    );
    if let Some(path) = &sarif_path {
        let pairs: Vec<(&microsampler_ct::StaticReport, u64)> =
            results.iter().map(|r| (&r.report, r.text_base)).collect();
        let doc = microsampler_ct::sarif_document(&pairs);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());
    }
    // Cross-validate static vs dynamic verdicts over the real primitives
    // (--all only; fixtures are static-only regression anchors).
    if all && !static_only {
        println!("\n== cross-validation: static taint vs dynamic audit ==");
        let cross = lint::lint_crossval(&results, &scale);
        print!("{cross}");
    }
    if update_baseline {
        let path =
            baseline_path.clone().unwrap_or_else(|| std::path::PathBuf::from("lint-baseline.json"));
        match write_baseline(&path, &results) {
            Ok(()) => {
                println!("wrote {}", path.display());
                return ExitCode::SUCCESS;
            }
            Err(msg) => {
                diag_error!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &baseline_path {
        match check_baseline(path, &results) {
            Ok(()) => println!("verdicts match {}", path.display()),
            Err(msg) => {
                diag_error!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if arch_leaky > 0 {
        ExitCode::from(3)
    } else if transient_only > 0 {
        ExitCode::from(4)
    } else {
        ExitCode::SUCCESS
    }
}

/// `repro profile [--all | <kernel>...] [--keys N] [--key-bytes N]
/// [--seed N] [--threads N] [--out FILE] [--trace-out FILE]`.
///
/// Exit codes: 0 = profiled and `BENCH_sim.json` written, 1 = a kernel
/// failed or reported zero IPC/throughput, 2 = usage error.
fn profile_main(args: &[String]) -> ExitCode {
    let mut opts = profile::ProfileOptions::default();
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut out = std::path::PathBuf::from("BENCH_sim.json");
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        let take_path = |i: &mut usize, flag: &str| -> std::path::PathBuf {
            *i += 1;
            args.get(*i).unwrap_or_else(|| fail(&format!("expected a path after {flag}"))).into()
        };
        match args[i].as_str() {
            "--all" => all = true,
            "--keys" => opts.keys = take_num(&mut i),
            "--key-bytes" => opts.key_bytes = take_num(&mut i),
            "--seed" => opts.seed = take_num(&mut i) as u64,
            "--threads" => match take_num(&mut i) {
                0 => fail("--threads must be at least 1"),
                n => microsampler_par::set_threads(Some(n)),
            },
            "--out" => out = take_path(&mut i, "--out"),
            "--trace-out" => trace_out = Some(take_path(&mut i, "--trace-out")),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => names.push(other.to_owned()),
            other => fail(&format!("unknown profile flag `{other}`")),
        }
        i += 1;
    }
    if all != names.is_empty() {
        fail("profile takes either --all or at least one kernel name, not both");
    }
    if opts.keys == 0 || opts.key_bytes == 0 {
        fail("--keys and --key-bytes must be at least 1");
    }
    if !all {
        opts.kernels = names
            .iter()
            .map(|n| {
                ModexpVariant::ALL.iter().copied().find(|v| v.name() == n).unwrap_or_else(|| {
                    let known: Vec<&str> = ModexpVariant::ALL.iter().map(|v| v.name()).collect();
                    fail(&format!("unknown kernel `{n}` (expected one of {})", known.join(", ")))
                })
            })
            .collect();
    }
    let config = CoreConfig::mega_boom();
    if trace_out.is_some() {
        span::set_enabled(true);
        span::take();
    }
    let profiles = match profile::profile_kernels(&config, &opts) {
        Ok(profiles) => profiles,
        Err(e) => {
            diag_error!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for p in &profiles {
        profile::print_profile(p, &config);
    }
    let report = profile::report_to_json(&profiles, &config, microsampler_par::threads());
    if let Err(e) = std::fs::write(&out, report.render_pretty()) {
        diag_error!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("\nwrote {}", out.display());
    if let Some(path) = &trace_out {
        let spans = span::take();
        span::set_enabled(false);
        let doc = trace_event::spans_to_trace_events(&spans);
        if let Err(e) = std::fs::write(path, doc.render_compact()) {
            diag_error!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} (open at https://ui.perfetto.dev)", path.display());
    }
    // The throughput baseline is useless if the counters read zero; make
    // that a hard failure so CI catches a broken profiler immediately.
    for p in &profiles {
        if p.pipeline.ipc() <= 0.0 || p.sim_cycles_per_host_sec() <= 0.0 {
            diag_error!("{}: zero IPC or host throughput in the profile", p.name);
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `repro audit [--trials N] [--seed N] [--threads N] [--faults SPEC]
/// [--full-budget] [--out FILE] [--stats-out FILE] [--robustness]
/// [--noise L1,L2,...] [--stability-out FILE]`.
///
/// Runs the 27-primitive Table V audit under anytime-valid early
/// stopping (default) or the fixed budget (`--full-budget`), printing
/// one row per primitive with its stopping point and writing the
/// `microsampler-stats-bench-v1` trials-to-verdict benchmark. With
/// `--robustness`, replays the audit in both modes across the fault
/// noise ladder and writes per-primitive verdict-stability curves
/// (`microsampler-stability-v1`).
///
/// Exit codes: 0 = all verdicts clean and stable, 3 = a leak was
/// flagged (or, under `--robustness`, a primitive is UNSTABLE),
/// 1 = a primitive failed to simulate, 2 = usage error.
fn audit_main(args: &[String]) -> ExitCode {
    use microsampler_bench::audit;
    let mut opts = audit::AuditOptions::default();
    let mut robustness = false;
    let mut noise: Vec<u32> = audit::DEFAULT_NOISE_LEVELS.to_vec();
    let mut out: Option<std::path::PathBuf> = None;
    let mut stats_out = std::path::PathBuf::from("BENCH_stats.json");
    let mut stability_out = std::path::PathBuf::from("stability.json");
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        let take_path = |i: &mut usize, flag: &str| -> std::path::PathBuf {
            *i += 1;
            args.get(*i).unwrap_or_else(|| fail(&format!("expected a path after {flag}"))).into()
        };
        match args[i].as_str() {
            "--trials" => match take_num(&mut i) {
                0 => fail("--trials must be at least 1"),
                n => opts.trials = n,
            },
            "--seed" => opts.seed = take_num(&mut i) as u64,
            "--threads" => match take_num(&mut i) {
                0 => fail("--threads must be at least 1"),
                n => microsampler_par::set_threads(Some(n)),
            },
            "--faults" => {
                i += 1;
                let spec =
                    args.get(i).unwrap_or_else(|| fail("expected a fault spec after --faults"));
                match parse_faults(spec) {
                    Ok((faults, None)) => opts.faults = faults,
                    Ok((_, Some(_))) => fail("audit does not take wedge= in --faults"),
                    Err(e) => fail(&format!("invalid --faults spec `{spec}`: {e}")),
                }
            }
            "--full-budget" => opts.early_stop = false,
            "--robustness" => robustness = true,
            "--noise" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| fail("expected levels after --noise"));
                noise = spec
                    .split(',')
                    .map(|s| {
                        s.parse::<u32>().unwrap_or_else(|_| {
                            fail(&format!("invalid --noise level `{s}`: expected an integer"))
                        })
                    })
                    .collect();
                if noise.is_empty() {
                    fail("--noise needs at least one level");
                }
            }
            "--out" => out = Some(take_path(&mut i, "--out")),
            "--stats-out" => stats_out = take_path(&mut i, "--stats-out"),
            "--stability-out" => stability_out = take_path(&mut i, "--stability-out"),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown audit flag `{other}`")),
        }
        i += 1;
    }

    let rows = audit::run_audit(&opts);
    println!(
        "\n== adaptive sequential audit ({} budget, {}) ==",
        opts.trials,
        if opts.early_stop { "early stop" } else { "full budget" }
    );
    println!(
        "{:<34} {:>9} {:>5} {:>7} {:>11} {:>5} {:>8}",
        "primitive", "verdict", "func", "maxV", "trials", "looks", "fallback"
    );
    for r in &rows {
        println!(
            "{:<34} {:>9} {:>5} {:>7.3} {:>5}/{:<5} {:>5} {:>8}",
            r.name,
            r.verdict.name(),
            if r.functional_ok { "ok" } else { "FAIL" },
            r.max_v,
            r.trials_spent,
            r.budget,
            r.stop.looks.len(),
            if r.stop.fallback { "batch" } else { "-" },
        );
        if let Some(e) = &r.error {
            println!("{:<34} error: {e}", "");
        }
    }
    let bench = audit::stats_bench_json(&rows);
    println!(
        "median trials-to-verdict: {} of {} ({}x)",
        bench.get("median_trials_to_verdict").and_then(Value::as_u64).unwrap_or(0),
        opts.trials,
        bench.get("median_speedup").map_or(0.0, |v| v.as_f64().unwrap_or(0.0)),
    );
    if let Err(e) = std::fs::write(&stats_out, bench.render_pretty()) {
        fail(&format!("cannot write {}: {e}", stats_out.display()));
    }
    println!("wrote {}", stats_out.display());
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, audit::audit_to_json(&rows).render_pretty()) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        println!("wrote {}", path.display());
    }

    let mut unstable = 0usize;
    if robustness {
        println!("\n== verdict stability across fault noise (per-64k levels {noise:?}) ==");
        let curves = audit::robustness(&opts, &noise);
        for c in &curves {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{}:{}{}",
                        p.noise,
                        p.early.name(),
                        if p.early == p.full {
                            String::new()
                        } else {
                            format!("!={}", p.full.name())
                        }
                    )
                })
                .collect();
            println!(
                "{:<34} {:>9}  {}",
                c.name,
                if c.unstable { "UNSTABLE" } else { "stable" },
                points.join("  ")
            );
        }
        unstable = curves.iter().filter(|c| c.unstable).count();
        if let Err(e) =
            std::fs::write(&stability_out, audit::stability_to_json(&curves).render_pretty())
        {
            fail(&format!("cannot write {}: {e}", stability_out.display()));
        }
        println!("wrote {}", stability_out.display());
    }

    if rows.iter().any(|r| r.error.is_some() || !r.functional_ok) {
        diag_error!("a primitive failed to simulate or diverged from its reference");
        return ExitCode::FAILURE;
    }
    if unstable > 0 {
        diag_error!("{unstable} primitives have UNSTABLE verdicts");
        return ExitCode::from(3);
    }
    if rows.iter().any(|r| r.verdict == microsampler_core::SeqVerdict::Leaky) {
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

/// `repro serve --socket PATH --state DIR [--queue N] [--per-client N]
/// [--job-timeout-ms MS] [--job-retries N] [--backoff-ms MS]
/// [--threads N]`.
///
/// Runs the leakage-audit daemon until SIGTERM/SIGINT, then drains
/// in-flight jobs and exits 0. Exit codes: 0 = clean shutdown,
/// 1 = setup or drain failure, 2 = usage error.
#[cfg(unix)]
fn serve_main(args: &[String]) -> ExitCode {
    use microsampler_bench::serve;
    let mut opts = serve::ServeOptions::default();
    let mut socket: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        let take_path = |i: &mut usize, flag: &str| -> std::path::PathBuf {
            *i += 1;
            args.get(*i).unwrap_or_else(|| fail(&format!("expected a path after {flag}"))).into()
        };
        match args[i].as_str() {
            "--socket" => socket = Some(take_path(&mut i, "--socket")),
            "--state" => opts.state_dir = take_path(&mut i, "--state"),
            "--queue" => match take_num(&mut i) {
                0 => fail("--queue must be at least 1"),
                n => opts.queue_cap = n,
            },
            "--per-client" => match take_num(&mut i) {
                0 => fail("--per-client must be at least 1"),
                n => opts.per_client = n,
            },
            "--job-timeout-ms" => {
                opts.job_timeout = Some(Duration::from_millis(take_num(&mut i) as u64));
            }
            "--job-retries" => opts.job_retries = take_num(&mut i) as u32,
            "--backoff-ms" => {
                let base = Duration::from_millis(take_num(&mut i) as u64);
                opts.backoff_base = base;
                opts.backoff_cap = base.saturating_mul(16);
            }
            "--threads" => match take_num(&mut i) {
                0 => fail("--threads must be at least 1"),
                n => microsampler_par::set_threads(Some(n)),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown serve flag `{other}`")),
        }
        i += 1;
    }
    opts.socket = socket.unwrap_or_else(|| opts.state_dir.join("serve.sock"));
    match serve::serve(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro submit --socket PATH [--client NAME] [--kernel NAME]
/// [--config mega|small] [--fast-bypass] [--keys N] [--key-bytes N]
/// [--seed N] [--wedge K] [--max-cycles N] [--sequential] [--cancel JOB]
/// [--status]`.
///
/// Submits one audit job to a running `repro serve` daemon (or cancels
/// a job / queries status), echoing every streamed line to stdout.
/// Exit codes: 0 = clean verdict (or ack), 3 = leaky verdict,
/// 4 = quarantined, 5 = cancelled, 6 = busy rejection, 1 = connection
/// or protocol error, 2 = usage error.
#[cfg(unix)]
fn submit_main(args: &[String]) -> ExitCode {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let mut socket: Option<std::path::PathBuf> = None;
    let mut request = Value::object().field("op", "submit");
    let mut client = "cli".to_string();
    let mut cancel_job: Option<String> = None;
    let mut status = false;
    let mut i = 0;
    while i < args.len() {
        let take_num = |i: &mut usize| -> usize {
            *i += 1;
            args.get(*i)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| fail("expected a number after the flag"))
        };
        let take_str = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| fail(&format!("expected a value after {flag}"))).clone()
        };
        match args[i].as_str() {
            "--socket" => socket = Some(take_str(&mut i, "--socket").into()),
            "--client" => client = take_str(&mut i, "--client"),
            "--kernel" => {
                let name = take_str(&mut i, "--kernel");
                if !ModexpVariant::ALL.iter().any(|v| v.name() == name) {
                    let known: Vec<&str> = ModexpVariant::ALL.iter().map(|v| v.name()).collect();
                    fail(&format!(
                        "unknown kernel `{name}` (expected one of {})",
                        known.join(", ")
                    ));
                }
                request = request.field("kernel", name);
            }
            "--config" => {
                let name = take_str(&mut i, "--config");
                if name != "mega" && name != "small" {
                    fail(&format!("unknown config `{name}` (expected mega or small)"));
                }
                request = request.field("config", name);
            }
            "--fast-bypass" => request = request.field("fast_bypass", true),
            "--keys" => match take_num(&mut i) {
                0 => fail("--keys must be at least 1"),
                n => request = request.field("keys", n),
            },
            "--key-bytes" => match take_num(&mut i) {
                0 => fail("--key-bytes must be at least 1"),
                n => request = request.field("key_bytes", n),
            },
            "--seed" => request = request.field("seed", take_num(&mut i) as u64),
            "--wedge" => request = request.field("wedge", take_num(&mut i)),
            "--max-cycles" => request = request.field("max_cycles", take_num(&mut i) as u64),
            "--sequential" => request = request.field("sequential", true),
            "--cancel" => cancel_job = Some(take_str(&mut i, "--cancel")),
            "--status" => status = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown submit flag `{other}`")),
        }
        i += 1;
    }
    let socket = socket.unwrap_or_else(|| fail("submit needs --socket PATH"));
    let request = if status {
        Value::object().field("op", "status").build()
    } else if let Some(job) = cancel_job {
        Value::object().field("op", "cancel").field("job", job).build()
    } else {
        request.field("client", client).build()
    };
    let mut stream = match UnixStream::connect(&socket) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("repro submit: cannot connect to {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = writeln!(stream, "{}", request.render_compact()) {
        eprintln!("repro submit: cannot send the request: {e}");
        return ExitCode::FAILURE;
    }
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            eprintln!("repro submit: cannot clone the stream: {e}");
            return ExitCode::FAILURE;
        }
    };
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("repro submit: stream read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{line}");
        let Ok(v) = json::parse(&line) else { continue };
        if v.get("schema").and_then(Value::as_str) != Some("microsampler-serve-v1") {
            continue;
        }
        match v.get("event").and_then(Value::as_str) {
            Some("busy") => return ExitCode::from(6),
            Some("error") => return ExitCode::FAILURE,
            Some("status") | Some("cancel-ack") => return ExitCode::SUCCESS,
            Some("verdict") => {
                return match v.get("status").and_then(Value::as_str) {
                    Some("done") => {
                        if v.get("leaky").and_then(Value::as_bool) == Some(true) {
                            ExitCode::from(3)
                        } else {
                            ExitCode::SUCCESS
                        }
                    }
                    Some("quarantined") => ExitCode::from(4),
                    Some("cancelled") => ExitCode::from(5),
                    _ => ExitCode::FAILURE,
                }
            }
            _ => {}
        }
    }
    eprintln!("repro submit: the daemon closed the stream without a verdict");
    ExitCode::FAILURE
}

/// Compares each result's static verdict against the checked-in baseline.
///
/// The baseline records verdicts only — they are deterministic and
/// scale-independent, unlike violation counts or dynamic statistics.
fn check_baseline(path: &std::path::Path, results: &[lint::LintResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let doc = json::parse(&text)
        .map_err(|e| format!("baseline {} is not valid JSON: {e}", path.display()))?;
    if doc.get("schema").and_then(Value::as_str) != Some("microsampler-lint-baseline-v1") {
        return Err(format!("baseline {} has an unexpected schema", path.display()));
    }
    let verdicts = doc
        .get("verdicts")
        .ok_or_else(|| format!("baseline {} lacks `verdicts`", path.display()))?;
    let mut mismatches = Vec::new();
    for r in results {
        match verdicts.get(&r.name).and_then(Value::as_str) {
            Some(expected) if expected == r.report.verdict() => {}
            Some(expected) => mismatches.push(format!(
                "{}: baseline says {expected}, analysis says {}",
                r.name,
                r.report.verdict()
            )),
            None => mismatches.push(format!("{}: missing from baseline", r.name)),
        }
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(format!("static verdicts diverge from baseline:\n  {}", mismatches.join("\n  ")))
    }
}

/// Atomically rewrites the lint baseline: verdicts for every analyzed
/// kernel, keyed and sorted by name, written to a temporary file in the
/// same directory and renamed into place so a crash or concurrent reader
/// never observes a half-written baseline.
fn write_baseline(path: &std::path::Path, results: &[lint::LintResult]) -> Result<(), String> {
    let mut sorted: Vec<&lint::LintResult> = results.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut verdicts = Value::object();
    for r in sorted {
        verdicts = verdicts.field(&r.name, r.report.verdict());
    }
    let doc = Value::object()
        .field("schema", "microsampler-lint-baseline-v1")
        .field("verdicts", verdicts.build())
        .build();
    let mut text = doc.render_pretty();
    text.push('\n');
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("lint-baseline.json"),
        std::process::id()
    ));
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot rename {} to {}: {e}", tmp.display(), path.display())
    })
}

fn usage() {
    eprintln!(
        "usage: repro <experiment>... [--keys N] [--key-bytes N] [--reps N] [--trials N] \
         [--seed N] [--threads N] [--full] [--json DIR] [--faults SPEC] [--journal FILE] \
         [--resume FILE] [--retries N] [--trial-timeout SECS]"
    );
    eprintln!(
        "       repro lint [--all | <kernel>...] [--static] [--sarif FILE] [--baseline FILE] \
         [--update-baseline] [--spec-depth N] [--no-spec] [--trials N] [--seed N] [--threads N]"
    );
    eprintln!(
        "       repro profile [--all | <kernel>...] [--keys N] [--key-bytes N] [--seed N] \
         [--threads N] [--out FILE] [--trace-out FILE]"
    );
    eprintln!(
        "       repro audit [--trials N] [--seed N] [--threads N] [--faults SPEC] \
         [--full-budget] [--out FILE] [--stats-out FILE] [--robustness] \
         [--noise L1,L2,...] [--stability-out FILE]"
    );
    eprintln!(
        "       repro serve --state DIR [--socket PATH] [--queue N] [--per-client N] \
         [--job-timeout-ms MS] [--job-retries N] [--backoff-ms MS] [--threads N]"
    );
    eprintln!(
        "       repro submit --socket PATH [--client NAME] [--kernel NAME] \
         [--config mega|small] [--fast-bypass] [--keys N] [--key-bytes N] [--seed N] \
         [--wedge K] [--max-cycles N] [--sequential] [--cancel JOB] [--status]"
    );
    eprintln!("experiments: table1-table7 fig2-fig10 sensitivity all");
    eprintln!("--json DIR writes a machine-readable run report per experiment");
    eprintln!(
        "--faults SPEC injects microarchitectural faults into every trial; SPEC is \
         comma-separated key=value with keys seed, squash, evict, mshr, drop, flip \
         (rates per 64k cycles, max 65536) and wedge=K (deadlock trial K)"
    );
    eprintln!(
        "--journal FILE appends one JSONL record per finished trial; --resume FILE \
         restores completed trials from a journal and re-runs only the missing ones \
         (refused with exit 2 if the journal's FaultConfig rates or fault seed differ \
         from the current flags)"
    );
    eprintln!(
        "--sequential judges every sweep against an anytime-valid confidence sequence \
         and stops as soon as it closes, appending a microsampler-stop-v1 stopping \
         trace to the journal"
    );
    eprintln!(
        "audit runs the 27 Table V primitives under adaptive sequential early stopping \
         (freed budget reflows to undecided primitives) and writes the \
         microsampler-stats-bench-v1 trials-to-verdict benchmark; --robustness replays \
         early-stop vs full-budget across --noise fault levels and writes \
         microsampler-stability-v1 stability curves, exiting 3 on any UNSTABLE verdict"
    );
    eprintln!(
        "--retries N retries failing trials up to N times (default 1); \
         --trial-timeout SECS quarantines trials exceeding the wall-clock budget. \
         Any of these flags routes trials through the isolation harness: failing \
         trials are quarantined (listed under `trials` in --json reports) instead \
         of aborting the sweep"
    );
    eprintln!(
        "--threads N sizes the worker pool; precedence: --threads, then the \
         MICROSAMPLER_THREADS env var, then all available cores"
    );
    eprintln!(
        "lint statically checks kernels for constant-time violations, including \
         transient (CT-SPEC) leaks down mispredicted branch arms; --all also \
         cross-validates against the dynamic audit (skip with --static), both \
         under MegaBoom and under adversarial speculation"
    );
    eprintln!(
        "lint --spec-depth N bounds the transient window in instructions (default: \
         the MegaBoom ROB size); --no-spec disables speculative taint; \
         --update-baseline atomically rewrites the --baseline file (default \
         lint-baseline.json) with current verdicts, sorted by name"
    );
    eprintln!(
        "lint exit codes: 0 = clean, 3 = architectural violations found, 4 = only \
         transient (CT-SPEC) violations found, 1 = --baseline verdict mismatch, \
         2 = usage error"
    );
    eprintln!(
        "profile sweeps modexp kernels with the pipeline profiler and writes the \
         BENCH_sim.json throughput baseline (--out, default BENCH_sim.json); \
         --trace-out FILE exports a Chrome trace-event JSON (ui.perfetto.dev)"
    );
    eprintln!(
        "serve runs the leakage-audit daemon on a unix socket: submitted jobs are \
         WAL-logged, trial journals are content-addressed (resubmitting an \
         unchanged job replays for free), kill -9 recovers bit-identically on \
         restart, and SIGTERM drains in-flight jobs before exiting 0"
    );
    eprintln!(
        "submit exit codes: 0 = clean verdict/ack, 3 = leaky, 4 = quarantined, \
         5 = cancelled, 6 = busy (queue-full, client-quota, or shutting-down), \
         1 = connection/protocol error, 2 = usage error"
    );
}

fn scale_to_json(s: &Scale) -> Value {
    Value::object()
        .field("keys", s.keys)
        .field("key_bytes", s.key_bytes)
        .field("memcmp_reps", s.memcmp_reps)
        .field("primitive_trials", s.primitive_trials)
        .field("seed", s.seed)
        .build()
}

/// Runs one experiment, prints its paper-style output, and returns the
/// structured result for the `--json` run report.
fn run(which: &str, scale: &Scale) -> Value {
    match which {
        "table1" => {
            println!("\n== Table I: leakage-detection tool comparison (qualitative) ==");
            let rows = exp::table1();
            for row in &rows {
                println!(
                    "{:<20} {:<26} {:<20} {:<10} {:<12}",
                    row[0], row[1], row[2], row[3], row[4]
                );
            }
            Value::Array(rows.iter().map(|row| Value::array(row.iter().copied())).collect())
        }
        "fig2" => {
            println!("\n== Fig 2: SQ-ADDR iteration snapshots (ME-V1-MV) ==");
            let snapshots = exp::fig2(scale);
            for (label, rows) in &snapshots {
                println!(
                    "key bit = {label} ({} cycles total; empty-queue cycles elided):",
                    rows.len()
                );
                for (cycle, row) in rows.iter().enumerate() {
                    if row.iter().all(|&v| v == 0) {
                        continue;
                    }
                    let cells: Vec<String> = row
                        .iter()
                        .take(8)
                        .map(|&v| if v == 0 { "-".into() } else { format!("{v:#x}") })
                        .collect();
                    println!("  cycle +{cycle:<3} | {}", cells.join(" "));
                }
            }
            Value::Array(
                snapshots
                    .iter()
                    .map(|(label, rows)| {
                        Value::object().field("label", *label).field("cycles", rows.len()).build()
                    })
                    .collect(),
            )
        }
        "table2" => {
            println!("\n== Table II: contingency table for SQ-ADDR (SAM-CT-CMOV) ==");
            let t = exp::table2(scale);
            println!("{t}");
            let assoc = t.association();
            println!("{assoc}");
            Value::object()
                .field("classes", t.class_count())
                .field("categories", t.category_count())
                .field("total", t.total())
                .field("association", association_to_json(&assoc))
                .build()
        }
        "table3" => {
            println!("\n== Table III: BOOM core configurations ==");
            let (mega, small) = exp::table3();
            for c in [&mega, &small] {
                println!(
                    "{:<10} fetch/dec/iss={}/{}/{} ROB={} PRF={} LDQ/STQ={}/{} LFB={} \
                     bpred={} L1D={}x{} mshr={} tlb={} prefetcher={:?}",
                    c.name,
                    c.fetch_width,
                    c.decode_width,
                    c.issue_width,
                    c.rob_entries,
                    c.prf_regs,
                    c.ldq_entries,
                    c.stq_entries,
                    c.lfb_entries,
                    c.bpred_entries,
                    c.l1d.sets,
                    c.l1d.ways,
                    c.l1d.mshrs,
                    c.tlb_entries,
                    c.prefetcher,
                );
            }
            Value::array([mega.name, small.name])
        }
        "table4" => {
            println!("\n== Table IV: tracked microarchitectural units ==");
            let units = exp::table4();
            for u in &units {
                println!("  {}", u.name());
            }
            Value::array(units.iter().map(|u| u.name()))
        }
        "table5" => {
            println!("\n== Table V: OpenSSL constant-time primitives ==");
            println!(
                "{:<34} {:>5} {:>6} {:>7} {:>6} {:>6}  dominant stall",
                "primitive", "func", "leak", "maxV", "esc", "ipc"
            );
            let rows = exp::table5(scale);
            for r in &rows {
                println!(
                    "{:<34} {:>5} {:>6} {:>7.3} {:>6} {:>6.3}  {}",
                    r.name,
                    if r.functional_ok { "ok" } else { "FAIL" },
                    if r.leak_identified { "LEAK" } else { "-" },
                    r.max_v,
                    r.escalation_rounds,
                    r.ipc,
                    r.dominant_stall.as_deref().unwrap_or("-"),
                );
                if let Some(e) = &r.error {
                    println!("{:<34} error: {e}", "");
                }
            }
            let flagged = rows.iter().filter(|r| r.leak_identified).count();
            println!("flagged: {flagged}/27 (paper: 0/27; CRYPTO_memcmp — see fig10 — leaks)");
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object()
                            .field("primitive", r.name.as_str())
                            .field("functional_ok", r.functional_ok)
                            .field("leak_identified", r.leak_identified)
                            .field("max_v", r.max_v)
                            .field("escalation_rounds", r.escalation_rounds)
                            .field("ipc", r.ipc)
                            .field(
                                "dominant_stall",
                                r.dominant_stall.as_deref().map_or(Value::Null, Value::from),
                            )
                            .field("error", r.error.as_deref().map_or(Value::Null, Value::from))
                            .build()
                    })
                    .collect(),
            )
        }
        "table6" => {
            println!("\n== Table VI: MicroSampler stage breakdown (ME-V1-CV, MegaBoom) ==");
            let t = exp::table6(scale);
            print_table6(&t);
            table6_to_json(&t)
        }
        "table7" => {
            println!("\n== Table VII: scalability vs XENON ==");
            let t = exp::table7(scale);
            println!("SmallBoom ({} entries): {:?}", t.small_size, t.small.total());
            println!("MegaBoom  ({} entries): {:?}", t.mega_size, t.mega.total());
            println!("MicroSampler: {:.1}x size / {:.1}x time", t.size_ratio(), t.time_ratio());
            println!(
                "XENON (reported): {:.0}x size / {:.0}x time (2.5s ALU -> 14min SCARV)",
                exp::XENON_SIZE_RATIO,
                exp::XENON_TIME_RATIO
            );
            Value::object()
                .field("small", table6_to_json(&t.small))
                .field("mega", table6_to_json(&t.mega))
                .field("small_size", t.small_size)
                .field("mega_size", t.mega_size)
                .field("size_ratio", t.size_ratio())
                .field("time_ratio", t.time_ratio())
                .build()
        }
        "fig3" => {
            let r = exp::fig3(scale);
            print_v_chart("Fig 3: ME-V1-CV Cramer's V per unit", &r.v_series());
            print_leaks(&r);
            r.to_json()
        }
        "fig4" => {
            let r = exp::fig4(scale);
            print_v_chart("Fig 4: ME-V1-MV Cramer's V per unit", &r.v_series());
            print_leaks(&r);
            let rp = exp::fig4_with_pressure(scale);
            print_v_chart("Fig 4 (with cache pressure): miss-path units light up", &rp.v_series());
            Value::object()
                .field("report", r.to_json())
                .field("with_pressure", rp.to_json())
                .build()
        }
        "fig5" => {
            println!("\n== Fig 5: SQ-ADDR feature uniqueness for ME-V1-MV ==");
            let u = exp::fig5(scale);
            for (class, feats) in &u.unique {
                print!("class bit={class}: {} unique addresses:", feats.len());
                for f in feats.iter().take(8) {
                    print!(" {f:#x}");
                }
                println!();
            }
            println!("shared addresses: {}", u.shared.len());
            Value::object()
                .field("unit", u.unit.name())
                .field("shared", u.shared.len())
                .field(
                    "unique",
                    Value::Array(
                        u.unique
                            .iter()
                            .map(|(class, feats)| {
                                Value::object()
                                    .field("class", *class)
                                    .field(
                                        "addresses",
                                        Value::Array(
                                            feats
                                                .iter()
                                                .map(|f| format!("{f:#x}").into())
                                                .collect(),
                                        ),
                                    )
                                    .build()
                            })
                            .collect(),
                    ),
                )
                .build()
        }
        "fig6" => {
            let f = exp::fig6(scale);
            print_cycle_histogram(
                "Fig 6a: iteration cycles, both buffers uninitialized",
                &f.cold.0,
                &f.cold.1,
            );
            print_cycle_histogram(
                "Fig 6b: iteration cycles, dst initialized (warm)",
                &f.warm.0,
                &f.warm.1,
            );
            let classes = |pair: &(Vec<u64>, Vec<u64>)| {
                Value::object()
                    .field("bit0_cycles", Value::array(pair.0.iter().copied()))
                    .field("bit1_cycles", Value::array(pair.1.iter().copied()))
                    .build()
            };
            Value::object().field("cold", classes(&f.cold)).field("warm", classes(&f.warm)).build()
        }
        "fig7" => {
            let r = exp::fig7(scale);
            print_v_chart("Fig 7: ME-V2-Safe Cramer's V per unit", &r.v_series());
            print_leaks(&r);
            r.to_json()
        }
        "fig9" => {
            let r = exp::fig9(scale);
            print_v_chart("Fig 9: ME-V2-FB (fast bypass) with timing", &r.v_series());
            print_v_chart("Fig 9: ME-V2-FB timing removed", &r.v_series_timeless());
            print_leaks(&r);
            r.to_json()
        }
        "sensitivity" => {
            println!("\n== Sensitivity: verdicts vs sample size (§VII-D) ==");
            println!(
                "{:>5} {:>6} | {:>9} {:>8} | {:>8} {:>7} {:>10}",
                "keys", "iters", "leaky maxV", "flagged", "safe maxV", "flagged", "needs more"
            );
            let points = exp::sensitivity(scale);
            for p in &points {
                println!(
                    "{:>5} {:>6} | {:>10.3} {:>8} | {:>9.3} {:>7} {:>10}",
                    p.keys,
                    p.iterations,
                    p.leaky_max_v,
                    p.leaky_flagged,
                    p.safe_max_v,
                    p.safe_false_positive,
                    p.safe_needs_more,
                );
            }
            Value::Array(
                points
                    .iter()
                    .map(|p| {
                        Value::object()
                            .field("keys", p.keys)
                            .field("iterations", p.iterations)
                            .field("leaky_max_v", p.leaky_max_v)
                            .field("leaky_flagged", p.leaky_flagged)
                            .field("safe_max_v", p.safe_max_v)
                            .field("safe_false_positive", p.safe_false_positive)
                            .field("safe_needs_more", p.safe_needs_more)
                            .build()
                    })
                    .collect(),
            )
        }
        "fig10" => {
            let f = exp::fig10(scale);
            print_v_chart("Fig 10: CT-MEM-CMP Cramer's V per unit", &f.report.v_series());
            println!(
                "call patterns in CRYPTO_memcmp windows: inequal-only={} equal-only={} BOTH={} neither={}",
                f.patterns.inequal_only, f.patterns.equal_only, f.patterns.both, f.patterns.neither
            );
            println!(
                "mispredicts={} ROB-PC ordering mismatches={} leak identified: {}",
                f.mispredicts, f.ordering_mismatches, f.leak_identified
            );
            Value::object()
                .field("leak_identified", f.leak_identified)
                .field(
                    "patterns",
                    Value::object()
                        .field("inequal_only", f.patterns.inequal_only)
                        .field("both", f.patterns.both)
                        .field("equal_only", f.patterns.equal_only)
                        .field("neither", f.patterns.neither)
                        .build(),
                )
                .field("mispredicts", f.mispredicts)
                .field("ordering_mismatches", f.ordering_mismatches)
                .field("report", f.report.to_json())
                .build()
        }
        other => fail(&format!("unknown experiment `{other}`")),
    }
}

fn print_leaks(r: &microsampler_core::AnalysisReport) {
    let leaks: Vec<&str> = r.leaky_units().iter().map(|u| u.unit.name()).collect();
    println!("flagged units: {leaks:?}");
}

fn print_table6(t: &exp::Table6) {
    println!("1- simulate with trace logging     {:>10.2?}", t.simulate);
    println!("2- parse traces into snapshots     {:>10.2?}", t.parse);
    println!("3- Cramer's V for all structures   {:>10.2?}", t.correlate);
    println!("4- feature extraction              {:>10.2?}", t.extract);
    println!("total                              {:>10.2?}", t.total());
    println!("({} iterations, {} simulated cycles)", t.iterations, t.cycles);
}

/// Table VI as JSON. Stage keys are ordered exactly like the printed
/// breakdown (and like the children of the `table6` span this struct was
/// derived from).
fn table6_to_json(t: &exp::Table6) -> Value {
    let stages = json::Value::object()
        .field("simulate_ns", t.simulate.as_nanos() as u64)
        .field("parse_ns", t.parse.as_nanos() as u64)
        .field("correlate_ns", t.correlate.as_nanos() as u64)
        .field("extract_ns", t.extract.as_nanos() as u64)
        .build();
    Value::object()
        .field("stages", stages)
        .field("total_ns", t.total().as_nanos() as u64)
        .field("iterations", t.iterations)
        .field("cycles", t.cycles)
        .build()
}
