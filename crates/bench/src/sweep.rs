//! Crash-resilient sweep harness: fault-injected trials, per-trial
//! isolation with bounded retry, and a JSONL journal enabling
//! checkpoint/resume (`repro --resume`).
//!
//! The harness wraps the same per-key modexp trials that
//! [`run_modexp_iterations`](crate::run_modexp_iterations) fans out, but
//! runs each one behind [`microsampler_par::map_isolated`]: a trial that
//! deadlocks, exhausts its cycle budget, or panics is *quarantined* — the
//! sweep completes with partial results and the quarantine list flows into
//! the `repro --json` run report instead of sinking hours of work.
//!
//! # Journal format
//!
//! The journal is append-only JSONL: one `microsampler-trial-v1` object
//! per line, written as each trial finishes (so a crash loses at most the
//! in-flight trials). Completed lines carry the trial's iteration
//! snapshots with per-unit hashes and feature orders — everything the
//! analyzer needs — but not raw matrices; quarantined lines carry the
//! failure class, message, and attempt count. On resume, completed trials
//! are restored from the journal and only the missing ones re-run;
//! quarantined trials are retried.

use microsampler_core::{SeqConfig, SequentialAnalyzer, StopTrace, STOP_SCHEMA};
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{self, ModexpKernel, ModexpVariant};
use microsampler_obs::{diag, diag_warn, json, Value};
use microsampler_par::{CancelToken, FailureClass, IsolationPolicy, RunControl, TrialOutcome};
use microsampler_sim::{
    CoreConfig, FaultConfig, IterationTrace, PipelineStats, TraceConfig, UnitTrace,
};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema tag on every trial journal line.
pub const TRIAL_SCHEMA: &str = "microsampler-trial-v1";

/// Schema tag on progress-heartbeat lines interleaved into the journal.
pub const HEARTBEAT_SCHEMA: &str = "microsampler-heartbeat-v1";

/// Schema tag on the journal-header line (first line of a fresh journal)
/// carrying the sweep config hash that `--resume` validates.
pub const HEADER_SCHEMA: &str = "microsampler-journal-header-v1";

/// Harness-wide sweep configuration, installed by the `repro` CLI via
/// [`set_options`] and consulted by
/// [`run_modexp_iterations`](crate::run_modexp_iterations). The default
/// (no options installed) preserves the legacy fail-fast panic path
/// bit-for-bit.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Fault-injection rates applied to every trial (re-seeded per trial
    /// and per attempt via [`FaultConfig::for_trial`]).
    pub faults: Option<FaultConfig>,
    /// Trial index whose core is wedged at [`microsampler_sim::WEDGE_CYCLE`]
    /// (a deliberate deadlock, for exercising quarantine end-to-end).
    pub wedge_trial: Option<usize>,
    /// Run trials behind the isolation boundary even with no faults or
    /// journal configured.
    pub isolate: bool,
    /// Retry/timeout policy for isolated trials.
    pub policy: IsolationPolicy,
    /// Append-only JSONL trial journal.
    pub journal: Option<PathBuf>,
    /// Restore completed trials from the journal before running.
    pub resume: bool,
    /// Per-trial cycle budget override (default: the kernel's own
    /// [`modexp::cycle_budget`]).
    pub max_cycles: Option<u64>,
    /// Cooperative cancellation: once the token latches, trials that have
    /// not started are skipped (not journaled) and counted under
    /// [`SweepOutcome::cancelled`].
    pub cancel: Option<CancelToken>,
    /// Per-sweep wall-clock deadline (`repro serve` job timeouts): trials
    /// not started before it are skipped like cancelled ones.
    pub deadline: Option<std::time::Instant>,
    /// Sequential (anytime) auditing: judge a confidence sequence at
    /// doubling key-count look points and stop the sweep as soon as it
    /// closes, recording the skipped tail as
    /// [`TrialEventKind::EarlyStopped`] and the stopping trace in
    /// [`SweepOutcome::stop`] (and the journal).
    pub sequential: Option<SeqConfig>,
}

impl SweepOptions {
    /// Whether any knob requires routing trials through the isolation
    /// harness instead of the legacy fail-fast path.
    pub fn wants_isolation(&self) -> bool {
        self.isolate
            || self.faults.is_some()
            || self.wedge_trial.is_some()
            || self.journal.is_some()
            || self.resume
            || self.max_cycles.is_some()
            || self.cancel.is_some()
            || self.deadline.is_some()
            || self.sequential.is_some()
    }
}

static OPTIONS: Mutex<Option<SweepOptions>> = Mutex::new(None);

/// Installs (or clears) the process-wide sweep options.
pub fn set_options(opts: Option<SweepOptions>) {
    *OPTIONS.lock().unwrap_or_else(|p| p.into_inner()) = opts;
}

/// The currently installed sweep options, if any.
pub fn options() -> Option<SweepOptions> {
    OPTIONS.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// What happened to one trial, for the run report's `trials` section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrialEventKind {
    /// Ran to completion this invocation.
    Completed,
    /// Restored from the resume journal without re-running.
    Restored,
    /// Exhausted its attempt budget and was dropped from the pool.
    Quarantined,
    /// Skipped because the sweep was cancelled or hit its deadline; will
    /// re-run on the next resume (never journaled as finished).
    Cancelled,
    /// Skipped because the confidence sequence closed before this trial
    /// was needed. Unlike cancellation this is a *finished* sweep: the
    /// verdict is final and the trial only runs again if a later sweep
    /// asks for more budget.
    EarlyStopped,
}

/// One entry in the per-run trial event registry.
#[derive(Clone, Debug)]
pub struct TrialEvent {
    /// Stable trial id (also the journal key).
    pub id: String,
    /// Outcome kind.
    pub kind: TrialEventKind,
    /// Failure class for quarantined trials.
    pub class: Option<FailureClass>,
    /// Failure message for quarantined trials.
    pub message: Option<String>,
    /// Attempts made (0 for restored trials).
    pub attempts: u32,
}

static EVENTS: Mutex<Vec<TrialEvent>> = Mutex::new(Vec::new());

/// Clears the trial event registry (call per experiment).
pub fn reset_events() {
    EVENTS.lock().unwrap_or_else(|p| p.into_inner()).clear();
}

/// Appends one event to the registry.
pub fn record_event(event: TrialEvent) {
    EVENTS.lock().unwrap_or_else(|p| p.into_inner()).push(event);
}

/// Snapshot of the registry.
pub fn events() -> Vec<TrialEvent> {
    EVENTS.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Renders the registry for the run report: completed/restored counts
/// plus the full quarantine list (stable schema: `completed`, `restored`,
/// `quarantined` with `id`/`class`/`message`/`attempts` each).
pub fn events_to_json() -> Value {
    let events = events();
    let count = |k: TrialEventKind| events.iter().filter(|e| e.kind == k).count();
    let quarantined: Vec<Value> = events
        .iter()
        .filter(|e| e.kind == TrialEventKind::Quarantined)
        .map(|e| {
            Value::object()
                .field("id", e.id.as_str())
                .field("class", e.class.map_or("unknown", FailureClass::name))
                .field("message", e.message.as_deref().unwrap_or(""))
                .field("attempts", e.attempts)
                .build()
        })
        .collect();
    Value::object()
        .field("completed", count(TrialEventKind::Completed))
        .field("restored", count(TrialEventKind::Restored))
        .field("cancelled", count(TrialEventKind::Cancelled))
        .field("early_stopped", count(TrialEventKind::EarlyStopped))
        .field("quarantined", Value::Array(quarantined))
        .build()
}

/// A trial dropped from the pooled results after exhausting its retries.
#[derive(Clone, Debug)]
pub struct QuarantinedTrial {
    /// Stable trial id.
    pub id: String,
    /// How the final attempt failed.
    pub class: FailureClass,
    /// Error or panic message from the final attempt.
    pub message: String,
    /// Attempts made.
    pub attempts: u32,
}

/// Result of [`run_modexp_sweep`].
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Pooled iterations from completed and restored trials, in key order.
    pub iterations: Vec<IterationTrace>,
    /// Trials run to completion this invocation.
    pub completed: usize,
    /// Trials restored from the resume journal.
    pub restored: usize,
    /// Trials skipped by cancellation or the sweep deadline (they remain
    /// unjournaled, so a resume re-runs exactly these).
    pub cancelled: usize,
    /// Trials skipped because the confidence sequence closed first
    /// (sequential sweeps only).
    pub early_stopped: usize,
    /// Trials dropped after exhausting their retries.
    pub quarantined: Vec<QuarantinedTrial>,
    /// Stopping trace for sequential sweeps (`None` for fixed-budget).
    pub stop: Option<StopTrace>,
}

fn unit_to_json(u: &UnitTrace) -> Value {
    Value::object()
        .field("hash", u.hash)
        .field("hash_timeless", u.hash_timeless)
        .field("cycle_rows", u.cycle_rows)
        .field("order", Value::array(u.order.iter().copied()))
        .build()
}

fn iteration_to_json(it: &IterationTrace) -> Value {
    Value::object()
        .field("label", it.label)
        .field("start_cycle", it.start_cycle)
        .field("end_cycle", it.end_cycle)
        .field("dropped_cycles", it.dropped_cycles)
        .field("pipeline", it.pipeline.to_json())
        .field("units", Value::Array(it.units.iter().map(unit_to_json).collect()))
        .build()
}

/// One completed journal line (compact JSON, no trailing newline).
fn completed_line(id: &str, iterations: &[IterationTrace]) -> String {
    Value::object()
        .field("schema", TRIAL_SCHEMA)
        .field("id", id)
        .field("status", "completed")
        .field("iterations", Value::Array(iterations.iter().map(iteration_to_json).collect()))
        .build()
        .render_compact()
}

/// One quarantined journal line (compact JSON, no trailing newline).
fn quarantined_line(q: &QuarantinedTrial) -> String {
    Value::object()
        .field("schema", TRIAL_SCHEMA)
        .field("id", q.id.as_str())
        .field("status", "quarantined")
        .field("class", q.class.name())
        .field("message", q.message.as_str())
        .field("attempts", q.attempts)
        .build()
        .render_compact()
}

/// Content hash of the sweep knobs that change what a journaled trial's
/// *data means*: the [`FaultConfig`] rates and fault seed, which perturb
/// the recorded traces themselves. Trial ids already pin the variant,
/// core config, key width, key seed, and key index, and knobs that only
/// decide whether a trial finishes (`wedge_trial`, `max_cycles`) leave
/// completed records bit-identical — so raising `--keys`, changing
/// thread counts, or lifting a wedge keeps the hash stable, while
/// resuming a journal recorded under different fault noise is rejected
/// rather than silently pooling incomparable trials.
pub fn options_config_hash(opts: &SweepOptions) -> String {
    let f = opts.faults.unwrap_or_default();
    let canonical = Value::object()
        .field("fault_seed", f.seed)
        .field("squash_per_64k", f.squash_per_64k as u64)
        .field("evict_per_64k", f.evict_per_64k as u64)
        .field("mshr_stall_per_64k", f.mshr_stall_per_64k as u64)
        .field("drop_row_per_64k", f.drop_row_per_64k as u64)
        .field("bitflip_per_64k", f.bitflip_per_64k as u64)
        .build()
        .render_compact();
    let k0 = 0x4d69_6372_6f53_616d; // "MicroSam", matching the serve job key
    let k1 = 0x6a6f_7572_6e61_6c21; // "journal!"
    format!("{:016x}", microsampler_stats::siphash24(k0, k1, canonical.as_bytes()))
}

/// One journal-header line (compact JSON, no trailing newline). Written
/// as the first line of a fresh journal; resumes compare its config hash
/// against the resuming sweep's.
fn header_line(config_hash: &str) -> String {
    Value::object()
        .field("schema", HEADER_SCHEMA)
        .field("config_hash", config_hash)
        .build()
        .render_compact()
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn unit_from_json(v: &Value) -> Result<UnitTrace, String> {
    let order: Vec<u64> = v
        .get("order")
        .and_then(Value::as_array)
        .ok_or("unit lacks `order`")?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| "non-integer feature in `order`".to_string()))
        .collect::<Result<_, _>>()?;
    Ok(UnitTrace {
        hash: need_u64(v, "hash")?,
        hash_timeless: need_u64(v, "hash_timeless")?,
        // The tracer maintains `features == set(order)`; rebuild instead
        // of journaling both.
        features: order.iter().copied().collect(),
        order,
        rows: None,
        cycle_rows: need_u64(v, "cycle_rows")?,
    })
}

fn iteration_from_json(v: &Value) -> Result<IterationTrace, String> {
    let units = v
        .get("units")
        .and_then(Value::as_array)
        .ok_or("iteration lacks `units`")?
        .iter()
        .map(unit_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(IterationTrace {
        label: need_u64(v, "label")?,
        start_cycle: need_u64(v, "start_cycle")?,
        end_cycle: need_u64(v, "end_cycle")?,
        dropped_cycles: need_u64(v, "dropped_cycles")?,
        // Journals written before the profiler existed lack this field;
        // restore them with zeroed counters.
        pipeline: v.get("pipeline").map(PipelineStats::from_json).unwrap_or_default(),
        units,
    })
}

/// Parsed journal contents: completed trials by id. Quarantined lines are
/// validated but not restored — a resumed run retries them.
#[derive(Clone, Debug, Default)]
pub struct JournalState {
    /// Completed trials: id → iteration snapshots.
    pub completed: BTreeMap<String, Vec<IterationTrace>>,
    /// Config hash from the journal header, when the journal has one
    /// (journals written before the header existed restore as `None`
    /// and resume without validation).
    pub config_hash: Option<String>,
}

/// Loads a trial journal written by a previous sweep.
///
/// A crash (or `kill -9`) mid-append can tear the final line: the file
/// then ends with a partial record and no trailing newline. Such a torn
/// tail is skipped with a diagnostic — the trial it belonged to simply
/// re-runs on resume — while malformed *complete* lines (newline-
/// terminated) remain hard errors, since they indicate corruption rather
/// than an interrupted append.
///
/// # Errors
///
/// Returns a message naming the offending line for unreadable files,
/// invalid JSON, schema mismatches, and malformed trial records.
pub fn load_journal(path: &Path) -> Result<JournalState, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let mut state = JournalState::default();
    let last_idx = text.lines().count().saturating_sub(1);
    let torn_tail_possible = !text.is_empty() && !text.ends_with('\n');
    for (idx, line) in text.lines().enumerate() {
        let context = |msg: String| format!("journal {} line {}: {msg}", path.display(), idx + 1);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_journal_line(line, &mut state) {
            Ok(()) => {}
            Err(msg) if torn_tail_possible && idx == last_idx => {
                diag_warn!(
                    "journal {} line {}: skipping torn trailing record \
                     (crash mid-append?): {msg}",
                    path.display(),
                    idx + 1
                );
            }
            Err(msg) => return Err(context(msg)),
        }
    }
    Ok(state)
}

/// Parses and applies one journal line to `state`.
fn parse_journal_line(line: &str, state: &mut JournalState) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let schema = v.get("schema").and_then(Value::as_str);
    if schema == Some(HEARTBEAT_SCHEMA) {
        // Progress heartbeats interleave with trial lines; they carry
        // no restorable state.
        return Ok(());
    }
    if schema == Some(HEADER_SCHEMA) {
        let hash =
            v.get("config_hash").and_then(Value::as_str).ok_or("header missing `config_hash`")?;
        state.config_hash = Some(hash.to_owned());
        return Ok(());
    }
    if schema == Some(STOP_SCHEMA) {
        // Stopping traces are statistical receipts for report consumers;
        // they carry no restorable trial state.
        return Ok(());
    }
    if schema != Some(TRIAL_SCHEMA) {
        return Err(format!("expected schema {TRIAL_SCHEMA}"));
    }
    let id = v.get("id").and_then(Value::as_str).ok_or("missing `id`")?.to_owned();
    match v.get("status").and_then(Value::as_str) {
        Some("completed") => {
            let iterations = v
                .get("iterations")
                .and_then(Value::as_array)
                .ok_or("missing `iterations`")?
                .iter()
                .map(iteration_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            // Later lines win: a re-run trial supersedes its older
            // journal entry.
            state.completed.insert(id, iterations);
        }
        Some("quarantined") => {}
        _ => return Err("missing or unknown `status`".to_string()),
    }
    Ok(())
}

/// Repairs a journal's final line before the file is reopened for append.
///
/// A crash, `kill -9`, or per-job timeout mid-append leaves the file
/// without a trailing newline. Appending straight after that would glue
/// the next record onto the remnant, corrupting *both* lines; instead, a
/// complete-but-unterminated final record gets its newline back, and a
/// truncated one is dropped with a warning — the same torn-tail rule
/// [`load_journal`] applies on read, here made durable so the append
/// path stays line-oriented.
fn compact_torn_tail(path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else { return };
    if text.is_empty() || text.ends_with('\n') {
        return;
    }
    let tail_start = text.rfind('\n').map_or(0, |i| i + 1);
    let tail = text[tail_start..].trim();
    let mut scratch = JournalState::default();
    if !tail.is_empty() && parse_journal_line(tail, &mut scratch).is_ok() {
        // The record is whole; only its newline was lost.
        let done = File::options().append(true).open(path).and_then(|mut f| f.write_all(b"\n"));
        if let Err(e) = done {
            diag_warn!("journal {}: cannot terminate final record: {e}", path.display());
        }
        return;
    }
    diag_warn!(
        "journal {}: dropping torn trailing record ({} bytes) left by an interrupted append",
        path.display(),
        text.len() - tail_start
    );
    let done = File::options().write(true).open(path).and_then(|f| f.set_len(tail_start as u64));
    if let Err(e) = done {
        diag_warn!("journal {}: cannot drop torn record: {e}", path.display());
    }
}

/// Key-count look points for a sequential sweep over `n_keys` keys:
/// doubling boundaries from `max(n_keys/8, 1)`, always ending at
/// `n_keys`. An early-stop run and a full-budget run therefore share
/// the same look prefix, which is what makes the verdict-identity
/// guarantee checkable.
pub fn look_points(n_keys: usize) -> Vec<usize> {
    let mut points = Vec::new();
    if n_keys == 0 {
        return points;
    }
    let mut bound = (n_keys / 8).max(1);
    while bound < n_keys {
        points.push(bound);
        bound *= 2;
    }
    points.push(n_keys);
    points
}

/// Deterministic pooled-budget allocator for the sequential audit
/// (`repro audit`): hands each still-undecided item doubling trial
/// chunks out of a shared pool, so budget freed by early-stopped items
/// reflows to the borderline ones.
///
/// Grants depend only on `(n_items, per_item)` and the sequence of
/// [`retire`](AdaptiveAllocator::retire) calls between rounds — never on
/// timing or thread count — so re-runs reproduce the same allocation. A
/// run in which nothing retires grants every item exactly `per_item`
/// trials (chunks of `per_item/8, per_item/8, per_item/4, per_item/2`),
/// making the fixed-budget audit a special case of the adaptive one.
pub struct AdaptiveAllocator {
    chunk0: usize,
    pool: usize,
    spent: Vec<usize>,
    alive: Vec<bool>,
}

impl AdaptiveAllocator {
    /// A pool of `n_items * per_item` trials over `n_items` items.
    pub fn new(n_items: usize, per_item: usize) -> AdaptiveAllocator {
        AdaptiveAllocator {
            chunk0: (per_item / 8).max(1),
            pool: n_items * per_item,
            spent: vec![0; n_items],
            alive: vec![true; n_items],
        }
    }

    /// Grants for one round, in item order: an item's next chunk doubles
    /// its spend (`max(spent, chunk0)`), clamped to its fair share of
    /// the remaining pool. Retired items (and an exhausted pool) grant 0.
    pub fn round(&mut self) -> Vec<usize> {
        let alive_count = self.alive.iter().filter(|a| **a).count();
        let mut grants = vec![0; self.spent.len()];
        if alive_count == 0 {
            return grants;
        }
        let share = self.pool / alive_count;
        for (i, spent) in self.spent.iter_mut().enumerate() {
            if !self.alive[i] {
                continue;
            }
            let grant = (*spent).max(self.chunk0).min(share).min(self.pool);
            self.pool -= grant;
            *spent += grant;
            grants[i] = grant;
        }
        grants
    }

    /// Stops granting to item `i`; its unused share stays in the pool.
    pub fn retire(&mut self, i: usize) {
        self.alive[i] = false;
    }

    /// Trials granted to item `i` so far.
    pub fn spent(&self, i: usize) -> usize {
        self.spent[i]
    }

    /// Trials left in the shared pool.
    pub fn remaining(&self) -> usize {
        self.pool
    }
}

fn append_line(journal: &Mutex<File>, line: &str) {
    let mut file = journal.lock().unwrap_or_else(|p| p.into_inner());
    if let Err(e) = writeln!(file, "{line}") {
        diag_warn!("trial journal write failed: {e}");
    }
}

/// One heartbeat journal line (compact JSON, no trailing newline).
fn heartbeat_line(
    task: &str,
    completed: usize,
    total: usize,
    elapsed_sec: f64,
    trials_per_sec: f64,
    eta_sec: f64,
) -> String {
    Value::object()
        .field("schema", HEARTBEAT_SCHEMA)
        .field("task", task)
        .field("completed", completed)
        .field("total", total)
        .field("elapsed_sec", elapsed_sec)
        .field("trials_per_sec", trials_per_sec)
        .field("eta_sec", if eta_sec.is_finite() { Value::from(eta_sec) } else { Value::Null })
        .build()
        .render_compact()
}

/// Live sweep progress: counts finished trials — completed **and**
/// quarantined — and emits a throttled heartbeat (stderr line via
/// [`diag::progress_rate`], JSONL event via the trial journal).
///
/// The final tick always emits, so consumers can assert the heartbeat
/// reaches `total/total` even when every emission in between was
/// throttled away. The displayed count is clamped to `total`: a trial
/// whose `Ok` result is reclassified as a post-hoc timeout and then
/// retried ticks once per classified attempt, and the clamp keeps the
/// heartbeat monotone and bounded despite that double count.
struct Heartbeat<'a> {
    task: &'a str,
    total: usize,
    journal: Option<&'a Mutex<File>>,
    done: AtomicUsize,
    start: Instant,
    last_emit: Mutex<Option<Instant>>,
}

impl<'a> Heartbeat<'a> {
    fn new(task: &'a str, total: usize, journal: Option<&'a Mutex<File>>) -> Heartbeat<'a> {
        Heartbeat {
            task,
            total,
            journal,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            last_emit: Mutex::new(None),
        }
    }

    /// Marks one trial finished and emits a heartbeat if one is due
    /// (first tick, ~1 s since the last emission, or sweep complete).
    fn tick(&self) {
        let finished = (self.done.fetch_add(1, Ordering::Relaxed) + 1).min(self.total);
        let due = {
            let mut last = self.last_emit.lock().unwrap_or_else(|p| p.into_inner());
            let due = finished >= self.total
                || last.is_none_or(|t| t.elapsed() >= Duration::from_secs(1));
            if due {
                *last = Some(Instant::now());
            }
            due
        };
        if !due {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { finished as f64 / elapsed } else { 0.0 };
        let eta = if rate > 0.0 { (self.total - finished) as f64 / rate } else { f64::INFINITY };
        diag::progress_rate(self.task, finished, self.total, rate, eta);
        if let Some(j) = self.journal {
            append_line(j, &heartbeat_line(self.task, finished, self.total, elapsed, rate, eta));
        }
    }

    /// A guard that ticks on unwind when `armed` — the only way a
    /// panicking final attempt can still count toward progress, since the
    /// panic skips every statement after it in the trial closure.
    fn panic_guard(&'a self, armed: bool) -> PanicTick<'a> {
        PanicTick { heartbeat: self, armed }
    }
}

struct PanicTick<'a> {
    heartbeat: &'a Heartbeat<'a>,
    armed: bool,
}

impl Drop for PanicTick<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.heartbeat.tick();
        }
    }
}

/// Runs a modexp variant over `n_keys` random keys with per-trial fault
/// isolation, journaling, and resume, per `opts`.
///
/// Trial ids are stable across invocations (variant, core config,
/// key-bytes, seed, key index), so a journal written at one thread count
/// resumes correctly at any other. Pooled iterations are concatenated in
/// key order regardless of which trials were restored, so the analysis is
/// bit-identical to an uninterrupted sweep over the same surviving
/// trials.
pub fn run_modexp_sweep(
    variant: ModexpVariant,
    config: &CoreConfig,
    n_keys: usize,
    key_bytes: usize,
    seed: u64,
    opts: &SweepOptions,
) -> SweepOutcome {
    let kernel = ModexpKernel::new(variant, key_bytes);
    let keys = random_keys(n_keys, key_bytes, seed);
    let fb = if config.fast_bypass { "+fb" } else { "" };
    let trial_id = |i: usize| -> String {
        format!("{}/{}{fb}/kb{key_bytes}/s{seed}/key{i:04}", variant.name(), config.name)
    };

    let sweep_id = format!("{}/{}{fb}/kb{key_bytes}/s{seed}", variant.name(), config.name);

    let mut restored: BTreeMap<usize, Vec<IterationTrace>> = BTreeMap::new();
    if opts.resume {
        if let Some(path) = &opts.journal {
            match load_journal(path) {
                Ok(state) => {
                    let want = options_config_hash(opts);
                    match &state.config_hash {
                        Some(have) if *have != want => diag_warn!(
                            "resume ignored: journal {} was recorded under fault config \
                             hash {have}, this sweep is {want} (FaultConfig rates or \
                             seed changed)",
                            path.display()
                        ),
                        _ => {
                            for i in 0..n_keys {
                                if let Some(iters) = state.completed.get(&trial_id(i)) {
                                    restored.insert(i, iters.clone());
                                }
                            }
                        }
                    }
                }
                Err(e) => diag_warn!("resume ignored: {e}"),
            }
        }
    }

    let journal: Option<Mutex<File>> = opts.journal.as_ref().and_then(|path| {
        compact_torn_tail(path);
        match File::options().create(true).append(true).open(path) {
            Ok(f) => {
                let empty = f.metadata().map(|m| m.len() == 0).unwrap_or(false);
                let file = Mutex::new(f);
                if empty {
                    append_line(&file, &header_line(&options_config_hash(opts)));
                }
                Some(file)
            }
            Err(e) => {
                diag_warn!("cannot open trial journal {}: {e}", path.display());
                None
            }
        }
    });

    let all_work: Vec<usize> = (0..n_keys).filter(|i| !restored.contains_key(i)).collect();
    let heartbeat = Heartbeat::new(variant.name(), all_work.len(), journal.as_ref());
    let max_attempts = opts.policy.max_attempts.max(1);
    let ctl = RunControl { cancel: opts.cancel.clone(), deadline: opts.deadline };
    let run_trial = |_: usize, &i: &usize, attempt: u32| -> Result<Vec<IterationTrace>, String> {
        // A trial finishes by completing OR by exhausting its retries;
        // both must tick the heartbeat, or a quarantined trial leaves the
        // progress count short of total forever. Failures tick only on
        // their *final* attempt so retries don't inflate the count; a
        // panic is caught above this closure, so its tick rides on a
        // drop guard armed iff this panic would be terminal.
        let panic_is_final = !opts.policy.retry_panics || attempt + 1 >= max_attempts;
        let _panic_tick = heartbeat.panic_guard(panic_is_final);
        let error_is_final = !opts.policy.retry_sim_errors || attempt + 1 >= max_attempts;
        let fail = |message: String| {
            if error_is_final {
                heartbeat.tick();
            }
            message
        };
        let wedge = opts.wedge_trial == Some(i);
        // Re-seed per trial *and* per attempt: a retry explores a fresh
        // fault schedule, while `--threads N` determinism holds because
        // the schedule depends only on (seed, trial, attempt).
        let faults = match opts.faults {
            Some(fc) => {
                let mut fc = fc.for_trial(i as u64, attempt);
                fc.wedge = fc.wedge || wedge;
                Some(fc)
            }
            None if wedge => Some(FaultConfig { wedge: true, ..FaultConfig::default() }),
            None => None,
        };
        let mut cfg = config.clone();
        cfg.faults = faults;
        let trace = TraceConfig { faults, ..TraceConfig::default() };
        let key = &keys[i];
        let mut machine = kernel
            .machine(cfg, key, trace)
            .map_err(|e| fail(format!("{}: {e}", variant.name())))?;
        let budget = opts.max_cycles.unwrap_or_else(|| modexp::cycle_budget(key_bytes));
        let run = machine.run(budget).map_err(|e| fail(format!("{}: {e}", variant.name())))?;
        let want = kernel.reference(key);
        if run.exit_code != want {
            return Err(fail(format!(
                "{} functional mismatch: got {}, want {want}",
                variant.name(),
                run.exit_code
            )));
        }
        if let Some(j) = &journal {
            append_line(j, &completed_line(&trial_id(i), &run.iterations));
        }
        heartbeat.tick();
        Ok(run.iterations)
    };

    let mut fresh: BTreeMap<usize, TrialOutcome<Vec<IterationTrace>>> = BTreeMap::new();
    let mut stop: Option<StopTrace> = None;
    // First key index NOT covered by this sweep: n_keys unless the
    // confidence sequence closed early.
    let mut stop_bound = n_keys;
    match opts.sequential {
        None => {
            let outcomes =
                microsampler_par::map_isolated_ctl(&opts.policy, &ctl, &all_work, run_trial);
            fresh.extend(all_work.iter().copied().zip(outcomes));
        }
        Some(cfg) => {
            let mut analyzer = SequentialAnalyzer::new(cfg);
            let mut next_key = 0usize;
            let mut interrupted = false;
            for bound in look_points(n_keys) {
                let segment: Vec<usize> =
                    (next_key..bound).filter(|i| !restored.contains_key(i)).collect();
                let outcomes =
                    microsampler_par::map_isolated_ctl(&opts.policy, &ctl, &segment, run_trial);
                fresh.extend(segment.iter().copied().zip(outcomes));
                // Pool this segment in key order — restored and fresh
                // interleave exactly as an uninterrupted sweep would, so
                // the look sequence (and therefore the stopping point) is
                // identical on resume. Quarantined trials are excluded,
                // as in the batch analysis over surviving trials.
                for i in next_key..bound {
                    if let Some(iters) = restored.get(&i) {
                        analyzer.ingest_all(iters);
                    } else {
                        match fresh.get(&i) {
                            Some(TrialOutcome::Completed(iters)) => analyzer.ingest_all(iters),
                            Some(TrialOutcome::Failed(f)) if f.class == FailureClass::Cancelled => {
                                interrupted = true;
                            }
                            _ => {}
                        }
                    }
                }
                next_key = bound;
                if interrupted {
                    // A cancelled/deadline-skipped trial leaves this look
                    // point with partial data; judging it would make the
                    // stopping point depend on where the interruption
                    // landed. Leave the sequence open for the resume.
                    break;
                }
                if analyzer.look(bound as u64).is_decided() {
                    break;
                }
            }
            if next_key >= n_keys && !interrupted {
                analyzer.resolve(n_keys as u64);
            }
            if analyzer.verdict().is_decided() {
                stop_bound = next_key;
            } else if next_key < n_keys {
                // Interrupted mid-sequence: drain the remaining trials
                // through the (latched) cancel gate so they are accounted
                // as cancelled exactly like the fixed-budget path, and
                // the resume re-runs precisely that set.
                let rest: Vec<usize> =
                    (next_key..n_keys).filter(|i| !restored.contains_key(i)).collect();
                let outcomes =
                    microsampler_par::map_isolated_ctl(&opts.policy, &ctl, &rest, run_trial);
                fresh.extend(rest.iter().copied().zip(outcomes));
            }
            let trace = analyzer.trace().clone();
            if !trace.looks.is_empty() {
                if let Some(j) = &journal {
                    append_line(j, &trace.to_json(&sweep_id).render_compact());
                }
            }
            stop = Some(trace);
        }
    }

    let mut out = SweepOutcome {
        iterations: Vec::new(),
        completed: 0,
        restored: 0,
        cancelled: 0,
        early_stopped: 0,
        quarantined: Vec::new(),
        stop,
    };
    for i in 0..n_keys {
        if i >= stop_bound {
            // Past the stopping point. Restored trials beyond it keep
            // their journal records (a later full-budget resume can still
            // use them) but are not pooled, so an early-stopped resume is
            // bit-identical to an early-stopped fresh run.
            out.early_stopped += 1;
            record_event(TrialEvent {
                id: trial_id(i),
                kind: TrialEventKind::EarlyStopped,
                class: None,
                message: None,
                attempts: 0,
            });
            continue;
        }
        if let Some(iters) = restored.remove(&i) {
            out.restored += 1;
            record_event(TrialEvent {
                id: trial_id(i),
                kind: TrialEventKind::Restored,
                class: None,
                message: None,
                attempts: 0,
            });
            out.iterations.extend(iters);
            continue;
        }
        match fresh.get(&i) {
            Some(TrialOutcome::Completed(iters)) => {
                out.completed += 1;
                record_event(TrialEvent {
                    id: trial_id(i),
                    kind: TrialEventKind::Completed,
                    class: None,
                    message: None,
                    attempts: 0,
                });
                out.iterations.extend(iters.iter().cloned());
            }
            // Cancelled/deadline-skipped trials are neither journaled nor
            // quarantined: a resume re-runs exactly this set.
            Some(TrialOutcome::Failed(f)) if f.class == FailureClass::Cancelled => {
                out.cancelled += 1;
                record_event(TrialEvent {
                    id: trial_id(i),
                    kind: TrialEventKind::Cancelled,
                    class: Some(f.class),
                    message: Some(f.message.clone()),
                    attempts: f.attempts,
                });
            }
            Some(TrialOutcome::Failed(f)) => {
                let q = QuarantinedTrial {
                    id: trial_id(i),
                    class: f.class,
                    message: f.message.clone(),
                    attempts: f.attempts,
                };
                diag_warn!(
                    "quarantined {} after {} attempts ({}): {}",
                    q.id,
                    q.attempts,
                    q.class,
                    q.message
                );
                if let Some(j) = &journal {
                    append_line(j, &quarantined_line(&q));
                }
                record_event(TrialEvent {
                    id: q.id.clone(),
                    kind: TrialEventKind::Quarantined,
                    class: Some(q.class),
                    message: Some(q.message.clone()),
                    attempts: q.attempts,
                });
                out.quarantined.push(q);
            }
            None => unreachable!("every non-restored index has an outcome"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_iteration(label: u64) -> IterationTrace {
        let unit = |hash: u64| UnitTrace {
            hash,
            hash_timeless: hash ^ 0xff,
            features: [hash, 3].into_iter().collect(),
            order: vec![hash, 3],
            rows: None,
            cycle_rows: 7,
        };
        IterationTrace {
            label,
            start_cycle: 100,
            end_cycle: 140,
            dropped_cycles: 2,
            pipeline: PipelineStats {
                cycles: 40,
                committed: 66,
                rob_full_cycles: 5,
                ..PipelineStats::default()
            },
            units: vec![unit(0xdead_beef_dead_beef), unit(42)],
        }
    }

    #[test]
    fn journal_lines_round_trip() {
        let iters = vec![sample_iteration(0), sample_iteration(1)];
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-roundtrip-{}.jsonl", std::process::id()));
        let text = format!(
            "{}\n{}\n",
            completed_line("v/mega/kb4/s42/key0000", &iters),
            quarantined_line(&QuarantinedTrial {
                id: "v/mega/kb4/s42/key0001".into(),
                class: FailureClass::SimError,
                message: "deadlock".into(),
                attempts: 2,
            })
        );
        std::fs::write(&path, text).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.completed.len(), 1, "quarantined lines are not restored");
        let restored = &state.completed["v/mega/kb4/s42/key0000"];
        assert_eq!(restored, &iters, "features/order/hashes survive the round trip");
        assert_eq!(restored[0].units[0].features, iters[0].units[0].features);
        assert_eq!(restored[0].pipeline, iters[0].pipeline, "profiling counters round-trip");
    }

    #[test]
    fn journal_without_pipeline_field_restores_zeroed_counters() {
        // A pre-profiler journal line: same schema, no `pipeline` object.
        let mut it = sample_iteration(0);
        it.pipeline = PipelineStats::default();
        let line = completed_line("v/mega/kb4/s42/key0000", &[it.clone()]);
        let stripped = {
            let v = json::parse(&line).unwrap();
            // Re-render without the pipeline field via a hand-built line.
            let iters = v.get("iterations").unwrap().as_array().unwrap();
            let legacy: Vec<Value> = iters
                .iter()
                .map(|i| {
                    Value::object()
                        .field("label", i.get("label").unwrap().clone())
                        .field("start_cycle", i.get("start_cycle").unwrap().clone())
                        .field("end_cycle", i.get("end_cycle").unwrap().clone())
                        .field("dropped_cycles", i.get("dropped_cycles").unwrap().clone())
                        .field("units", i.get("units").unwrap().clone())
                        .build()
                })
                .collect();
            Value::object()
                .field("schema", TRIAL_SCHEMA)
                .field("id", "v/mega/kb4/s42/key0000")
                .field("status", "completed")
                .field("iterations", Value::Array(legacy))
                .build()
                .render_compact()
        };
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-legacy-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{stripped}\n")).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let restored = &state.completed["v/mega/kb4/s42/key0000"];
        assert_eq!(restored[0].pipeline, PipelineStats::default());
        assert_eq!(restored[0], it);
    }

    #[test]
    fn load_journal_skips_heartbeat_lines() {
        let iters = vec![sample_iteration(0)];
        let text = format!(
            "{}\n{}\n",
            heartbeat_line("sweep", 3, 8, 1.5, 2.0, 2.5),
            completed_line("v/mega/kb4/s42/key0000", &iters),
        );
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-heartbeat-{}.jsonl", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.completed.len(), 1, "heartbeat lines restore nothing");
        // The heartbeat line itself is well-formed JSON with the documented fields.
        let hb = json::parse(&heartbeat_line("sweep", 8, 8, 4.0, 2.0, 0.0)).unwrap();
        assert_eq!(hb.get("schema").unwrap().as_str(), Some(HEARTBEAT_SCHEMA));
        assert_eq!(hb.get("completed").unwrap().as_u64(), Some(8));
        assert_eq!(hb.get("total").unwrap().as_u64(), Some(8));
        assert!(hb.get("trials_per_sec").unwrap().as_f64().is_some());
        assert!(hb.get("elapsed_sec").unwrap().as_f64().is_some());
    }

    #[test]
    fn heartbeat_panic_guard_ticks_only_terminal_panics() {
        let hb = Heartbeat::new("t", 4, None);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = hb.panic_guard(true);
            panic!("trial exploded");
        }));
        assert!(unwound.is_err());
        assert_eq!(hb.done.load(Ordering::Relaxed), 1, "terminal panic ticks");
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = hb.panic_guard(false);
            panic!("will be retried");
        }));
        assert!(unwound.is_err());
        assert_eq!(hb.done.load(Ordering::Relaxed), 1, "retried panic must not tick");
        // A normal (non-unwinding) drop never ticks, armed or not.
        drop(hb.panic_guard(true));
        assert_eq!(hb.done.load(Ordering::Relaxed), 1);
        hb.tick();
        assert_eq!(hb.done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn load_journal_skips_torn_trailing_line() {
        // Simulate a kill -9 mid-append: a complete record followed by a
        // truncated one with no trailing newline.
        let iters = vec![sample_iteration(0)];
        let full = completed_line("v/mega/kb4/s42/key0000", &iters);
        let second = completed_line("v/mega/kb4/s42/key0001", &iters);
        let torn = &second[..second.len() / 2];
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-torn-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{full}\n{torn}")).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.completed.len(), 1, "the torn record is skipped, not fatal");
        assert!(state.completed.contains_key("v/mega/kb4/s42/key0000"));
    }

    #[test]
    fn load_journal_accepts_valid_final_line_without_newline() {
        // A writer that never got to flush the trailing newline but wrote
        // the full record: still restorable.
        let iters = vec![sample_iteration(0)];
        let line = completed_line("v/mega/kb4/s42/key0000", &iters);
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-nonewline-{}.jsonl", std::process::id()));
        std::fs::write(&path, &line).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.completed.len(), 1);
    }

    #[test]
    fn load_journal_still_rejects_torn_line_mid_file() {
        // A truncated record *followed by more lines* is corruption, not
        // an interrupted append — the newline after it proves the writer
        // kept going.
        let iters = vec![sample_iteration(0)];
        let full = completed_line("v/mega/kb4/s42/key0000", &iters);
        let torn = &full[..full.len() / 2];
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-midtorn-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{torn}\n{full}\n")).unwrap();
        let got = load_journal(&path);
        std::fs::remove_file(&path).ok();
        let err = got.expect_err("mid-file truncation is a hard error");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn cancelled_sweep_skips_unstarted_trials_without_journaling_them() {
        let token = CancelToken::new();
        token.cancel();
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-cancelled-{}.jsonl", std::process::id()));
        std::fs::write(&path, "").unwrap();
        reset_events();
        let opts = SweepOptions {
            cancel: Some(token),
            journal: Some(path.clone()),
            isolate: true,
            ..SweepOptions::default()
        };
        let out = run_modexp_sweep(
            ModexpVariant::V2Safe,
            &microsampler_sim::CoreConfig::mega_boom(),
            3,
            1,
            42,
            &opts,
        );
        let journal_text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        reset_events();
        assert_eq!(out.cancelled, 3, "pre-cancelled sweep skips every trial");
        assert_eq!(out.completed, 0);
        assert!(out.quarantined.is_empty(), "cancellation is not quarantine");
        assert!(
            !journal_text.contains(TRIAL_SCHEMA),
            "cancelled trials leave no journal records: {journal_text}"
        );
    }

    #[test]
    fn load_journal_rejects_malformed_lines() {
        let dir = std::env::temp_dir();
        let cases = [
            ("not json at all", "bad-json"),
            ("{\"schema\":\"wrong-schema\",\"id\":\"x\",\"status\":\"completed\"}", "bad-schema"),
            ("{\"schema\":\"microsampler-trial-v1\",\"status\":\"completed\"}", "no-id"),
            ("{\"schema\":\"microsampler-trial-v1\",\"id\":\"x\"}", "no-status"),
            (
                "{\"schema\":\"microsampler-trial-v1\",\"id\":\"x\",\"status\":\"completed\"}",
                "no-iterations",
            ),
        ];
        for (line, tag) in cases {
            let path = dir.join(format!("microsampler-journal-{tag}-{}.jsonl", std::process::id()));
            std::fs::write(&path, format!("{line}\n")).unwrap();
            let got = load_journal(&path);
            std::fs::remove_file(&path).ok();
            assert!(got.is_err(), "{tag} must be rejected");
            assert!(got.unwrap_err().contains("line 1"), "{tag} error names the line");
        }
        assert!(load_journal(Path::new("/nonexistent/journal.jsonl")).is_err());
    }

    #[test]
    fn allocator_with_no_stops_grants_exactly_the_fixed_budget() {
        let mut alloc = AdaptiveAllocator::new(27, 96);
        let mut per_round = Vec::new();
        loop {
            let grants = alloc.round();
            if grants.iter().all(|&g| g == 0) {
                break;
            }
            assert!(grants.iter().all(|&g| g == grants[0]), "symmetric items, equal grants");
            per_round.push(grants[0]);
        }
        assert_eq!(per_round, vec![12, 12, 24, 48], "doubling chunks sum to per_item");
        assert_eq!(alloc.remaining(), 0, "the pool is exactly exhausted");
        for i in 0..27 {
            assert_eq!(alloc.spent(i), 96);
        }
    }

    #[test]
    fn allocator_reflows_freed_budget_to_survivors() {
        let mut alloc = AdaptiveAllocator::new(4, 96);
        assert_eq!(alloc.round(), vec![12, 12, 12, 12]);
        // Three items decide after the first chunk; their budget reflows.
        alloc.retire(0);
        alloc.retire(1);
        alloc.retire(2);
        let mut total = alloc.spent(3);
        loop {
            let grants = alloc.round();
            assert_eq!(grants[0] + grants[1] + grants[2], 0, "retired items grant nothing");
            if grants[3] == 0 {
                break;
            }
            total += grants[3];
        }
        assert_eq!(total, alloc.spent(3));
        assert!(
            alloc.spent(3) > 96,
            "the survivor runs past its own budget on reflowed trials: {}",
            alloc.spent(3)
        );
        assert!(alloc.spent(3) + 3 * 12 <= 4 * 96, "reflow never exceeds the pool");
    }

    #[test]
    fn look_points_double_and_always_cover_the_budget() {
        assert_eq!(look_points(96), vec![12, 24, 48, 96]);
        assert_eq!(look_points(16), vec![2, 4, 8, 16]);
        assert_eq!(look_points(27), vec![3, 6, 12, 24, 27]);
        assert_eq!(look_points(8), vec![1, 2, 4, 8]);
        assert_eq!(look_points(1), vec![1]);
        assert_eq!(look_points(0), Vec::<usize>::new());
    }

    #[test]
    fn config_hash_tracks_fault_noise_only() {
        let base = SweepOptions::default();
        let noisy = SweepOptions {
            faults: Some(FaultConfig { evict_per_64k: 64, ..FaultConfig::default() }),
            ..SweepOptions::default()
        };
        assert_ne!(options_config_hash(&base), options_config_hash(&noisy));
        let reseeded = SweepOptions {
            faults: Some(FaultConfig { seed: 7, ..FaultConfig::default() }),
            ..SweepOptions::default()
        };
        assert_ne!(options_config_hash(&base), options_config_hash(&reseeded));
        // Knobs that only decide *whether* a trial finishes leave
        // completed records bit-identical, so they don't taint resumes.
        let budget =
            SweepOptions { max_cycles: Some(500), wedge_trial: Some(1), ..SweepOptions::default() };
        assert_eq!(options_config_hash(&base), options_config_hash(&budget));
        // An explicit all-zero FaultConfig injects nothing, like None.
        let explicit =
            SweepOptions { faults: Some(FaultConfig::default()), ..SweepOptions::default() };
        assert_eq!(options_config_hash(&base), options_config_hash(&explicit));
    }

    #[test]
    fn journal_header_round_trips_config_hash() {
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-header-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{}\n", header_line("deadbeef01234567"))).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.config_hash.as_deref(), Some("deadbeef01234567"));
        assert!(state.completed.is_empty());
    }

    #[test]
    fn load_journal_skips_stop_trace_lines() {
        let iters = vec![sample_iteration(0)];
        let text = format!(
            "{}\n{}\n",
            StopTrace::default().to_json("v/mega/kb4/s42").render_compact(),
            completed_line("v/mega/kb4/s42/key0000", &iters),
        );
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-stopline-{}.jsonl", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let state = load_journal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(state.completed.len(), 1, "stop traces restore nothing");
    }

    #[test]
    fn compact_torn_tail_repairs_unterminated_and_torn_tails() {
        let iters = vec![sample_iteration(0)];
        let full = completed_line("v/mega/kb4/s42/key0000", &iters);
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-compact-{}.jsonl", std::process::id()));

        // A complete final record missing only its newline gets it back —
        // appending straight after it would glue two records together.
        std::fs::write(&path, &full).unwrap();
        compact_torn_tail(&path);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{full}\n"));

        // A truncated final record is dropped back to the last newline.
        std::fs::write(&path, format!("{full}\n{}", &full[..full.len() / 2])).unwrap();
        compact_torn_tail(&path);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{full}\n"));

        // A torn sole line empties the file.
        std::fs::write(&path, &full[..10]).unwrap();
        compact_torn_tail(&path);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");

        // Terminated files are untouched.
        std::fs::write(&path, format!("{full}\n")).unwrap();
        compact_torn_tail(&path);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), format!("{full}\n"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_fault_config() {
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-hashgate-{}.jsonl", std::process::id()));
        std::fs::write(&path, "").unwrap();
        let noisy = SweepOptions {
            isolate: true,
            journal: Some(path.clone()),
            faults: Some(FaultConfig { evict_per_64k: 16, ..FaultConfig::default() }),
            ..SweepOptions::default()
        };
        reset_events();
        let first = run_modexp_sweep(
            ModexpVariant::V2Safe,
            &microsampler_sim::CoreConfig::mega_boom(),
            2,
            1,
            42,
            &noisy,
        );
        assert_eq!(first.completed, 2);

        // Resuming under different fault noise must not pool the old trials.
        reset_events();
        let clean_resume = SweepOptions { faults: None, resume: true, ..noisy.clone() };
        let second = run_modexp_sweep(
            ModexpVariant::V2Safe,
            &microsampler_sim::CoreConfig::mega_boom(),
            2,
            1,
            42,
            &clean_resume,
        );
        assert_eq!(second.restored, 0, "mismatched fault config must not restore");
        assert_eq!(second.completed, 2, "trials re-run under the new config");

        // Resuming under the same fault config restores everything.
        reset_events();
        let same_resume = SweepOptions { resume: true, ..noisy.clone() };
        let third = run_modexp_sweep(
            ModexpVariant::V2Safe,
            &microsampler_sim::CoreConfig::mega_boom(),
            2,
            1,
            42,
            &same_resume,
        );
        std::fs::remove_file(&path).ok();
        reset_events();
        assert_eq!(third.restored, 2);
        assert_eq!(third.completed, 0);
    }

    #[test]
    fn sequential_sweep_stops_early_and_resume_reproduces_the_stopping_point() {
        use microsampler_core::SeqVerdict;
        let path = std::env::temp_dir()
            .join(format!("microsampler-journal-seq-{}.jsonl", std::process::id()));
        std::fs::write(&path, "").unwrap();
        let opts = SweepOptions {
            isolate: true,
            journal: Some(path.clone()),
            sequential: Some(SeqConfig::default()),
            ..SweepOptions::default()
        };
        reset_events();
        let out = run_modexp_sweep(
            ModexpVariant::Naive,
            &microsampler_sim::CoreConfig::mega_boom(),
            16,
            1,
            42,
            &opts,
        );
        let stop = out.stop.clone().expect("sequential sweeps carry a stop trace");
        assert_eq!(stop.verdict, SeqVerdict::Leaky, "naive modexp is the known leak");
        assert!(!stop.fallback, "an obvious leak closes the sequence, not the fallback");
        assert!(out.early_stopped > 0, "the full key budget must not be needed");
        assert_eq!(out.completed + out.early_stopped, 16);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(STOP_SCHEMA), "the journal records the stopping trace");

        // A resume replays the journal and reproduces the same stopping
        // point — same looks, same verdict, same pooled iterations —
        // without running a single trial.
        reset_events();
        let resumed = run_modexp_sweep(
            ModexpVariant::Naive,
            &microsampler_sim::CoreConfig::mega_boom(),
            16,
            1,
            42,
            &SweepOptions { resume: true, ..opts.clone() },
        );
        std::fs::remove_file(&path).ok();
        reset_events();
        assert_eq!(resumed.completed, 0, "nothing re-runs on resume");
        assert_eq!(resumed.restored, out.completed);
        assert_eq!(resumed.early_stopped, out.early_stopped);
        let rstop = resumed.stop.expect("resumed sweep still carries a stop trace");
        assert_eq!(rstop.verdict, stop.verdict);
        assert_eq!(rstop.looks, stop.looks, "stopping points are bit-identical on resume");
        assert_eq!(resumed.iterations, out.iterations);
    }

    #[test]
    fn sequential_clean_sweep_matches_batch_verdict() {
        let opts = SweepOptions {
            isolate: true,
            sequential: Some(SeqConfig::default()),
            ..SweepOptions::default()
        };
        reset_events();
        let out = run_modexp_sweep(
            ModexpVariant::V2Safe,
            &microsampler_sim::CoreConfig::mega_boom(),
            8,
            1,
            42,
            &opts,
        );
        reset_events();
        let stop = out.stop.expect("sequential sweeps carry a stop trace");
        assert_eq!(stop.verdict, microsampler_core::SeqVerdict::Clean);
        // Whatever trials the sequence used, the verdict agrees with the
        // batch rule over the pooled iterations.
        let report = microsampler_core::analyze(&out.iterations);
        assert!(!report.is_leaky());
    }

    #[test]
    fn events_registry_renders_stable_json() {
        reset_events();
        record_event(TrialEvent {
            id: "a".into(),
            kind: TrialEventKind::Completed,
            class: None,
            message: None,
            attempts: 0,
        });
        record_event(TrialEvent {
            id: "b".into(),
            kind: TrialEventKind::Quarantined,
            class: Some(FailureClass::Panicked),
            message: Some("boom".into()),
            attempts: 1,
        });
        let v = events_to_json();
        reset_events();
        assert_eq!(v.get("completed").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("restored").unwrap().as_u64(), Some(0));
        let q = v.get("quarantined").unwrap().as_array().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].get("id").unwrap().as_str(), Some("b"));
        assert_eq!(q[0].get("class").unwrap().as_str(), Some("panicked"));
        assert_eq!(q[0].get("attempts").unwrap().as_u64(), Some(1));
    }
}
