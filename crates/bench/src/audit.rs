//! Adaptive sequential audit engine (`repro audit`): the Table V
//! primitive sweep under anytime-valid early stopping, plus the
//! verdict-stability robustness harness.
//!
//! The fixed-budget [`table5`](crate::experiments::table5) audit spends
//! `Scale::primitive_trials` on every primitive even when Cramér's V
//! converges in the first look. This engine instead pools the whole
//! budget in a [`sweep::AdaptiveAllocator`] and judges each primitive's
//! [`SequentialAnalyzer`] confidence sequence after every granted chunk:
//! decided primitives retire (their unspent budget reflows to the
//! borderline ones), and each one carries a [`StopTrace`] receipt with
//! its looks, bounds, and stopping point.
//!
//! Determinism: chunk `c` of every primitive runs at seed
//! `seed + c * 7919` (the escalation-round convention), the allocator's
//! grants depend only on the retire sequence, and chunks are pooled in
//! table order — so re-runs and different thread counts reproduce the
//! same stopping points bit-for-bit.
//!
//! The robustness layer ([`robustness`]) replays the audit across fault
//! noise levels in early-stop and full-budget modes and emits one
//! stability curve per primitive (`microsampler-stability-v1`); any
//! level where the two modes disagree marks the primitive `UNSTABLE`.

use crate::sweep::AdaptiveAllocator;
use microsampler_core::{SeqConfig, SeqVerdict, SequentialAnalyzer, StopTrace};
use microsampler_kernels::openssl::Primitive;
use microsampler_obs::{diag, Value};
use microsampler_sim::{CoreConfig, FaultConfig, TraceConfig};

/// Schema tag on the robustness stability-curve document.
pub const STABILITY_SCHEMA: &str = "microsampler-stability-v1";

/// Schema tag on the trials-to-verdict benchmark document.
pub const STATS_BENCH_SCHEMA: &str = "microsampler-stats-bench-v1";

/// Reflow ceiling: a borderline primitive may spend at most this many
/// times its own budget before the audit resolves it with the batch
/// fallback rule, keeping worst-case runtime bounded.
pub const REFLOW_CAP: usize = 4;

/// One audit campaign's knobs.
#[derive(Clone, Debug)]
pub struct AuditOptions {
    /// Per-primitive trial budget (the fixed-budget audit's spend).
    pub trials: usize,
    /// Base input seed; chunk `c` runs at `seed + c * 7919`.
    pub seed: u64,
    /// Confidence-sequence parameters.
    pub config: SeqConfig,
    /// Stop primitives as soon as their sequence closes. When false the
    /// audit spends the full budget everywhere and the verdict is the
    /// paper's batch rule — the baseline early stopping is judged
    /// against.
    pub early_stop: bool,
    /// Fault noise injected into every trial (re-seeded per chunk).
    pub faults: Option<FaultConfig>,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        let scale = crate::Scale::default();
        AuditOptions {
            trials: scale.primitive_trials,
            seed: scale.seed,
            config: SeqConfig::default(),
            early_stop: true,
            faults: None,
        }
    }
}

/// One primitive's audit outcome.
#[derive(Clone, Debug)]
pub struct AuditRow {
    /// OpenSSL-style primitive name.
    pub name: String,
    /// Final verdict: the sequence's close (early-stop mode) or the
    /// batch rule over the full budget (full-budget mode). Never
    /// `Undecided` — open sequences resolve through the batch fallback.
    pub verdict: SeqVerdict,
    /// Whether every completed trial matched the reference model.
    pub functional_ok: bool,
    /// Largest timed Cramér's V over everything ingested.
    pub max_v: f64,
    /// Trials actually simulated for this primitive.
    pub trials_spent: u64,
    /// The per-primitive budget the campaign was configured with.
    pub budget: u64,
    /// The stopping trace: every look with its confidence-sequence
    /// bounds, plus where the sequence (would have) closed.
    pub stop: StopTrace,
    /// First simulator error, if any chunk failed.
    pub error: Option<String>,
}

struct ItemState {
    analyzer: SequentialAnalyzer,
    chunks: usize,
    spent: u64,
    functional_ok: bool,
    error: Option<String>,
}

/// Runs the 27-primitive audit under `opts`. Rows come back in table
/// order regardless of stopping order or thread count.
pub fn run_audit(opts: &AuditOptions) -> Vec<AuditRow> {
    let primitives = Primitive::all();
    let n = primitives.len();
    let mut alloc = AdaptiveAllocator::new(n, opts.trials);
    let cap = (opts.trials * REFLOW_CAP) as u64;
    let mut items: Vec<ItemState> = (0..n)
        .map(|_| ItemState {
            analyzer: SequentialAnalyzer::new(opts.config),
            chunks: 0,
            spent: 0,
            functional_ok: true,
            error: None,
        })
        .collect();

    loop {
        let grants = alloc.round();
        if grants.iter().all(|&g| g == 0) {
            break;
        }
        // Fan the round's chunks out in parallel, then pool them in
        // table order so the look sequence is schedule-independent.
        let jobs: Vec<(usize, usize, usize)> = grants
            .iter()
            .enumerate()
            .filter(|(_, &g)| g > 0)
            .map(|(i, &g)| (i, items[i].chunks, g))
            .collect();
        let results = microsampler_par::map(&jobs, |_, &(i, chunk, trials)| {
            let faults = opts.faults.map(|f| f.for_trial(chunk as u64, 0));
            let mut config = CoreConfig::mega_boom();
            config.faults = faults;
            let trace = TraceConfig { faults, ..TraceConfig::default() };
            primitives[i]
                .run(config, trials, opts.seed + chunk as u64 * 7919, trace)
                .map_err(|e| format!("{}: {e}", primitives[i].name))
        });
        for (&(i, _, trials), result) in jobs.iter().zip(results) {
            let item = &mut items[i];
            item.chunks += 1;
            match result {
                Ok(out) => {
                    item.functional_ok &= out.functional_ok;
                    item.spent += trials as u64;
                    item.analyzer.ingest_all(&out.result.iterations);
                }
                Err(e) => {
                    // A failed chunk contributes no data; the verdict
                    // resolves on what this primitive gathered so far.
                    if item.error.is_none() {
                        item.error = Some(e);
                    }
                    item.functional_ok = false;
                    item.analyzer.resolve(item.spent);
                    alloc.retire(i);
                    continue;
                }
            }
            let verdict = item.analyzer.look(item.spent);
            if opts.early_stop && verdict.is_decided() {
                alloc.retire(i);
            } else if item.spent >= cap {
                item.analyzer.resolve(item.spent);
                alloc.retire(i);
            }
        }
        diag::progress("audit", n - alloc_alive(&grants), n.max(1));
    }

    items
        .into_iter()
        .zip(&primitives)
        .map(|(mut item, prim)| {
            // Open sequences at budget exhaustion fall back to the
            // batch rule over everything ingested — which is exactly
            // the full-budget verdict when nothing stopped early.
            item.analyzer.resolve(item.spent);
            let report = item.analyzer.report();
            let verdict = if opts.early_stop {
                item.analyzer.verdict()
            } else if report.is_leaky() {
                SeqVerdict::Leaky
            } else {
                SeqVerdict::Clean
            };
            let max_v = report.units.iter().map(|u| u.assoc.cramers_v).fold(0.0f64, f64::max);
            AuditRow {
                name: prim.name.to_owned(),
                verdict,
                functional_ok: item.functional_ok,
                max_v,
                trials_spent: item.spent,
                budget: opts.trials as u64,
                stop: item.analyzer.trace().clone(),
                error: item.error,
            }
        })
        .collect()
}

fn alloc_alive(grants: &[usize]) -> usize {
    grants.iter().filter(|&&g| g > 0).count()
}

/// Renders one audit campaign, stop traces included.
pub fn audit_to_json(rows: &[AuditRow]) -> Value {
    Value::object()
        .field("schema", "microsampler-audit-v1")
        .field(
            "rows",
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object()
                            .field("name", r.name.as_str())
                            .field("verdict", r.verdict.name())
                            .field("functional_ok", r.functional_ok)
                            .field("max_v", r.max_v)
                            .field("trials_spent", r.trials_spent)
                            .field("budget", r.budget)
                            .field("stop", r.stop.to_json(&format!("audit/{}", r.name)))
                            .field("error", r.error.as_deref().map_or(Value::Null, Value::from))
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

/// One noise level's verdict pair on one primitive's stability curve.
#[derive(Clone, Debug)]
pub struct StabilityPoint {
    /// Fault rate (per 64Ki cycles) applied to squash/evict/MSHR noise.
    pub noise: u32,
    /// Early-stopped verdict at this level.
    pub early: SeqVerdict,
    /// Full-budget verdict at this level.
    pub full: SeqVerdict,
    /// Trials the early-stopped audit spent at this level.
    pub trials_spent: u64,
}

/// One primitive's verdict-stability curve across noise levels.
#[derive(Clone, Debug)]
pub struct StabilityCurve {
    /// Primitive name.
    pub name: String,
    /// One point per audited noise level, in level order.
    pub points: Vec<StabilityPoint>,
    /// True when any level's early verdict disagrees with its
    /// full-budget verdict — the primitive is escalated to `UNSTABLE`.
    pub unstable: bool,
}

/// Default robustness noise ladder (per-64k squash/evict/MSHR rates):
/// quiet, the fault-tolerance drill level, and 2× that. Verdicts are
/// stable across this ladder at the default seed; pushing to 256
/// escalates `constant_time_lookup` to UNSTABLE — eviction noise turns
/// its secret-indexed cache footprint into a late-blooming association
/// that the full budget flags but an early clean close misses, which is
/// exactly the disagreement this layer exists to surface.
pub const DEFAULT_NOISE_LEVELS: [u32; 3] = [0, 64, 128];

/// Runs the audit at each noise level in both modes and folds the
/// verdict pairs into per-primitive stability curves.
pub fn robustness(base: &AuditOptions, noise_levels: &[u32]) -> Vec<StabilityCurve> {
    let mut curves: Vec<StabilityCurve> = Primitive::all()
        .iter()
        .map(|p| StabilityCurve { name: p.name.to_owned(), points: Vec::new(), unstable: false })
        .collect();
    for &noise in noise_levels {
        let faults = if noise == 0 {
            base.faults
        } else {
            let seeded =
                base.faults.unwrap_or(FaultConfig { seed: base.seed, ..FaultConfig::default() });
            Some(FaultConfig {
                squash_per_64k: noise,
                evict_per_64k: noise,
                mshr_stall_per_64k: noise,
                ..seeded
            })
        };
        let early = run_audit(&AuditOptions { early_stop: true, faults, ..base.clone() });
        let full = run_audit(&AuditOptions { early_stop: false, faults, ..base.clone() });
        for (curve, (e, f)) in curves.iter_mut().zip(early.iter().zip(&full)) {
            debug_assert_eq!(curve.name, e.name);
            curve.unstable |= e.verdict != f.verdict;
            curve.points.push(StabilityPoint {
                noise,
                early: e.verdict,
                full: f.verdict,
                trials_spent: e.trials_spent,
            });
        }
    }
    curves
}

/// Renders the stability curves (`microsampler-stability-v1`).
pub fn stability_to_json(curves: &[StabilityCurve]) -> Value {
    Value::object()
        .field("schema", STABILITY_SCHEMA)
        .field("unstable", curves.iter().filter(|c| c.unstable).count())
        .field(
            "curves",
            Value::Array(
                curves
                    .iter()
                    .map(|c| {
                        Value::object()
                            .field("name", c.name.as_str())
                            .field("status", if c.unstable { "UNSTABLE" } else { "stable" })
                            .field(
                                "points",
                                Value::Array(
                                    c.points
                                        .iter()
                                        .map(|p| {
                                            Value::object()
                                                .field("noise_per_64k", p.noise as u64)
                                                .field("early_verdict", p.early.name())
                                                .field("full_verdict", p.full.name())
                                                .field("trials_spent", p.trials_spent)
                                                .build()
                                        })
                                        .collect(),
                                ),
                            )
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

/// Renders the trials-to-verdict benchmark (`microsampler-stats-bench-v1`)
/// from an early-stopped campaign: the per-primitive stopping points, the
/// median, and the speedup over the fixed budget.
pub fn stats_bench_json(rows: &[AuditRow]) -> Value {
    let mut spends: Vec<u64> = rows.iter().map(|r| r.trials_spent).collect();
    spends.sort_unstable();
    let median = if spends.is_empty() { 0 } else { spends[spends.len() / 2] };
    let budget = rows.first().map_or(0, |r| r.budget);
    let speedup = if median > 0 { budget as f64 / median as f64 } else { 0.0 };
    Value::object()
        .field("schema", STATS_BENCH_SCHEMA)
        .field("budget", budget)
        .field("median_trials_to_verdict", median)
        .field("median_speedup", speedup)
        .field("total_trials_spent", rows.iter().map(|r| r.trials_spent).sum::<u64>())
        .field("total_budget", budget * rows.len() as u64)
        .field(
            "primitives",
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object()
                            .field("name", r.name.as_str())
                            .field("trials_to_verdict", r.trials_spent)
                            .field("verdict", r.verdict.name())
                            .field("fallback", r.stop.fallback)
                            .field("looks", r.stop.looks.len())
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    // 48 trials is the smallest budget whose interior looks (n = 12, 24)
    // have confidence radii tight enough for clean primitives to close
    // before exhaustion; 24 only judges at n = 12 (too wide) and n = 24
    // (the full budget), so nothing could ever stop early.
    fn small_opts() -> AuditOptions {
        AuditOptions { trials: 48, ..AuditOptions::default() }
    }

    #[test]
    fn early_stop_matches_full_budget_and_saves_trials() {
        let early = run_audit(&small_opts());
        let full = run_audit(&AuditOptions { early_stop: false, ..small_opts() });
        assert_eq!(early.len(), full.len());
        let mut saved = 0u64;
        for (e, f) in early.iter().zip(&full) {
            assert_eq!(e.name, f.name);
            assert!(e.verdict.is_decided(), "{}: audits never end undecided", e.name);
            assert_eq!(
                e.verdict, f.verdict,
                "{}: early-stopped verdict must match the full budget",
                e.name
            );
            assert!(e.functional_ok, "{}: reference mismatch", e.name);
            assert!(e.trials_spent <= f.trials_spent);
            saved += f.trials_spent - e.trials_spent;
            assert!(!e.stop.looks.is_empty(), "{}: stop trace records looks", e.name);
        }
        assert!(saved > 0, "early stopping must save trials somewhere");
    }

    #[test]
    fn audit_is_deterministic_across_runs() {
        let a = run_audit(&small_opts());
        let b = run_audit(&small_opts());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.verdict, y.verdict);
            assert_eq!(x.trials_spent, y.trials_spent);
            assert_eq!(x.stop.looks, y.stop.looks, "{}: looks are bit-identical", x.name);
        }
    }

    #[test]
    fn bench_and_audit_json_schemas_are_wellformed() {
        let rows = run_audit(&small_opts());
        let bench = stats_bench_json(&rows);
        assert_eq!(bench.get("schema").unwrap().as_str(), Some(STATS_BENCH_SCHEMA));
        assert!(bench.get("median_trials_to_verdict").unwrap().as_u64().is_some());
        assert_eq!(bench.get("primitives").unwrap().as_array().unwrap().len(), rows.len());
        let audit = audit_to_json(&rows);
        let text = audit.render_compact();
        assert_eq!(microsampler_obs::json::parse(&text).unwrap(), audit);
        let row0 = &audit.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(
            row0.get("stop").unwrap().get("schema").unwrap().as_str(),
            Some(microsampler_core::STOP_SCHEMA)
        );
    }

    #[test]
    fn stability_curves_mark_disagreements_unstable() {
        let mk = |early: SeqVerdict, full: SeqVerdict| StabilityPoint {
            noise: 64,
            early,
            full,
            trials_spent: 12,
        };
        let curves = vec![
            StabilityCurve {
                name: "ok".into(),
                points: vec![mk(SeqVerdict::Clean, SeqVerdict::Clean)],
                unstable: false,
            },
            StabilityCurve {
                name: "bad".into(),
                points: vec![mk(SeqVerdict::Leaky, SeqVerdict::Clean)],
                unstable: true,
            },
        ];
        let v = stability_to_json(&curves);
        assert_eq!(v.get("schema").unwrap().as_str(), Some(STABILITY_SCHEMA));
        assert_eq!(v.get("unstable").unwrap().as_u64(), Some(1));
        let arr = v.get("curves").unwrap().as_array().unwrap();
        assert_eq!(arr[0].get("status").unwrap().as_str(), Some("stable"));
        assert_eq!(arr[1].get("status").unwrap().as_str(), Some("UNSTABLE"));
    }
}
