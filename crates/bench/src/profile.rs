//! `repro profile`: per-kernel pipeline utilization dumps and the
//! `BENCH_sim.json` simulator-throughput baseline.
//!
//! Each selected modexp kernel is swept over its keys (fanning out across
//! the [`microsampler_par`] pool like the experiments do) while the
//! simulator's always-on [`PipelineStats`] counters accumulate. The result
//! is printed riscv-perf-model style — host throughput, simulated IPC,
//! per-execution-unit utilization, and the stall-cause breakdown — and
//! written as stable-schema JSON so CI can track simulator throughput
//! regressions against the roadmap's 5× target.
//!
//! Everything under the `sim`/`utilization`/`stalls`/`pipeline` keys is
//! bit-identical at every thread count (pure simulator state); only the
//! `host` object (wall-clock timings) varies between machines and runs.

use crate::sweep;
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_obs::{diag, Value};
use microsampler_sim::{CoreConfig, PipelineStats, TraceConfig};
use std::time::{Duration, Instant};

/// Schema tag on the `BENCH_sim.json` report.
pub const BENCH_SIM_SCHEMA: &str = "microsampler-bench-sim-v1";

/// What to profile.
#[derive(Clone, Debug)]
pub struct ProfileOptions {
    /// Kernels to sweep (`repro profile --all` selects every variant).
    pub kernels: Vec<ModexpVariant>,
    /// Keys per kernel.
    pub keys: usize,
    /// Key length in bytes.
    pub key_bytes: usize,
    /// RNG seed for the key material.
    pub seed: u64,
}

impl Default for ProfileOptions {
    fn default() -> ProfileOptions {
        ProfileOptions { kernels: ModexpVariant::ALL.to_vec(), keys: 2, key_bytes: 2, seed: 42 }
    }
}

/// Profiling result for one kernel sweep.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Kernel name (`ME-V1-MV`, …).
    pub name: &'static str,
    /// Keys swept.
    pub keys: usize,
    /// Key length in bytes.
    pub key_bytes: usize,
    /// Host wall-clock time for the sweep (fan-out included).
    pub elapsed: Duration,
    /// Pipeline counters summed over every trial of the sweep.
    pub pipeline: PipelineStats,
}

impl KernelProfile {
    /// Simulated cycles retired per host second — the headline
    /// throughput number the roadmap's 5× target is measured against.
    pub fn sim_cycles_per_host_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.pipeline.cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Renders one `kernels[]` entry of the `BENCH_sim.json` report.
    pub fn to_json(&self, config: &CoreConfig) -> Value {
        let p = &self.pipeline;
        let mut stalls = Value::object();
        for (name, cycles) in p.stall_breakdown() {
            stalls = stalls.field(name, cycles);
        }
        Value::object()
            .field("name", self.name)
            .field("keys", self.keys)
            .field("key_bytes", self.key_bytes)
            .field(
                "host",
                Value::object()
                    .field("elapsed_sec", self.elapsed.as_secs_f64())
                    .field("sim_cycles_per_host_sec", self.sim_cycles_per_host_sec())
                    .build(),
            )
            .field(
                "sim",
                Value::object()
                    .field("cycles", p.cycles)
                    .field("committed", p.committed)
                    .field("ipc", p.ipc())
                    .build(),
            )
            .field(
                "utilization",
                Value::object()
                    .field("alu", p.alu_utilization(config.n_alus))
                    .field("agu", p.agu_utilization(config.n_agus))
                    .field("mul", p.mul_utilization())
                    .field("div", p.div_utilization())
                    .build(),
            )
            .field("stalls", stalls.build())
            .field("pipeline", p.to_json())
            .build()
    }
}

/// Sweeps one kernel and accumulates its pipeline counters.
///
/// # Errors
///
/// Returns a message naming the kernel on assembly/simulation failure or
/// a functional mismatch against the reference model.
pub fn profile_kernel(
    variant: ModexpVariant,
    config: &CoreConfig,
    opts: &ProfileOptions,
) -> Result<KernelProfile, String> {
    let _span = microsampler_obs::span("profile");
    let kernel = ModexpKernel::new(variant, opts.key_bytes);
    let keys = random_keys(opts.keys, opts.key_bytes, opts.seed);
    let start = Instant::now();
    let per_key = microsampler_par::map(&keys, |_, key| {
        let run = kernel
            .run(config.clone(), key, TraceConfig::default())
            .map_err(|e| format!("{}: {e}", variant.name()))?;
        if run.exit_code != kernel.reference(key) {
            return Err(format!("{} functional mismatch", variant.name()));
        }
        Ok(run.pipeline)
    });
    let elapsed = start.elapsed();
    let mut pipeline = PipelineStats::default();
    for r in per_key {
        pipeline.add(&r?);
    }
    Ok(KernelProfile {
        name: variant.name(),
        keys: opts.keys,
        key_bytes: opts.key_bytes,
        elapsed,
        pipeline,
    })
}

/// Profiles every selected kernel in order.
///
/// # Errors
///
/// Propagates the first kernel failure (see [`profile_kernel`]).
pub fn profile_kernels(
    config: &CoreConfig,
    opts: &ProfileOptions,
) -> Result<Vec<KernelProfile>, String> {
    let total = opts.kernels.len();
    opts.kernels
        .iter()
        .enumerate()
        .map(|(i, &variant)| {
            let profile = profile_kernel(variant, config, opts)?;
            diag::progress("profile", i + 1, total);
            Ok(profile)
        })
        .collect()
}

/// Renders the full `BENCH_sim.json` report (stable schema: `schema`,
/// `config`, `threads`, `kernels` via [`KernelProfile::to_json`]).
pub fn report_to_json(profiles: &[KernelProfile], config: &CoreConfig, threads: usize) -> Value {
    Value::object()
        .field("schema", BENCH_SIM_SCHEMA)
        .field("config", config.name)
        .field("threads", threads)
        .field("kernels", Value::Array(profiles.iter().map(|p| p.to_json(config)).collect()))
        .field("trials", sweep::events_to_json())
        .build()
}

/// Prints the riscv-perf-model-style utilization dump for one kernel.
pub fn print_profile(profile: &KernelProfile, config: &CoreConfig) {
    let p = &profile.pipeline;
    let pct = |x: f64| x * 100.0;
    println!(
        "\n== pipeline profile: {} ({}, {} keys x {} bytes) ==",
        profile.name, config.name, profile.keys, profile.key_bytes
    );
    println!(
        "host     : {:.2} s wall, {:.2} Mcycles/s",
        profile.elapsed.as_secs_f64(),
        profile.sim_cycles_per_host_sec() / 1e6
    );
    println!("sim      : {} cycles, {} committed, IPC {:.3}", p.cycles, p.committed, p.ipc());
    println!(
        "util     : ALU {:5.1}%  AGU {:5.1}%  MUL {:5.1}%  DIV {:5.1}%",
        pct(p.alu_utilization(config.n_alus)),
        pct(p.agu_utilization(config.n_agus)),
        pct(p.mul_utilization()),
        pct(p.div_utilization())
    );
    let cycles = p.cycles.max(1) as f64;
    print!("stalls   :");
    for (name, count) in p.stall_breakdown() {
        if count > 0 {
            print!("  {name} {:.1}%", count as f64 / cycles * 100.0);
        }
    }
    println!();
    if let Some((name, count)) = p.dominant_stall() {
        println!("dominant : {name} ({count} cycles)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileOptions {
        ProfileOptions {
            kernels: vec![ModexpVariant::V1MicroarchVuln],
            keys: 1,
            key_bytes: 1,
            seed: 42,
        }
    }

    #[test]
    fn profile_accumulates_nonzero_counters() {
        let profiles = profile_kernels(&CoreConfig::mega_boom(), &tiny()).unwrap();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0].pipeline;
        assert!(p.cycles > 0);
        assert!(p.committed > 0);
        assert!(p.ipc() > 0.0);
        assert!(p.alu_busy > 0, "a modexp sweep must keep the ALUs busy");
    }

    #[test]
    fn bench_sim_json_has_required_stats() {
        let config = CoreConfig::mega_boom();
        let profiles = profile_kernels(&config, &tiny()).unwrap();
        let v = report_to_json(&profiles, &config, 1);
        assert_eq!(v.get("schema").unwrap().as_str(), Some(BENCH_SIM_SCHEMA));
        assert_eq!(v.get("config").unwrap().as_str(), Some("MegaBoom"));
        let kernels = v.get("kernels").unwrap().as_array().unwrap();
        assert_eq!(kernels.len(), 1);
        let k = &kernels[0];
        assert_eq!(k.get("name").unwrap().as_str(), Some("ME-V1-MV"));
        let ipc = k.get("sim").unwrap().get("ipc").unwrap().as_f64().unwrap();
        assert!(ipc > 0.0, "IPC must be present and nonzero");
        let host = k.get("host").unwrap();
        assert!(host.get("sim_cycles_per_host_sec").unwrap().as_f64().is_some());
        let util = k.get("utilization").unwrap();
        for eu in ["alu", "agu", "mul", "div"] {
            let u = util.get(eu).unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&u), "{eu} utilization {u} out of range");
        }
        let stalls = k.get("stalls").unwrap();
        for (name, _) in profiles[0].pipeline.stall_breakdown() {
            assert!(stalls.get(name).is_some(), "missing stall bucket {name}");
        }
        // Round-trips through the parser (what the CI smoke does).
        let reparsed = microsampler_obs::json::parse(&v.render_pretty()).unwrap();
        assert_eq!(reparsed.render_compact(), v.render_compact());
    }
}
