//! One function per paper table/figure. Every function returns structured
//! data so the integration tests can assert the paper's shapes and the
//! `repro` binary can print them.

use crate::{modexp_report, run_modexp_iterations, Scale};
use microsampler_core::{
    analyze, feature_ordering, feature_uniqueness, AnalysisReport, Analyzer, UniquenessReport,
};
use microsampler_kernels::inputs::{memcmp_pairs, memcmp_schedule};
use microsampler_kernels::memcmp::MemcmpKernel;
use microsampler_kernels::modexp::{Fig6Kernel, ModexpKernel, ModexpVariant};
use microsampler_kernels::openssl::Primitive;
use microsampler_obs::{diag, span};
use microsampler_sim::{parse_text_log, CoreConfig, TraceConfig, UnitId};
use microsampler_stats::ContingencyTable;
use std::time::Duration;

/// Table I is the paper's qualitative tool-comparison table; returned as
/// preformatted rows for the `repro` binary.
pub fn table1() -> Vec<[&'static str; 5]> {
    vec![
        ["Tool", "Target", "Algorithm/Compiler", "HW units", "Complex uarch"],
        ["DATA", "SW (address traces)", "yes", "no", "no"],
        ["Almeida et al.", "SW (formal)", "yes", "no", "no"],
        ["IODINE/XENON", "HW (formal, FUs)", "no", "yes", "no"],
        ["Deutschmann et al.", "HW (formal, abstracted)", "no", "yes", "partial"],
        ["MicroSampler", "Full system (statistical)", "yes", "yes", "yes"],
    ]
}

/// Fig. 2: real microarchitectural iteration snapshots — the SQ-ADDR
/// matrix (rows = cycles, columns = store-queue slots) for one iteration
/// of each key-bit class, from a live `ME-V1-MV` run.
pub fn fig2(scale: &Scale) -> Vec<(u64, Vec<Vec<u64>>)> {
    let kernel = ModexpKernel::new(ModexpVariant::V1MicroarchVuln, 1);
    let key = microsampler_kernels::inputs::random_keys(1, 1, scale.seed).pop().expect("one key");
    let trace = TraceConfig { keep_matrices: true, ..TraceConfig::default() };
    let mut machine = kernel.machine(CoreConfig::mega_boom(), &key, trace).expect("assembles");
    let result = machine.run(10_000_000).expect("runs");
    let mut out = Vec::new();
    for want in [0u64, 1] {
        if let Some(it) = result.iterations.iter().rev().find(|i| i.label == want) {
            let rows = it.unit(UnitId::SqAddr).rows.clone().expect("matrices kept");
            out.push((want, rows));
        }
    }
    out
}

/// Table II: a real contingency table for SQ-ADDR from the constant-time
/// square-and-multiply kernel.
pub fn table2(scale: &Scale) -> ContingencyTable<u64, u64> {
    let iters = run_modexp_iterations(
        ModexpVariant::CtCmov,
        &CoreConfig::mega_boom(),
        scale.keys.min(4),
        scale.key_bytes.min(2),
        scale.seed,
    );
    Analyzer::new().contingency(&iters, UnitId::SqAddr, false)
}

/// Table III is the pair of core configurations themselves.
pub fn table3() -> (CoreConfig, CoreConfig) {
    (CoreConfig::mega_boom(), CoreConfig::small_boom())
}

/// Table IV: the tracked units.
pub fn table4() -> Vec<UnitId> {
    UnitId::ALL.to_vec()
}

/// One row of Table V.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Primitive name.
    pub name: String,
    /// Paper verdict column: leakage identified?
    pub leak_identified: bool,
    /// Functional agreement with the reference model.
    pub functional_ok: bool,
    /// Highest per-unit Cramér's V observed.
    pub max_v: f64,
    /// Escalation rounds used to confirm/clear significance.
    pub escalation_rounds: usize,
    /// Committed-instruction IPC over the analyzed iterations.
    pub ipc: f64,
    /// Largest stall-cause bucket over the analyzed iterations (`None`
    /// when no stall cycles were observed or the audit was quarantined).
    pub dominant_stall: Option<String>,
    /// Simulator error, if the audit could not complete. A first-run
    /// failure quarantines the row (no verdict); a failure during an
    /// escalation round leaves the partial verdict standing with the
    /// error attached.
    pub error: Option<String>,
}

/// Table V: the 27 OpenSSL `constant_time_*` primitives (the
/// `CRYPTO_memcmp` row comes from [`fig10`], which identifies its leak).
///
/// Uses the paper's escalation policy: when a primitive shows strong but
/// not-yet-significant association, the trial count is increased until the
/// p-value resolves the verdict.
pub fn table5(scale: &Scale) -> Vec<Table5Row> {
    let analyzer = Analyzer::new();
    let primitives = Primitive::all();
    let total = primitives.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    // The 27 primitives are independent audits (each with its own
    // escalation loop); fan them out and keep the rows in table order.
    microsampler_par::map(&primitives, |_, prim| {
        let row = table5_row(&analyzer, prim, scale);
        let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        diag::progress("table5", finished, total);
        row
    })
}

/// Audits one Table V primitive. A simulator failure never panics the
/// sweep: the row is quarantined (first run) or annotated (escalation
/// round) and the remaining 26 audits proceed.
fn table5_row(analyzer: &Analyzer, prim: &Primitive, scale: &Scale) -> Table5Row {
    let audit = |trials: usize, seed: u64| {
        prim.run(CoreConfig::mega_boom(), trials, seed, TraceConfig::default())
            .map_err(|e| format!("{}: {e}", prim.name))
    };
    let first = match audit(scale.primitive_trials, scale.seed) {
        Ok(first) => first,
        Err(e) => {
            microsampler_obs::metrics::record("trial.quarantined", 1.0);
            crate::sweep::record_event(crate::sweep::TrialEvent {
                id: format!("table5/{}", prim.name),
                kind: crate::sweep::TrialEventKind::Quarantined,
                class: Some(microsampler_par::FailureClass::SimError),
                message: Some(e.clone()),
                attempts: 1,
            });
            return Table5Row {
                name: prim.name.to_owned(),
                leak_identified: false,
                functional_ok: false,
                max_v: 0.0,
                escalation_rounds: 0,
                ipc: 0.0,
                dominant_stall: None,
                error: Some(e),
            };
        }
    };
    let mut functional_ok = first.functional_ok;
    let mut escalation_error = None;
    let outcome = analyzer.analyze_with_escalation(first.result.iterations, 4, |round| {
        match audit(scale.primitive_trials * 2, scale.seed + round as u64 * 7919) {
            Ok(extra) => {
                functional_ok &= extra.functional_ok;
                extra.result.iterations
            }
            Err(e) => {
                escalation_error = Some(format!("escalation round {round}: {e}"));
                // An empty batch stops the escalation loop; the verdict
                // from the iterations gathered so far stands.
                Vec::new()
            }
        }
    });
    let max_v = outcome.report.units.iter().map(|u| u.assoc.cramers_v).fold(0.0f64, f64::max);
    Table5Row {
        name: prim.name.to_owned(),
        leak_identified: outcome.report.is_leaky(),
        functional_ok,
        max_v,
        escalation_rounds: outcome.rounds,
        ipc: outcome.report.pipeline.ipc(),
        dominant_stall: outcome.report.pipeline.dominant_stall().map(|(name, _)| name.to_owned()),
        error: escalation_error,
    }
}

/// Table VI: per-stage analysis-time breakdown, following the paper's
/// four stages on the text-log pipeline (simulate → parse → correlate →
/// extract features).
#[derive(Clone, Debug)]
pub struct Table6 {
    /// Stage 1: RTL-style simulation with trace logging.
    pub simulate: Duration,
    /// Stage 2: log parsing into iteration snapshots.
    pub parse: Duration,
    /// Stage 3: Cramér's V for all tracked structures.
    pub correlate: Duration,
    /// Stage 4: feature extraction on flagged units.
    pub extract: Duration,
    /// Iterations analyzed.
    pub iterations: usize,
    /// Simulated cycles.
    pub cycles: u64,
}

impl Table6 {
    /// Total analysis time.
    pub fn total(&self) -> Duration {
        self.simulate + self.parse + self.correlate + self.extract
    }
}

/// Runs the Table VI breakdown for `config` at the given scale
/// (ME-V1-CV workload, like the paper).
///
/// The stage durations are *not* measured with ad-hoc stopwatches: the
/// pipeline's own span instrumentation (`simulate` in `Machine::run`,
/// `parse` in `parse_text_log`, `correlate` in `Analyzer::analyze`,
/// `extract` in the feature extractors) is enabled for the duration and
/// the table is read back out of the span tree — so Table VI doubles as
/// an end-to-end check of the telemetry layer. Spans an enclosing
/// collector already completed are parked and merged back; do not call
/// this inside a still-open span.
pub fn table6_for(config: &CoreConfig, scale: &Scale) -> Table6 {
    let was_enabled = span::enabled();
    span::set_enabled(true);
    let parked = span::take();

    let kernel = ModexpKernel::new(ModexpVariant::V1CompilerVuln, scale.key_bytes);
    let keys =
        microsampler_kernels::inputs::random_keys(scale.keys.min(4), scale.key_bytes, scale.seed);
    let mut cycles = 0;
    let iterations = {
        let _root = span::span("table6");
        // Stage 1: simulate with text-log emission (the paper's printf
        // trace); `Machine::run` attributes this under "simulate".
        let mut logs = Vec::new();
        for key in &keys {
            let mut machine = kernel
                .machine(config.clone(), key, TraceConfig::default())
                .expect("kernel assembles");
            machine.enable_log();
            let run = machine.run(200_000_000).expect("simulation completes");
            cycles += run.cycles;
            logs.push(machine.log_text().expect("log enabled").to_owned());
        }
        // Stage 2: parse logs into iteration snapshots ("parse").
        let mut iterations = Vec::new();
        for log in &logs {
            iterations.extend(parse_text_log(log, TraceConfig::default()).expect("log parses"));
        }
        // Stage 3: correlation analysis ("correlate").
        let report = analyze(&iterations);
        // Stage 4: feature extraction for flagged units ("extract").
        for u in report.leaky_units() {
            let _ = feature_uniqueness(&iterations, u.unit);
            let _ = feature_ordering(&iterations, u.unit);
        }
        iterations
    };

    let tree = span::take();
    span::merge(parked);
    span::merge(tree.clone());
    span::set_enabled(was_enabled);

    let root = span::find(&tree, "table6").expect("table6 root span recorded");
    let stage = |name: &str| root.child(name).map_or(Duration::ZERO, |n| n.total);
    Table6 {
        simulate: stage("simulate"),
        parse: stage("parse"),
        correlate: stage("correlate"),
        extract: stage("extract"),
        iterations: iterations.len(),
        cycles,
    }
}

/// Table VI at the default scale on MegaBoom.
pub fn table6(scale: &Scale) -> Table6 {
    table6_for(&CoreConfig::mega_boom(), scale)
}

/// Table VII: scalability — analysis time and design size for SmallBoom vs
/// MegaBoom, with XENON's published numbers quoted for comparison.
#[derive(Clone, Debug)]
pub struct Table7 {
    /// SmallBoom breakdown.
    pub small: Table6,
    /// MegaBoom breakdown.
    pub mega: Table6,
    /// SmallBoom structure-entry count.
    pub small_size: usize,
    /// MegaBoom structure-entry count.
    pub mega_size: usize,
}

impl Table7 {
    /// MegaBoom/SmallBoom design-size ratio.
    pub fn size_ratio(&self) -> f64 {
        self.mega_size as f64 / self.small_size as f64
    }

    /// MegaBoom/SmallBoom analysis-time ratio.
    pub fn time_ratio(&self) -> f64 {
        self.mega.total().as_secs_f64() / self.small.total().as_secs_f64()
    }
}

/// XENON's published scalability (paper Table VII): 8× design size cost
/// 336× analysis time (2.5 s ALU → 14 min SCARV).
pub const XENON_SIZE_RATIO: f64 = 8.0;
/// See [`XENON_SIZE_RATIO`].
pub const XENON_TIME_RATIO: f64 = 336.0;

/// Runs Table VII.
pub fn table7(scale: &Scale) -> Table7 {
    let small = table6_for(&CoreConfig::small_boom(), scale);
    let mega = table6_for(&CoreConfig::mega_boom(), scale);
    Table7 {
        small,
        mega,
        small_size: CoreConfig::small_boom().state_size(),
        mega_size: CoreConfig::mega_boom().state_size(),
    }
}

/// Fig. 3: per-unit Cramér's V for `ME-V1-CV` (compiler vulnerability —
/// nearly everything correlates).
pub fn fig3(scale: &Scale) -> AnalysisReport {
    modexp_report(
        ModexpVariant::V1CompilerVuln,
        &CoreConfig::mega_boom(),
        scale.keys,
        scale.key_bytes,
        scale.seed,
    )
}

/// Fig. 4: per-unit Cramér's V for `ME-V1-MV` (microarchitectural
/// vulnerability — memory-side units correlate).
pub fn fig4(scale: &Scale) -> AnalysisReport {
    modexp_report(
        ModexpVariant::V1MicroarchVuln,
        &CoreConfig::mega_boom(),
        scale.keys,
        scale.key_bytes,
        scale.seed,
    )
}

/// Fig. 5: SQ-ADDR feature uniqueness for `ME-V1-MV` — the per-class
/// unique store addresses (the paper's red/blue scatter).
pub fn fig5(scale: &Scale) -> UniquenessReport {
    let iters = run_modexp_iterations(
        ModexpVariant::V1MicroarchVuln,
        &CoreConfig::mega_boom(),
        scale.keys,
        scale.key_bytes,
        scale.seed,
    );
    feature_uniqueness(&iters, UnitId::SqAddr)
}

/// Fig. 6 data: iteration cycle counts per key-bit class, with the
/// destination buffer cold (6a) or warmed before each iteration (6b).
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// 6a: `(bit0 cycles, bit1 cycles)` with both buffers cold.
    pub cold: (Vec<u64>, Vec<u64>),
    /// 6b: `(bit0 cycles, bit1 cycles)` with dst warmed.
    pub warm: (Vec<u64>, Vec<u64>),
}

fn split_cycles(iters: &[microsampler_sim::IterationTrace]) -> (Vec<u64>, Vec<u64>) {
    let mut c0 = Vec::new();
    let mut c1 = Vec::new();
    for it in iters {
        if it.label == 0 {
            c0.push(it.cycles());
        } else {
            c1.push(it.cycles());
        }
    }
    (c0, c1)
}

/// Runs Fig. 6 (both sub-figures).
pub fn fig6(scale: &Scale) -> Fig6 {
    let keys =
        microsampler_kernels::inputs::random_keys(scale.keys.min(4), scale.key_bytes, scale.seed);
    let run = |warm: bool| {
        let kernel = Fig6Kernel::new(warm, scale.key_bytes);
        let per_key = microsampler_par::map(&keys, |_, key| {
            let r = kernel.run(CoreConfig::mega_boom(), key).expect("fig6 kernel runs");
            assert_eq!(r.exit_code, kernel.reference(key), "fig6 functional check");
            r.iterations
        });
        let iters: Vec<_> = per_key.into_iter().flatten().collect();
        split_cycles(&iters)
    };
    Fig6 { cold: run(false), warm: run(true) }
}

/// Fig. 7: per-unit Cramér's V for `ME-V2-Safe` (all insignificant).
pub fn fig7(scale: &Scale) -> AnalysisReport {
    modexp_report(
        ModexpVariant::V2Safe,
        &CoreConfig::mega_boom(),
        scale.keys,
        scale.key_bytes,
        scale.seed,
    )
}

/// Fig. 9: `ME-V2-Safe` on the fast-bypass core — the report carries both
/// the full and the timing-removed associations.
pub fn fig9(scale: &Scale) -> AnalysisReport {
    modexp_report(
        ModexpVariant::V2Safe,
        &CoreConfig::mega_boom().with_fast_bypass(),
        scale.keys,
        scale.key_bytes,
        scale.seed,
    )
}

/// The call patterns the paper reports for `CRYPTO_memcmp` windows
/// (§VII-C1): which of the dependent functions' PCs were observed in the
/// ROB during the constant-time function's own window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallPatterns {
    /// Windows containing only `inequal` (paper pattern 1).
    pub inequal_only: usize,
    /// Windows containing both calls (paper pattern 2 — the transient
    /// double call).
    pub both: usize,
    /// Windows containing only `equal` (paper pattern 3).
    pub equal_only: usize,
    /// Windows containing neither.
    pub neither: usize,
}

/// Fig. 10 results: the correlation report plus the transient-execution
/// evidence extracted from ROB-PC.
#[derive(Clone, Debug)]
pub struct Fig10 {
    /// Per-unit associations.
    pub report: AnalysisReport,
    /// Call-pattern census over all windows.
    pub patterns: CallPatterns,
    /// Whether MicroSampler identified the leak: dependent-call PCs are
    /// speculatively present inside the constant-time function's window,
    /// including double-call windows.
    pub leak_identified: bool,
    /// Branch mispredicts observed.
    pub mispredicts: u64,
    /// ROB-PC ordering mismatches across classes.
    pub ordering_mismatches: usize,
}

/// Fig. 10 / the `CT-MEM-CMP` case study.
///
/// Uses the paper's input design: 32 fixed pairs with varying (in)equal
/// byte distributions, the pair index as the class label, repeated in a
/// shuffled schedule, on a core with randomized initial predictor state
/// (standing in for the real system's residual predictor contents).
pub fn fig10(scale: &Scale) -> Fig10 {
    let pairs = memcmp_pairs(scale.seed);
    let trials = memcmp_schedule(&pairs, scale.memcmp_reps, scale.seed);
    let program = MemcmpKernel.program().expect("memcmp assembles");
    let equal_pc = program.symbol_addr("equal_fn");
    let inequal_pc = program.symbol_addr("inequal_fn");
    let config = CoreConfig::mega_boom().with_random_bpred(scale.seed | 1);
    // One long machine run — no trial fan-out possible, so shard the
    // snapshot hashing instead (threads: 0 = auto-size from the pool).
    let trace = TraceConfig { threads: 0, ..TraceConfig::default() };
    let (result, outputs) =
        MemcmpKernel.run_with_outputs(config, &trials, trace).expect("memcmp runs");
    for (t, &o) in trials.iter().zip(&outputs) {
        assert_eq!(o, MemcmpKernel.reference(t), "memcmp functional check");
    }
    let mut patterns = CallPatterns::default();
    for it in &result.iterations {
        let f = &it.unit(UnitId::RobPc).features;
        match (f.contains(&equal_pc), f.contains(&inequal_pc)) {
            (true, true) => patterns.both += 1,
            (true, false) => patterns.equal_only += 1,
            (false, true) => patterns.inequal_only += 1,
            (false, false) => patterns.neither += 1,
        }
    }
    let report = analyze(&result.iterations);
    let ordering = feature_ordering(&result.iterations, UnitId::RobPc);
    let speculative_windows = patterns.both + patterns.equal_only + patterns.inequal_only;
    Fig10 {
        leak_identified: patterns.both > 0 || (speculative_windows > 0 && report.is_leaky()),
        report,
        patterns,
        mispredicts: result.stats.branch_mispredicts,
        ordering_mismatches: ordering.mismatches.len(),
    }
}

/// One point of the sample-size sensitivity sweep.
#[derive(Clone, Debug)]
pub struct SensitivityPoint {
    /// Number of keys pooled.
    pub keys: usize,
    /// Iterations analyzed.
    pub iterations: usize,
    /// Highest per-unit V for the leaky kernel (ME-V1-CV).
    pub leaky_max_v: f64,
    /// Was the leaky kernel flagged (V and p jointly)?
    pub leaky_flagged: bool,
    /// Highest per-unit V for the safe kernel (ME-V2-Safe).
    pub safe_max_v: f64,
    /// Was the safe kernel falsely flagged?
    pub safe_false_positive: bool,
    /// Does the safe report still demand escalation (strong-but-
    /// insignificant association)?
    pub safe_needs_more: bool,
}

/// Sensitivity ablation (paper §VII-D): how the verdicts evolve with the
/// number of inputs. With few samples the safe kernel can show high V but
/// the p-value guard withholds the flag; the leaky kernel's verdict locks
/// in quickly and stays.
pub fn sensitivity(scale: &Scale) -> Vec<SensitivityPoint> {
    let max_v =
        |r: &AnalysisReport| r.units.iter().map(|u| u.assoc.cramers_v).fold(0.0f64, f64::max);
    let sweep = [1usize, 2, 4, 8, 16];
    sweep
        .iter()
        .enumerate()
        .map(|(idx, &keys)| {
            diag::progress("sensitivity", idx + 1, sweep.len());
            let leaky = modexp_report(
                ModexpVariant::V1CompilerVuln,
                &CoreConfig::mega_boom(),
                keys,
                scale.key_bytes,
                scale.seed,
            );
            let safe = modexp_report(
                ModexpVariant::V2Safe,
                &CoreConfig::mega_boom(),
                keys,
                scale.key_bytes,
                scale.seed,
            );
            SensitivityPoint {
                keys,
                iterations: leaky.iterations,
                leaky_max_v: max_v(&leaky),
                leaky_flagged: leaky.is_leaky(),
                safe_max_v: max_v(&safe),
                safe_false_positive: safe.is_leaky(),
                safe_needs_more: safe.needs_more_samples(),
            }
        })
        .collect()
}

/// Fig. 4 companion: `ME-V1-MV` under cache pressure (Fig. 6 kernel, cold
/// buffers). With per-iteration eviction the miss-path units (LFB, NLP,
/// MSHR, TLB) light up as in the paper's full-scale run.
pub fn fig4_with_pressure(scale: &Scale) -> AnalysisReport {
    let keys =
        microsampler_kernels::inputs::random_keys(scale.keys.min(4), scale.key_bytes, scale.seed);
    let kernel = Fig6Kernel::new(false, scale.key_bytes);
    let per_key = microsampler_par::map(&keys, |_, key| {
        kernel.run(CoreConfig::mega_boom(), key).expect("kernel runs").iterations
    });
    let iters: Vec<_> = per_key.into_iter().flatten().collect();
    analyze(&iters)
}
