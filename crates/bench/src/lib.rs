//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§VI–§VII).
//!
//! Each `figN`/`tableN` function regenerates the corresponding artifact and
//! returns structured data; the `repro` binary prints them in paper style.
//! Scale knobs default to laptop-friendly sizes (the paper used 1024-bit
//! keys and ~4096 iterations per case study); crank [`Scale`] up to
//! approach paper scale.

pub mod audit;
pub mod experiments;
pub mod lint;
pub mod profile;
#[cfg(unix)]
pub mod serve;
pub mod sweep;

use microsampler_core::{analyze, AnalysisReport};
use microsampler_kernels::inputs::random_keys;
use microsampler_kernels::modexp::{ModexpKernel, ModexpVariant};
use microsampler_sim::{CoreConfig, IterationTrace, TraceConfig};

/// Scale parameters shared by the experiments.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Number of random keys per modexp case study (paper: 32).
    pub keys: usize,
    /// Key length in bytes (paper: 128 = 1024 bits).
    pub key_bytes: usize,
    /// Repetitions of each CT-MEM-CMP input pair (paper: ~128 per pair).
    pub memcmp_reps: usize,
    /// Trials per OpenSSL primitive.
    pub primitive_trials: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Scale {
        Scale { keys: 8, key_bytes: 4, memcmp_reps: 12, primitive_trials: 96, seed: 42 }
    }
}

impl Scale {
    /// The paper's full scale (hours of runtime): 4 × 1024-bit keys for the
    /// Table VI breakdown, 32 keys for the figures.
    pub fn full() -> Scale {
        Scale { keys: 32, key_bytes: 128, memcmp_reps: 64, primitive_trials: 512, seed: 42 }
    }
}

/// Runs a modexp variant over `n_keys` random keys and returns the pooled
/// labeled iterations.
///
/// The per-key trials are independent and fan out across the
/// [`microsampler_par`] worker pool; the pooled iterations are
/// concatenated in key order, so the result is bit-identical to a serial
/// sweep at every thread count.
///
/// When the `repro` CLI has installed [`sweep::SweepOptions`] that demand
/// isolation (fault injection, a journal, resume, or `--retries`), the
/// per-key trials are routed through [`sweep::run_modexp_sweep`] instead:
/// failing trials are quarantined and the pooled iterations cover the
/// surviving trials only.
///
/// # Panics
///
/// On the legacy fail-fast path (no sweep options installed): panics if a
/// kernel fails to assemble or simulate, or if the simulated result
/// diverges from the reference model (a harness bug).
pub fn run_modexp_iterations(
    variant: ModexpVariant,
    config: &CoreConfig,
    n_keys: usize,
    key_bytes: usize,
    seed: u64,
) -> Vec<IterationTrace> {
    if let Some(opts) = sweep::options().filter(sweep::SweepOptions::wants_isolation) {
        return sweep::run_modexp_sweep(variant, config, n_keys, key_bytes, seed, &opts).iterations;
    }
    let kernel = ModexpKernel::new(variant, key_bytes);
    let keys = random_keys(n_keys, key_bytes, seed);
    let done = std::sync::atomic::AtomicUsize::new(0);
    let per_key = microsampler_par::map(&keys, |_, key| {
        let run = kernel
            .run(config.clone(), key, TraceConfig::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", variant.name()));
        assert_eq!(run.exit_code, kernel.reference(key), "{} functional check", variant.name());
        let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        microsampler_obs::diag::progress(variant.name(), finished, n_keys);
        run.iterations
    });
    per_key.into_iter().flatten().collect()
}

/// Runs and analyzes a modexp variant (the common shape of Figs. 3/4/7/9).
pub fn modexp_report(
    variant: ModexpVariant,
    config: &CoreConfig,
    n_keys: usize,
    key_bytes: usize,
    seed: u64,
) -> AnalysisReport {
    analyze(&run_modexp_iterations(variant, config, n_keys, key_bytes, seed))
}

/// Prints a paper-style horizontal bar chart of per-unit Cramér's V.
pub fn print_v_chart(title: &str, series: &[(&str, f64)]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    for (name, v) in series {
        let bar = "#".repeat((v * 40.0).round() as usize);
        println!("{name:<12} {v:>6.3} |{bar}");
    }
}

/// Prints a textual histogram of cycle counts (Fig. 6 style).
pub fn print_cycle_histogram(title: &str, class0: &[u64], class1: &[u64]) {
    println!("\n{title}");
    let lo = class0.iter().chain(class1).copied().min().unwrap_or(0);
    let hi = class0.iter().chain(class1).copied().max().unwrap_or(0);
    for c in lo..=hi {
        let n0 = class0.iter().filter(|&&x| x == c).count();
        let n1 = class1.iter().filter(|&&x| x == c).count();
        if n0 + n1 == 0 {
            continue;
        }
        println!(
            "{c:>6} cycles | bit0 {:<30} bit1 {}",
            "*".repeat(n0.min(30)),
            "*".repeat(n1.min(30))
        );
    }
}
