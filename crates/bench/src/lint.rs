//! The `repro lint` backend: static constant-time analysis over every
//! Table V primitive and seeded-leaky fixture, plus cross-validation of
//! the static verdicts against the dynamic statistical audit — including
//! a speculative dimension that checks CT-SPEC findings against runs
//! driven with adversarial predictor state and spurious-squash plans.

use crate::Scale;
use microsampler_core::{Analyzer, CrossReport, CrossRow, TraceConfig};
use microsampler_ct::{analyze_program_opts, AnalyzeOptions, SpecModel, StaticReport};
use microsampler_isa::asm::assemble;
use microsampler_kernels::fixtures;
use microsampler_kernels::openssl::Primitive;
use microsampler_obs::diag;
use microsampler_sim::{CoreConfig, FaultConfig};

/// One linted kernel: the static report plus the text base needed to map
/// violation PCs back to instruction lines in SARIF output.
#[derive(Clone, Debug)]
pub struct LintResult {
    /// Kernel name (primitive or fixture).
    pub name: String,
    /// The static analysis report.
    pub report: StaticReport,
    /// Base address of the kernel's text section.
    pub text_base: u64,
}

/// Every name `repro lint <name>` accepts: the 27 Table V primitives
/// followed by the seeded-leaky fixtures. (The CI gate self-test fixture
/// resolves by name but is deliberately not a default target.)
pub fn lint_targets() -> Vec<&'static str> {
    Primitive::all().iter().map(|p| p.name).chain(fixtures::all().iter().map(|f| f.name)).collect()
}

fn lint_primitive(p: &Primitive, spec: SpecModel) -> LintResult {
    let program = assemble(&p.source()).unwrap_or_else(|e| panic!("{}: {e}", p.name));
    let opts = AnalyzeOptions { spec, ..Default::default() };
    let report = analyze_program_opts(p.name, &program, &p.secret_spec(), &opts);
    LintResult { name: p.name.to_owned(), report, text_base: program.text_base }
}

fn lint_fixture(f: &fixtures::LeakyFixture, spec: SpecModel) -> LintResult {
    let program = assemble(f.source).unwrap_or_else(|e| panic!("{}: {e}", f.name));
    let opts = AnalyzeOptions { spec, ..Default::default() };
    let report = analyze_program_opts(f.name, &program, &f.spec, &opts);
    LintResult { name: f.name.to_owned(), report, text_base: program.text_base }
}

/// Statically analyzes one kernel by name (primitive or fixture,
/// including the gate self-test fixture) under the default speculation
/// model.
pub fn lint_one(name: &str) -> Option<LintResult> {
    lint_one_with(name, SpecModel::default())
}

/// [`lint_one`] with an explicit speculation model (`--spec-depth` /
/// `--no-spec`).
pub fn lint_one_with(name: &str, spec: SpecModel) -> Option<LintResult> {
    if let Some(p) = Primitive::all().iter().find(|p| p.name == name) {
        return Some(lint_primitive(p, spec));
    }
    fixtures::by_name(name).map(|f| lint_fixture(&f, spec))
}

/// Statically analyzes every primitive and fixture, in [`lint_targets`]
/// order, under the default speculation model.
pub fn lint_static_all() -> Vec<LintResult> {
    lint_static_all_with(SpecModel::default())
}

/// [`lint_static_all`] with an explicit speculation model.
pub fn lint_static_all_with(spec: SpecModel) -> Vec<LintResult> {
    let primitives = Primitive::all();
    let fixture_list = fixtures::all();
    let mut out: Vec<LintResult> = primitives.iter().map(|p| lint_primitive(p, spec)).collect();
    out.extend(fixture_list.iter().map(|f| lint_fixture(f, spec)));
    out
}

/// The adversarial-speculation configuration the speculative crossval
/// dimension drives the core with: a strongly polarized gshare initial
/// state (maximizes guard mispredictions, and therefore wrong-path
/// windows) plus a spurious-squash fault plan (architecturally invisible
/// squash/replay noise the agreement must survive).
fn adversarial_config(seed: u64) -> CoreConfig {
    CoreConfig::mega_boom().with_adversarial_bpred(seed ^ 0xada5_7a7e).with_faults(FaultConfig {
        seed,
        squash_per_64k: 256,
        ..FaultConfig::default()
    })
}

/// Cross-validates the static verdicts against the dynamic audit over
/// the 27 Table V primitives and the seeded-leaky fixtures.
///
/// Every kernel gets two dynamic audits: one under the paper's MegaBoom
/// configuration (the architectural dimension, reusing Table V's
/// escalation protocol so verdicts match `repro table5` at the same
/// scale) and one under an adversarial configuration — polarized gshare
/// initial state plus a spurious-squash fault plan (the speculative
/// dimension, cross-checked against static CT-SPEC findings). Kernels
/// fan out across the worker pool; rows come back in table order.
pub fn lint_crossval(statics: &[LintResult], scale: &Scale) -> CrossReport {
    let analyzer = Analyzer::new();
    let primitives = Primitive::all();
    let fixture_list = fixtures::all();
    let total = primitives.len() + fixture_list.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let static_for = |name: &str| -> &StaticReport {
        statics
            .iter()
            .find(|r| r.name == name)
            .map(|r| &r.report)
            .unwrap_or_else(|| panic!("no static report for {name}"))
    };
    let tick = || {
        let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        diag::progress("lint-crossval", finished, total);
    };
    let mut rows = microsampler_par::map(&primitives, |_, prim| {
        let first = prim
            .run(
                CoreConfig::mega_boom(),
                scale.primitive_trials,
                scale.seed,
                TraceConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prim.name));
        let outcome = analyzer.analyze_with_escalation(first.result.iterations, 4, |round| {
            prim.run(
                CoreConfig::mega_boom(),
                scale.primitive_trials * 2,
                scale.seed + round as u64 * 7919,
                TraceConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prim.name))
            .result
            .iterations
        });
        let adv = prim
            .run(
                adversarial_config(scale.seed),
                scale.primitive_trials,
                scale.seed,
                TraceConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prim.name));
        let adv_outcome = analyzer.analyze_with_escalation(adv.result.iterations, 2, |round| {
            prim.run(
                adversarial_config(scale.seed + round as u64),
                scale.primitive_trials * 2,
                scale.seed + round as u64 * 7919,
                TraceConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prim.name))
            .result
            .iterations
        });
        let stat = static_for(prim.name);
        tick();
        CrossRow::new(prim.name, stat.has_architectural_violations(), &outcome.report)
            .with_spec(stat.has_transient_violations(), &adv_outcome.report)
    });
    rows.extend(microsampler_par::map(&fixture_list, |_, f| {
        let run = |config: CoreConfig, trials: u64, seed: u64| {
            fixtures::run_fixture(f, config, trials, seed, TraceConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", f.name))
                .iterations
        };
        let trials = scale.primitive_trials as u64;
        let arch = analyzer.analyze_with_escalation(
            run(CoreConfig::mega_boom(), trials, scale.seed),
            2,
            |round| run(CoreConfig::mega_boom(), trials * 2, scale.seed + round as u64 * 7919),
        );
        let adv = analyzer.analyze_with_escalation(
            run(adversarial_config(scale.seed), trials, scale.seed),
            2,
            |round| {
                run(
                    adversarial_config(scale.seed + round as u64),
                    trials * 2,
                    scale.seed + round as u64 * 7919,
                )
            },
        );
        let stat = static_for(f.name);
        tick();
        CrossRow::new(f.name, stat.has_architectural_violations(), &arch.report)
            .with_spec(stat.has_transient_violations(), &adv.report)
    }));
    CrossReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_cover_primitives_and_fixtures() {
        let targets = lint_targets();
        assert_eq!(targets.len(), Primitive::all().len() + fixtures::all().len());
        assert!(targets.contains(&"leaky_branchy_memcmp"));
        assert!(targets.contains(&"leaky_spectre_bounds"));
        assert!(!targets.contains(&"gate_selftest_unbaselined"));
    }

    #[test]
    fn lint_one_resolves_both_namespaces() {
        assert!(!lint_one("leaky_sbox_index").unwrap().report.violations.is_empty());
        assert!(lint_one("no-such-kernel").is_none());
        // The gate self-test fixture resolves by name for the CI gate.
        assert!(lint_one("gate_selftest_unbaselined").unwrap().report.is_leaky());
    }

    #[test]
    fn spec_model_gates_the_transient_verdict() {
        let on = lint_one("leaky_spectre_bounds").unwrap();
        assert_eq!(on.report.verdict(), "leaky-transient");
        let off = lint_one_with("leaky_spectre_bounds", SpecModel::disabled()).unwrap();
        assert_eq!(off.report.verdict(), "clean");
    }
}
