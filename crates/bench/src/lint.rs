//! The `repro lint` backend: static constant-time analysis over every
//! Table V primitive and seeded-leaky fixture, plus cross-validation of
//! the static verdicts against the dynamic statistical audit.

use crate::Scale;
use microsampler_core::{Analyzer, CrossReport, CrossRow, TraceConfig};
use microsampler_ct::{analyze_program, LatencyModel, StaticReport};
use microsampler_isa::asm::assemble;
use microsampler_kernels::fixtures;
use microsampler_kernels::openssl::Primitive;
use microsampler_obs::diag;
use microsampler_sim::CoreConfig;

/// One linted kernel: the static report plus the text base needed to map
/// violation PCs back to instruction lines in SARIF output.
#[derive(Clone, Debug)]
pub struct LintResult {
    /// Kernel name (primitive or fixture).
    pub name: String,
    /// The static analysis report.
    pub report: StaticReport,
    /// Base address of the kernel's text section.
    pub text_base: u64,
}

/// Every name `repro lint <name>` accepts: the 27 Table V primitives
/// followed by the seeded-leaky fixtures.
pub fn lint_targets() -> Vec<&'static str> {
    Primitive::all().iter().map(|p| p.name).chain(fixtures::all().iter().map(|f| f.name)).collect()
}

fn lint_primitive(p: &Primitive) -> LintResult {
    let program = assemble(&p.source()).unwrap_or_else(|e| panic!("{}: {e}", p.name));
    let report = analyze_program(p.name, &program, &p.secret_spec(), LatencyModel::default());
    LintResult { name: p.name.to_owned(), report, text_base: program.text_base }
}

fn lint_fixture(f: &fixtures::LeakyFixture) -> LintResult {
    let program = assemble(f.source).unwrap_or_else(|e| panic!("{}: {e}", f.name));
    let report = analyze_program(f.name, &program, &f.spec, LatencyModel::default());
    LintResult { name: f.name.to_owned(), report, text_base: program.text_base }
}

/// Statically analyzes one kernel by name (primitive or fixture).
pub fn lint_one(name: &str) -> Option<LintResult> {
    if let Some(p) = Primitive::all().iter().find(|p| p.name == name) {
        return Some(lint_primitive(p));
    }
    fixtures::all().iter().find(|f| f.name == name).map(lint_fixture)
}

/// Statically analyzes every primitive and fixture, in [`lint_targets`]
/// order.
pub fn lint_static_all() -> Vec<LintResult> {
    let primitives = Primitive::all();
    let fixture_list = fixtures::all();
    let mut out: Vec<LintResult> = primitives.iter().map(lint_primitive).collect();
    out.extend(fixture_list.iter().map(lint_fixture));
    out
}

/// Cross-validates the static verdicts against the dynamic audit over
/// the 27 Table V primitives (the fixtures are static-only: they exist to
/// pin the analyzer's behavior, not to model real code).
///
/// Reuses Table V's escalation protocol so the dynamic verdicts here
/// match `repro table5` at the same scale. Primitives fan out across the
/// worker pool; rows come back in table order.
pub fn lint_crossval(statics: &[LintResult], scale: &Scale) -> CrossReport {
    let analyzer = Analyzer::new();
    let primitives = Primitive::all();
    let total = primitives.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let rows = microsampler_par::map(&primitives, |_, prim| {
        let first = prim
            .run(
                CoreConfig::mega_boom(),
                scale.primitive_trials,
                scale.seed,
                TraceConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prim.name));
        let outcome = analyzer.analyze_with_escalation(first.result.iterations, 4, |round| {
            prim.run(
                CoreConfig::mega_boom(),
                scale.primitive_trials * 2,
                scale.seed + round as u64 * 7919,
                TraceConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", prim.name))
            .result
            .iterations
        });
        let static_leaky = statics
            .iter()
            .find(|r| r.name == prim.name)
            .map(|r| r.report.is_leaky())
            .unwrap_or_else(|| panic!("no static report for {}", prim.name));
        let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        diag::progress("lint-crossval", finished, total);
        CrossRow::new(prim.name, static_leaky, &outcome.report)
    });
    CrossReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_cover_primitives_and_fixtures() {
        let targets = lint_targets();
        assert_eq!(targets.len(), Primitive::all().len() + fixtures::all().len());
        assert!(targets.contains(&"leaky_branchy_memcmp"));
    }

    #[test]
    fn lint_one_resolves_both_namespaces() {
        assert!(!lint_one("leaky_sbox_index").unwrap().report.violations.is_empty());
        assert!(lint_one("no-such-kernel").is_none());
    }
}
