//! Per-connection protocol handling for `repro serve`.
//!
//! The protocol is line-delimited JSON over a unix-domain socket. A
//! client sends exactly one request line, then reads response lines
//! until the connection closes:
//!
//! * `{"op":"submit","client":"ci","kernel":"ME-V2-Safe","keys":4,...}`
//!   — accept an audit job (spec fields as in
//!   [`super::queue::JobSpec::from_json`]). The daemon answers with an
//!   `accepted` event, then streams the job's `microsampler-trial-v1`
//!   journal lines as trials finish, then a final `verdict` event.
//! * `{"op":"cancel","job":"job-3"}` — latch a live job's cancel token.
//! * `{"op":"status"}` — queue depth and drain state.
//!
//! Every daemon-originated line carries `"schema":"microsampler-serve-v1"`
//! except the forwarded trial-journal lines, which keep their own
//! schemas. Overload and shutdown answer `submit` with a `busy` event
//! (`reason`: `queue-full`, `client-quota`, or `shutting-down`) and
//! close. A client that disconnects mid-stream cancels its job.

use super::queue::JobHandle;
use super::{ServeState, SubmitError};
use microsampler_obs::{diag_warn, json, metrics, Value};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema tag on every protocol response line.
pub const SERVE_SCHEMA: &str = "microsampler-serve-v1";

/// How long a connected client may sit silent before its request slot
/// is reclaimed.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// Serves one connection to completion; errors are diagnosed, never
/// propagated (one bad client must not dent the daemon).
pub fn handle_client(state: &Arc<ServeState>, stream: UnixStream) {
    if let Err(e) = client_loop(state, stream) {
        diag_warn!("serve session ended with an error: {e}");
    }
}

fn write_event(stream: &mut UnixStream, event: &Value) -> Result<(), String> {
    writeln!(stream, "{}", event.render_compact()).map_err(|e| format!("client write failed: {e}"))
}

fn event(kind: &str) -> microsampler_obs::json::ObjectBuilder {
    Value::object().field("schema", SERVE_SCHEMA).field("event", kind)
}

fn client_loop(state: &Arc<ServeState>, mut stream: UnixStream) -> Result<(), String> {
    let Some(line) = read_request_line(state, &mut stream)? else {
        return Ok(());
    };
    let request = match json::parse(&line) {
        Ok(v) => v,
        Err(e) => {
            write_event(
                &mut stream,
                &event("error").field("message", format!("bad request: {e}")).build(),
            )?;
            return Ok(());
        }
    };
    match request.get("op").and_then(Value::as_str) {
        Some("status") => {
            write_event(&mut stream, &event("status").field("status", state.status_json()).build())
        }
        Some("cancel") => {
            let job = request.get("job").and_then(Value::as_str).unwrap_or("");
            let found = state.cancel(job);
            metrics::record("serve.ops.cancel", 1.0);
            write_event(
                &mut stream,
                &event("cancel-ack").field("job", job).field("found", found).build(),
            )
        }
        Some("submit") => submit(state, &mut stream, &request),
        other => write_event(
            &mut stream,
            &event("error")
                .field(
                    "message",
                    format!(
                        "unknown op `{}` (expected submit, cancel, or status)",
                        other.unwrap_or("<missing>")
                    ),
                )
                .build(),
        ),
    }
}

/// Reads the single request line, polling the shutdown flag so a silent
/// client cannot stall the drain. Returns `None` on a clean early
/// disconnect.
fn read_request_line(
    state: &Arc<ServeState>,
    stream: &mut UnixStream,
) -> Result<Option<String>, String> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("cannot set the read timeout: {e}"))?;
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut buf = Vec::new();
    loop {
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            return String::from_utf8(buf[..nl].to_vec())
                .map(Some)
                .map_err(|e| format!("request is not UTF-8: {e}"));
        }
        if state.is_shutting_down() {
            let _ = write_event(stream, &busy_event(SubmitError::ShuttingDown));
            return Ok(None);
        }
        if Instant::now() >= deadline {
            return Err("client sent no request within the deadline".to_string());
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(format!("client read failed: {e}")),
        }
    }
}

fn busy_event(reason: SubmitError) -> Value {
    event("busy").field("reason", reason.reason()).build()
}

fn submit(state: &Arc<ServeState>, stream: &mut UnixStream, request: &Value) -> Result<(), String> {
    let client = request.get("client").and_then(Value::as_str).unwrap_or("anon");
    let spec = match super::queue::JobSpec::from_json(request) {
        Ok(spec) => spec,
        Err(e) => {
            return write_event(
                stream,
                &event("error").field("message", format!("bad job spec: {e}")).build(),
            )
        }
    };
    let job = match state.submit(client, spec) {
        Ok(job) => job,
        Err(reject) => {
            metrics::record("serve.jobs.rejected", 1.0);
            return write_event(stream, &busy_event(reject));
        }
    };
    write_event(
        stream,
        &event("accepted").field("job", job.id.as_str()).field("key", job.key.as_str()).build(),
    )?;
    stream_job(state, stream, &job);
    Ok(())
}

/// Streams a job to its client: forwards trial-journal lines as they
/// are appended, watches for client cancellation or disconnect, and
/// finishes with the terminal `verdict` event.
fn stream_job(state: &Arc<ServeState>, stream: &mut UnixStream, job: &Arc<JobHandle>) {
    let journal = state.journal_path(&job.key);
    let mut offset = 0u64;
    stream.set_read_timeout(Some(Duration::from_millis(25))).ok();
    loop {
        // Snapshot the state *before* draining the journal: every line
        // a finishing executor writes lands before the terminal state
        // does, so a terminal snapshot means the drain below is total.
        let snapshot = job.state();
        match forward_new_lines(&journal, offset, stream) {
            Ok(consumed) => offset += consumed,
            Err(e) => {
                diag_warn!("serve: dropping client of {}: {e}", job.id);
                job.request_cancel();
                return;
            }
        }
        if snapshot.is_terminal() {
            // A terminal drain that leaves bytes behind means the
            // journal ends in a torn record (a writer killed mid-append,
            // e.g. a submit timeout). The partial line is deliberately
            // not forwarded — the next resume repairs the tail and
            // re-runs that trial — but the skip should be visible.
            let trailing =
                std::fs::metadata(&journal).map_or(0, |m| m.len().saturating_sub(offset));
            if trailing > 0 {
                diag_warn!(
                    "serve: {} journal ends in a torn {trailing}-byte record; \
                     skipped (the next resume repairs and re-runs it)",
                    job.id
                );
            }
            let final_event = terminal_response(job, &snapshot);
            if let Err(e) = write_event(stream, &final_event) {
                diag_warn!("serve: could not deliver the {} verdict: {e}", job.id);
            }
            return;
        }
        // The read below doubles as the pacing sleep (25 ms timeout).
        let mut chunk = [0u8; 256];
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Disconnect: nobody is listening, stop the work.
                job.request_cancel();
                metrics::record("serve.clients.disconnected", 1.0);
                return;
            }
            Ok(n) => {
                // The only in-stream client message is a cancel op.
                if String::from_utf8_lossy(&chunk[..n]).contains("\"cancel\"") {
                    job.request_cancel();
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                job.request_cancel();
                return;
            }
        }
    }
}

/// Forwards every *complete* journal line past `offset`; a partial
/// trailing line (mid-append) waits for the next poll. Returns the
/// bytes consumed.
fn forward_new_lines(journal: &Path, offset: u64, stream: &mut UnixStream) -> Result<u64, String> {
    let data = std::fs::read(journal).unwrap_or_default();
    if data.len() as u64 <= offset {
        return Ok(0);
    }
    let fresh = &data[offset as usize..];
    let Some(last_newline) = fresh.iter().rposition(|&b| b == b'\n') else {
        return Ok(0);
    };
    stream.write_all(&fresh[..=last_newline]).map_err(|e| format!("client write failed: {e}"))?;
    Ok((last_newline + 1) as u64)
}

/// The final protocol event for a terminal job state.
fn terminal_response(job: &JobHandle, state: &super::queue::JobState) -> Value {
    use super::queue::JobState;
    let base = event("verdict").field("job", job.id.as_str()).field("key", job.key.as_str());
    match state {
        JobState::Done { leaky, verdict } => base
            .field("status", "done")
            .field("leaky", *leaky)
            .field("verdict", verdict.clone())
            .build(),
        JobState::Quarantined { class, message, attempts } => base
            .field("status", "quarantined")
            .field("class", class.as_str())
            .field("message", message.as_str())
            .field("attempts", *attempts)
            .build(),
        JobState::Cancelled => base.field("status", "cancelled").build(),
        other => base.field("status", other.name()).build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_responses_cover_every_outcome() {
        use super::super::queue::{JobSpec, JobState};
        let job = JobHandle::new(0, "ci", JobSpec::default(), false);
        let done = terminal_response(
            &job,
            &JobState::Done { leaky: true, verdict: Value::object().field("x", 1u64).build() },
        );
        assert_eq!(done.get("schema").unwrap().as_str(), Some(SERVE_SCHEMA));
        assert_eq!(done.get("event").unwrap().as_str(), Some("verdict"));
        assert_eq!(done.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(done.get("leaky").unwrap().as_bool(), Some(true));
        assert!(done.get("verdict").unwrap().get("x").is_some());
        let quarantined = terminal_response(
            &job,
            &JobState::Quarantined { class: "timed-out".into(), message: "m".into(), attempts: 2 },
        );
        assert_eq!(quarantined.get("status").unwrap().as_str(), Some("quarantined"));
        assert_eq!(quarantined.get("attempts").unwrap().as_u64(), Some(2));
        let cancelled = terminal_response(&job, &JobState::Cancelled);
        assert_eq!(cancelled.get("status").unwrap().as_str(), Some("cancelled"));
    }

    #[test]
    fn busy_events_carry_the_structured_reason() {
        for (err, reason) in [
            (SubmitError::QueueFull, "queue-full"),
            (SubmitError::ClientQuota, "client-quota"),
            (SubmitError::ShuttingDown, "shutting-down"),
        ] {
            let v = busy_event(err);
            assert_eq!(v.get("schema").unwrap().as_str(), Some(SERVE_SCHEMA));
            assert_eq!(v.get("event").unwrap().as_str(), Some("busy"));
            assert_eq!(v.get("reason").unwrap().as_str(), Some(reason));
        }
    }
}
