//! Job specifications, lifecycle states, handles, and the write-ahead
//! job log (WAL) backing `repro serve`.
//!
//! Every accepted job is appended to the WAL **before** it is enqueued,
//! so a crash at any point leaves enough on disk to re-run the job on
//! restart (see [`super::recovery`]). The WAL is append-only JSONL with
//! one `microsampler-serve-job-v1` event per line; compaction rewrites
//! it through a temporary file plus atomic rename, so readers (and a
//! crash mid-compaction) never observe a half-written log.

use microsampler_kernels::modexp::ModexpVariant;
use microsampler_obs::{diag_warn, Value};
use microsampler_par::CancelToken;
use microsampler_sim::CoreConfig;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Schema tag on every WAL line.
pub const WAL_SCHEMA: &str = "microsampler-serve-job-v1";

/// An audit job as submitted over the socket: which kernel to sweep,
/// under which core, at what trial budget.
///
/// The spec is *content-addressable*: [`JobSpec::content_key`] hashes
/// the canonical JSON rendering, and the daemon keys the job's trial
/// journal by it — resubmitting an unchanged job replays every
/// completed trial from the journal for free.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Modexp kernel variant to audit.
    pub kernel: ModexpVariant,
    /// Core configuration name: `mega` or `small`.
    pub config: String,
    /// Enable the ME-V2-FB fast-bypass network on the chosen core.
    pub fast_bypass: bool,
    /// Number of random keys (one trial per key).
    pub keys: usize,
    /// Key length in bytes.
    pub key_bytes: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-trial cycle budget override.
    pub max_cycles: Option<u64>,
    /// Trial index to wedge (deliberate deadlock, for fault drills).
    pub wedge_trial: Option<usize>,
    /// Run the sweep under the anytime-valid sequential analyzer: the
    /// job completes as soon as the confidence sequence closes, and the
    /// verdict carries a `microsampler-stop-v1` stopping trace.
    pub sequential: bool,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            kernel: ModexpVariant::V2Safe,
            config: "mega".to_string(),
            fast_bypass: false,
            keys: 4,
            key_bytes: 1,
            seed: 42,
            max_cycles: None,
            wedge_trial: None,
            sequential: false,
        }
    }
}

impl JobSpec {
    /// Resolves the named core configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid configs for unknown names.
    pub fn core_config(&self) -> Result<CoreConfig, String> {
        let base = match self.config.as_str() {
            "mega" => CoreConfig::mega_boom(),
            "small" => CoreConfig::small_boom(),
            other => return Err(format!("unknown config `{other}` (expected mega or small)")),
        };
        Ok(if self.fast_bypass { base.with_fast_bypass() } else { base })
    }

    /// Canonical JSON rendering (stable field order; also the WAL
    /// `spec` payload). `sequential` is rendered only when set: the
    /// content key of every pre-existing spec — and therefore every
    /// journal on disk keyed by it — must not change under the default.
    pub fn to_json(&self) -> Value {
        let b = Value::object()
            .field("kernel", self.kernel.name())
            .field("config", self.config.as_str())
            .field("fast_bypass", self.fast_bypass)
            .field("keys", self.keys)
            .field("key_bytes", self.key_bytes)
            .field("seed", self.seed)
            .field("max_cycles", self.max_cycles.map_or(Value::Null, Value::from))
            .field("wedge", self.wedge_trial.map_or(Value::Null, |w| Value::from(w as u64)));
        if self.sequential {
            b.field("sequential", true).build()
        } else {
            b.build()
        }
    }

    /// Parses a spec from a submit request or WAL line. Missing optional
    /// fields take the [`Default`] values; `kernel`, `config`, `keys`
    /// and `key_bytes` are validated.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(v: &Value) -> Result<JobSpec, String> {
        let mut spec = JobSpec::default();
        if let Some(name) = v.get("kernel").and_then(Value::as_str) {
            spec.kernel =
                ModexpVariant::ALL.iter().copied().find(|k| k.name() == name).ok_or_else(|| {
                    let known: Vec<&str> = ModexpVariant::ALL.iter().map(|k| k.name()).collect();
                    format!("unknown kernel `{name}` (expected one of {})", known.join(", "))
                })?;
        }
        if let Some(config) = v.get("config").and_then(Value::as_str) {
            spec.config = config.to_string();
        }
        if let Some(fb) = v.get("fast_bypass").and_then(Value::as_bool) {
            spec.fast_bypass = fb;
        }
        if let Some(keys) = v.get("keys").and_then(Value::as_u64) {
            spec.keys = keys as usize;
        }
        if let Some(kb) = v.get("key_bytes").and_then(Value::as_u64) {
            spec.key_bytes = kb as usize;
        }
        if let Some(seed) = v.get("seed").and_then(Value::as_u64) {
            spec.seed = seed;
        }
        spec.max_cycles = v.get("max_cycles").and_then(Value::as_u64);
        spec.wedge_trial = v.get("wedge").and_then(Value::as_u64).map(|w| w as usize);
        if let Some(seq) = v.get("sequential").and_then(Value::as_bool) {
            spec.sequential = seq;
        }
        if spec.keys == 0 || spec.key_bytes == 0 {
            return Err("keys and key_bytes must be at least 1".to_string());
        }
        spec.core_config()?;
        Ok(spec)
    }

    /// Content address: a 64-bit SipHash-2-4 of the canonical JSON
    /// rendering, hex-encoded. Two specs collide iff every field
    /// matches, so the per-spec trial journal `trials-<key>.jsonl` is
    /// shared exactly by resubmissions of the same job.
    pub fn content_key(&self) -> String {
        // Fixed keys: the address must be stable across daemon restarts.
        const K0: u64 = 0x4d69_6372_6f53_616d;
        const K1: u64 = 0x706c_6572_4a6f_6221;
        let canonical = self.to_json().render_compact();
        format!("{:016x}", microsampler_stats::siphash24(K0, K1, canonical.as_bytes()))
    }
}

/// Job lifecycle: `queued → running → (retrying → running)* →
/// done | quarantined | cancelled`.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted and WAL-logged, waiting for the executor.
    Queued,
    /// The executor is sweeping trials (attempt is 1-based).
    Running {
        /// 1-based job attempt.
        attempt: u32,
    },
    /// An attempt timed out; the executor is backing off before the next.
    Retrying {
        /// The attempt that just failed.
        attempt: u32,
    },
    /// Terminal: the sweep finished and produced a verdict.
    Done {
        /// Whether the analysis flagged a leak.
        leaky: bool,
        /// The full deterministic verdict object streamed to clients.
        verdict: Value,
    },
    /// Terminal: every attempt exhausted its budget.
    Quarantined {
        /// Failure class (`timed-out`, `config`).
        class: String,
        /// Human-readable failure description.
        message: String,
        /// Job-level attempts made.
        attempts: u32,
    },
    /// Terminal: cancelled by the client (explicitly or by disconnect)
    /// before completion.
    Cancelled,
}

impl JobState {
    /// Stable state name (WAL `event` field for terminal states).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running { .. } => "running",
            JobState::Retrying { .. } => "retrying",
            JobState::Done { .. } => "done",
            JobState::Quarantined { .. } => "quarantined",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done { .. } | JobState::Quarantined { .. } | JobState::Cancelled)
    }
}

/// Shared handle to one job: the executor drives the state machine,
/// session threads observe it and pull the cancel lever.
#[derive(Debug)]
pub struct JobHandle {
    /// Stable id (`job-<seq>`), unique per daemon state directory.
    pub id: String,
    /// Monotonic submission sequence number (survives restarts).
    pub seq: u64,
    /// Submitting client's tag (per-client quota accounting).
    pub client: String,
    /// Content address of [`JobHandle::spec`].
    pub key: String,
    /// The submitted job.
    pub spec: JobSpec,
    /// Whether this handle was rebuilt from the WAL after a crash.
    pub recovered: bool,
    /// Cooperative cancel latch, shared with the trial sweep.
    pub cancel: CancelToken,
    state: Mutex<JobState>,
    changed: Condvar,
}

impl JobHandle {
    /// A fresh queued job.
    pub fn new(seq: u64, client: &str, spec: JobSpec, recovered: bool) -> JobHandle {
        JobHandle {
            id: format!("job-{seq}"),
            seq,
            client: client.to_string(),
            key: spec.content_key(),
            spec,
            recovered,
            cancel: CancelToken::new(),
            state: Mutex::new(JobState::Queued),
            changed: Condvar::new(),
        }
    }

    /// Snapshot of the current state.
    pub fn state(&self) -> JobState {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Advances the state machine and wakes waiters.
    pub fn set_state(&self, next: JobState) {
        *self.state.lock().unwrap_or_else(|p| p.into_inner()) = next;
        self.changed.notify_all();
    }

    /// Whether the job has reached a final state.
    pub fn is_terminal(&self) -> bool {
        self.state().is_terminal()
    }

    /// Latches the cancel token; the executor observes it between
    /// trials and before each attempt.
    pub fn request_cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the job is terminal or `timeout` elapses; returns
    /// the terminal state if reached.
    pub fn wait_terminal(&self, timeout: Duration) -> Option<JobState> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if state.is_terminal() {
                return Some(state.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) =
                self.changed.wait_timeout(state, deadline - now).unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }
}

/// The WAL `submitted` event for a job (carries everything recovery
/// needs to re-enqueue it).
pub fn submitted_event(job: &JobHandle) -> Value {
    Value::object()
        .field("schema", WAL_SCHEMA)
        .field("event", "submitted")
        .field("job", job.id.as_str())
        .field("seq", job.seq)
        .field("client", job.client.as_str())
        .field("key", job.key.as_str())
        .field("spec", job.spec.to_json())
        .build()
}

/// The WAL `started` event (one per attempt).
pub fn started_event(id: &str, attempt: u32) -> Value {
    Value::object()
        .field("schema", WAL_SCHEMA)
        .field("event", "started")
        .field("job", id)
        .field("attempt", attempt)
        .build()
}

/// The WAL `retrying` event: attempt `attempt` failed; the executor
/// sleeps `backoff` before the next one.
pub fn retrying_event(id: &str, attempt: u32, reason: &str, backoff: Duration) -> Value {
    Value::object()
        .field("schema", WAL_SCHEMA)
        .field("event", "retrying")
        .field("job", id)
        .field("attempt", attempt)
        .field("reason", reason)
        .field("backoff_ms", backoff.as_millis() as u64)
        .build()
}

/// The WAL terminal event for `state`, or `None` for non-terminal
/// states. Terminal events deliberately omit the verdict body — it is
/// reproducible from the content-addressed trial journal, and the WAL
/// stays small enough to replay on every restart.
pub fn terminal_event(id: &str, state: &JobState) -> Option<Value> {
    let base = Value::object().field("schema", WAL_SCHEMA).field("event", state.name());
    match state {
        JobState::Done { leaky, .. } => Some(base.field("job", id).field("leaky", *leaky).build()),
        JobState::Quarantined { class, message, attempts } => Some(
            base.field("job", id)
                .field("class", class.as_str())
                .field("message", message.as_str())
                .field("attempts", *attempts)
                .build(),
        ),
        JobState::Cancelled => Some(base.field("job", id).build()),
        _ => None,
    }
}

/// Append-only WAL writer with atomic-rename compaction.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    terminal_since_compact: usize,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns a message if the file cannot be opened.
    pub fn open(path: &Path) -> Result<WalWriter, String> {
        let file = File::options()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open serve WAL {}: {e}", path.display()))?;
        Ok(WalWriter { path: path.to_path_buf(), file, terminal_since_compact: 0 })
    }

    /// Appends one event line. Write failures are diagnosed, not fatal:
    /// losing a WAL line degrades recovery, not the running job.
    pub fn append(&mut self, event: &Value) {
        if let Err(e) = writeln!(self.file, "{}", event.render_compact()) {
            diag_warn!("serve WAL append failed: {e}");
        }
        if event
            .get("event")
            .and_then(Value::as_str)
            .is_some_and(|ev| matches!(ev, "done" | "quarantined" | "cancelled"))
        {
            self.terminal_since_compact += 1;
        }
    }

    /// Terminal events appended since the last compaction (compaction
    /// trigger: the log only grows stale through finished jobs).
    pub fn terminal_since_compact(&self) -> usize {
        self.terminal_since_compact
    }

    /// Rewrites the WAL to exactly `keep` (the `submitted` events of
    /// still-live jobs), via a temporary file in the same directory and
    /// an atomic rename — a crash mid-compaction leaves either the old
    /// or the new log, never a torn one.
    ///
    /// # Errors
    ///
    /// Returns a message on write or rename failure; the original WAL
    /// is untouched in that case.
    pub fn compact(&mut self, keep: &[Value]) -> Result<(), String> {
        let tmp = self.path.with_file_name(format!(
            "{}.tmp.{}",
            self.path.file_name().and_then(|n| n.to_str()).unwrap_or("serve-wal.jsonl"),
            std::process::id()
        ));
        let mut text = String::new();
        for event in keep {
            text.push_str(&event.render_compact());
            text.push('\n');
        }
        std::fs::write(&tmp, text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot rename {} to {}: {e}", tmp.display(), self.path.display())
        })?;
        self.file = File::options()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("cannot reopen serve WAL {}: {e}", self.path.display()))?;
        self.terminal_since_compact = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_round_trips_and_validates() {
        let spec = JobSpec {
            kernel: ModexpVariant::V1MicroarchVuln,
            config: "small".into(),
            fast_bypass: true,
            keys: 7,
            key_bytes: 2,
            seed: 9,
            max_cycles: Some(50_000),
            wedge_trial: Some(3),
            sequential: true,
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert!(
            !JobSpec::default().to_json().render_compact().contains("sequential"),
            "default rendering must stay byte-identical so existing journals keep their keys"
        );
        assert!(JobSpec::from_json(&Value::object().field("kernel", "nope").build())
            .unwrap_err()
            .contains("ME-V2-Safe"));
        assert!(JobSpec::from_json(&Value::object().field("config", "huge").build())
            .unwrap_err()
            .contains("mega or small"));
        assert!(JobSpec::from_json(&Value::object().field("keys", 0u64).build()).is_err());
    }

    #[test]
    fn content_key_is_stable_and_field_sensitive() {
        let spec = JobSpec::default();
        let key = spec.content_key();
        assert_eq!(key.len(), 16, "64-bit hex address");
        assert_eq!(key, spec.clone().content_key(), "same spec, same address");
        let variants = [
            JobSpec { seed: 43, ..spec.clone() },
            JobSpec { keys: 5, ..spec.clone() },
            JobSpec { key_bytes: 2, ..spec.clone() },
            JobSpec { config: "small".into(), ..spec.clone() },
            JobSpec { fast_bypass: true, ..spec.clone() },
            JobSpec { kernel: ModexpVariant::Naive, ..spec.clone() },
            JobSpec { max_cycles: Some(1), ..spec.clone() },
            JobSpec { wedge_trial: Some(0), ..spec.clone() },
            JobSpec { sequential: true, ..spec.clone() },
        ];
        for other in variants {
            assert_ne!(other.content_key(), key, "{other:?} must re-address");
        }
    }

    #[test]
    fn job_state_machine_names_and_terminality() {
        let h = JobHandle::new(3, "ci", JobSpec::default(), false);
        assert_eq!(h.id, "job-3");
        assert_eq!(h.state().name(), "queued");
        assert!(!h.is_terminal());
        h.set_state(JobState::Running { attempt: 1 });
        assert_eq!(h.state().name(), "running");
        h.set_state(JobState::Retrying { attempt: 1 });
        assert!(!h.is_terminal());
        h.set_state(JobState::Cancelled);
        assert!(h.is_terminal());
        assert_eq!(h.wait_terminal(Duration::from_millis(10)).unwrap().name(), "cancelled");
        let pending = JobHandle::new(4, "ci", JobSpec::default(), false);
        assert!(pending.wait_terminal(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn wal_appends_and_compacts_atomically() {
        let path = std::env::temp_dir()
            .join(format!("microsampler-serve-wal-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let job = JobHandle::new(0, "ci", JobSpec::default(), false);
        let mut wal = WalWriter::open(&path).unwrap();
        wal.append(&submitted_event(&job));
        wal.append(&started_event(&job.id, 1));
        wal.append(&retrying_event(&job.id, 1, "timed out", Duration::from_millis(40)));
        assert_eq!(wal.terminal_since_compact(), 0);
        wal.append(
            &terminal_event(&job.id, &JobState::Done { leaky: false, verdict: Value::Null })
                .unwrap(),
        );
        assert_eq!(wal.terminal_since_compact(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"event\":\"retrying\""));
        assert!(text.contains("\"backoff_ms\":40"));

        let live = JobHandle::new(1, "ci", JobSpec::default(), false);
        wal.compact(&[submitted_event(&live)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "compaction keeps only live jobs");
        assert!(text.contains("\"job\":\"job-1\""));
        assert_eq!(wal.terminal_since_compact(), 0);
        wal.append(&started_event(&live.id, 1));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "appends continue after compaction");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn terminal_event_covers_only_terminal_states() {
        assert!(terminal_event("job-0", &JobState::Queued).is_none());
        assert!(terminal_event("job-0", &JobState::Running { attempt: 1 }).is_none());
        let q = terminal_event(
            "job-0",
            &JobState::Quarantined { class: "timed-out".into(), message: "m".into(), attempts: 3 },
        )
        .unwrap();
        assert_eq!(q.get("event").unwrap().as_str(), Some("quarantined"));
        assert_eq!(q.get("attempts").unwrap().as_u64(), Some(3));
        let c = terminal_event("job-0", &JobState::Cancelled).unwrap();
        assert_eq!(c.get("event").unwrap().as_str(), Some("cancelled"));
    }
}
